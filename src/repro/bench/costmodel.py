"""The fixed cost model turning perf counters into deterministic time.

Wall-clock throughput depends on the machine, the Python build and the
phase of the CPU governor; a CI gate built on it either flakes or needs a
uselessly wide threshold.  Instead the harness converts the *counted*
hot-path operations (:mod:`repro.common.perf`) into virtual microseconds
through this table: each counter name has a fixed per-operation cost,
roughly calibrated against CPython wall measurements on the seed
hardware (see EXPERIMENTS.md).  Two runs of the same seeded workload
count the same ops, so virtual time — and every metric derived from it —
is byte-identical across runs and machines.

The absolute weights matter less than their *stability*: a change that
doubles the per-record work on a hot path doubles its counted ops no
matter what the weights are.  Weights only shape how ops on different
paths trade off inside one scenario.

``COST_MODEL_VERSION`` is embedded in every report; comparisons across
different versions are rejected, so re-weighting forces baselines to be
regenerated rather than silently shifting the gate.
"""

from __future__ import annotations

COST_MODEL_VERSION = 6

#: Virtual microseconds charged per counted operation.
COST_US: dict[str, float] = {
    # -- kafka ---------------------------------------------------------------
    "kafka.partition_resolutions": 1.2,  # pstate + leader/follower lookup
    "kafka.entry_allocs": 0.4,  # LogEntry construction
    "kafka.size_encodings": 3.0,  # serde encode for byte accounting
    "kafka.send_encodings": 2.5,  # legacy: producer value sizing (pre single-encode)
    "kafka.key_hashes": 2.0,  # FNV-1a over the serialized key
    "kafka.fetch_calls": 1.0,
    "kafka.records_fetched": 0.15,  # per entry returned (list slice share)
    # -- pinot ---------------------------------------------------------------
    "pinot.rows_ingested": 1.5,  # schema validate + consuming append
    "pinot.chunk_rows_ingested": 0.08,  # columnar chunk append, per row
    "pinot.cell_reads": 0.8,  # random-access bit-unpack + dict lookup
    "pinot.cells_decoded": 0.15,  # bulk forward-index decode, per cell
    "pinot.code_filter_evals": 0.1,  # integer compare in code space
    "pinot.row_allocs": 1.0,  # per-row dict materialization
    "pinot.filter_evals": 0.5,  # Python-level predicate call
    "pinot.tree_build_rows": 0.5,  # star-tree node aggregation, per doc
    "pinot.tree_nodes": 0.5,
    "pinot.tree_docs": 0.5,  # star-tree leaf raw-doc scan
    # -- pinot pruning & caching (broker scatter path) -----------------------
    "pinot.zonemap_checks": 0.3,  # per-filter min/max comparison
    "pinot.bloom_checks": 0.4,  # double-hash probe of the segment bloom
    "pinot.segments_scanned": 0.05,  # scatter bookkeeping per routed segment
    "pinot.segments_pruned": 0.05,  # bookkeeping per skipped segment
    "pinot.cache_hits": 1.0,  # cache lookup + epoch validation
    "pinot.cache_misses": 0.4,  # cache lookup that found nothing fresh
    "pinot.cache_row_copies": 0.2,  # per cached row copied out
    "pinot.scanshare_hits": 0.6,  # memoized filter resolution lookup
    "pinot.scanshare_misses": 0.3,  # scan-share lookup miss
    "pinot.scanshare_docs_served": 0.02,  # per memoized doc id copied out
    # -- presto (stage scheduler hot path) ------------------------------------
    "presto.stage_executions": 0.5,  # stage dispatch bookkeeping
    "presto.stage_artifact_hits": 1.0,  # artifact lookup + epoch validation
    "presto.artifact_rows_copied": 0.2,  # per served row copied out
    "presto.filter_rows": 0.5,  # Python-level predicate eval per row
    "presto.agg_rows": 0.8,  # group-key tuple + accumulator update
    "presto.project_rows": 0.8,  # output dict build per row
    "presto.sort_rows": 0.3,  # sort-key extraction share per row
    "presto.join_build_rows": 0.6,  # hash-table insert per build row
    "presto.join_probe_rows": 0.4,  # hash probe per probe-side row
    "presto.join_rows_out": 1.0,  # merged-row dict materialization
    # -- control plane -------------------------------------------------------
    "controlplane.admission_checks": 0.3,  # tier lookup + bucket/level gate
    "controlplane.shed_decisions": 0.3,  # decision-log line + counters
    "controlplane.latency_observations": 0.2,  # window append + p99 guard
    "controlplane.scaler_evals": 0.4,  # per-tick policy sweep share
    "controlplane.scale_actions": 1.0,  # actuator call + log line
    "controlplane.queue_submits": 0.3,  # earliest-free-worker scan
    "controlplane.queue_spills": 0.3,  # sticky-subset overflow to the pool
    # -- columnar (vectorized batch plane) ------------------------------------
    # Per-batch/per-chunk costs amortize fixed work over every row in the
    # batch; per-row kernel costs are an order cheaper than their row-at-a-
    # time equivalents because the inner loop is a typed array sweep, not a
    # dict-of-objects walk.
    "columnar.batch_allocs": 1.0,  # ColumnBatch header + column map build
    "columnar.batch_slices": 0.3,  # zero-copy window onto shared buffers
    "columnar.batch_serves": 1.0,  # cache/artifact serve of a shared chunk
    "columnar.cells_gathered": 0.03,  # take() copy of a code/value cell
    "columnar.cells_appended": 0.02,  # builder append into a column buffer
    "columnar.cells_sized": 0.02,  # byte-accounting share per cell
    "columnar.rows_routed": 0.04,  # partition-id append per row (hash memoized)
    "columnar.kernel_rows": 0.05,  # vectorized filter/project sweep per row
    "columnar.agg_rows": 0.12,  # vectorized group-by accumulate per row
    "columnar.rows_adapted": 0.9,  # batch<->row boundary dict (de)materialization
    "columnar.dict_evals": 0.5,  # per-distinct predicate/hash eval on a dictionary
    # -- flink ---------------------------------------------------------------
    "flink.elements": 0.5,  # scheduler dequeue + dispatch
    "flink.batch_elements": 0.2,  # micro-batched dequeue + dispatch
    "flink.route_resolutions": 0.8,  # legacy: per-record downstream graph lookup
    "flink.cached_routes": 0.2,  # routing via pre-resolved channel wiring
    "flink.channel_pushes": 0.15,
    "flink.space_channel_checks": 0.2,  # backpressure probe per channel
    "flink.vector_batches": 0.6,  # RecordBatch dequeue + dispatch (amortized)
    # -- flink interval join (keyed join-state hot path) -----------------------
    "flink.join_probes": 0.2,  # per buffered opposite-side entry scanned
    "flink.join_rows_out": 1.0,  # joined-pair dict materialization
    "flink.join_state_appends": 0.6,  # list-state append + heap push
    "flink.join_evictions": 0.5,  # heap pop + list-state filter share
    # -- feature store ---------------------------------------------------------
    "features.writes": 1.0,  # canonical key encode + sorted insert
    "features.duplicate_writes": 0.6,  # dedup scan of the equal-ts run
    "features.reads": 0.8,  # key encode + per-read bookkeeping
    "features.versions_probed": 0.3,  # bisect step share (log2 of history)
}

#: Counters not in the table still cost something.
DEFAULT_COST_US = 0.5

#: Alloc counters (summed into the report's ``allocs`` field) end with this.
ALLOC_SUFFIX = "_allocs"


def virtual_us(counts: dict[str, int]) -> float:
    """Weighted total of counted ops, in virtual microseconds.

    Summation order is fixed (sorted keys) so the float result is
    bit-reproducible.
    """
    return sum(
        counts[name] * COST_US.get(name, DEFAULT_COST_US) for name in sorted(counts)
    )


def alloc_count(counts: dict[str, int]) -> int:
    return sum(n for name, n in counts.items() if name.endswith(ALLOC_SUFFIX))
