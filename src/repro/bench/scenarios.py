"""Parameterized hot-path workloads for the perf harness.

Eight scenarios, one per hot layer of the stack:

* ``kafka_produce_fetch`` — batched, keyed produce with ``acks=all``
  (replica bookkeeping on the append path) followed by paged fetches of
  everything back: the storage hot path.
* ``flink_window`` — a keyed tumbling-window aggregation over a bounded
  source, driven to quiescence: the stream-runtime hot path (channel
  routing, backpressure probes, element dispatch), isolated from Kafka.
* ``stream_join`` — an interval join of out-of-order prediction and
  outcome streams (high key cardinality, duplicate deliveries) feeding a
  point-in-time feature store: the join-state and feature-platform hot
  path, with a crash-restore variant gated on byte-identical digests.
* ``pinot_ingest_query`` — Kafka → realtime consuming segments → sealed
  columnar segments, then a mixed query workload (inverted-index filter,
  group-by aggregation, selection scan) through the broker: the OLAP
  ingest and query-evaluation hot paths.
* ``pinot_selective_query`` — selective point/range queries over a table
  with many sealed segments, partition keying, blooms and a time column:
  the broker's segment-pruning and result-cache hot path.
* ``presto_scan`` — PrestoSQL over the Pinot connector at predicate-only
  pushdown, so rows ship into the engine's row loop: the federated scan
  hot path.
* ``presto_federated_join`` — a Pinot fact table joined to a Hive
  dimension table through the stage scheduler, with query variants that
  share plan subtrees: the planner's stage-artifact reuse and epoch
  invalidation hot path.
* ``controlplane_surge`` — a million-user spiking workload against the
  whole serving path under SLO-tiered admission control and cross-layer
  autoscaling, with a broker failure mid-spike: the control plane's
  admission/shed/scale hot path.

Each scenario is a pure function of ``(params, seed)``: every workload
value comes from :func:`repro.common.rng.seeded_rng` and time from a
:class:`~repro.common.clock.SimulatedClock`, so the counted work — and
therefore the whole deterministic report — reproduces exactly.  The
``check`` value in the outcome digests the scenario's *results* (window
sums, query answers), guarding against an "optimization" that changes
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.clock import SimulatedClock
from repro.common.rng import seeded_rng

PAD = "x" * 48


@dataclass(frozen=True)
class Outcome:
    """What a scenario reports back: size, span and a results digest."""

    records: int
    sim_s: float
    check: int


@dataclass(frozen=True)
class ScenarioSpec:
    name: str
    fn: Callable[[dict, int, Any], Outcome]
    full_params: dict
    quick_params: dict
    in_quick: bool = True


def _digest(value: Any) -> int:
    """Small deterministic checksum of a result structure."""
    import hashlib

    from repro.common import serde

    return int.from_bytes(
        hashlib.sha256(serde.encode(value)).digest()[:6], "big"
    )


# -- kafka ---------------------------------------------------------------------


def kafka_produce_fetch(params: dict, seed: int, probe) -> Outcome:
    from repro.kafka.cluster import KafkaCluster, TopicConfig
    from repro.kafka.producer import Producer

    n = params["records"]
    clock = SimulatedClock()
    cluster = KafkaCluster("bench", 3, clock=clock)
    cluster.create_topic(
        "events",
        TopicConfig(partitions=params["partitions"], replication_factor=2),
    )
    producer = Producer(
        cluster,
        "bench",
        acks=params["acks"],
        batch_size=params["batch_bytes"],
        clock=clock,
    )
    rng = seeded_rng(seed, "bench.kafka")
    keys = [f"k{rng.randrange(params['keys'])}" for __ in range(n)]
    for i in range(n):
        clock.advance(0.001)
        with probe.op():
            producer.send("events", {"i": i, "pad": PAD}, key=keys[i])
    with probe.op():
        producer.flush()
    cluster.replicate()
    fetched = 0
    checksum = 0
    for partition in range(params["partitions"]):
        offset = cluster.start_offset("events", partition)
        end = cluster.end_offset("events", partition)
        while offset < end:
            with probe.op():
                entries = cluster.fetch("events", partition, offset, 500)
            offset = entries[-1].offset + 1
            fetched += len(entries)
            checksum += sum(e.record.value["i"] for e in entries)
    return Outcome(records=n, sim_s=clock.now(), check=_digest([fetched, checksum]))


# -- flink ---------------------------------------------------------------------


def flink_window(params: dict, seed: int, probe) -> Outcome:
    from repro.flink.graph import StreamEnvironment
    from repro.flink.operators import BoundedColumnarSource, BoundedListSource
    from repro.flink.runtime import JobRuntime
    from repro.flink.windows import SumAggregate, TumblingWindows

    n = params["records"]
    rng = seeded_rng(seed, "bench.flink")
    elements = [
        (
            {"city": f"c{rng.randrange(params['keys'])}", "amount": float(rng.randrange(100))},
            i * 0.01,
        )
        for i in range(n)
    ]
    clock = SimulatedClock()
    env = StreamEnvironment()
    out: list = []
    if params.get("columnar", False):
        # Vectorized plane: same rows, same timestamps, laid out as
        # columns; the results digest must match the row branch exactly.
        source = BoundedColumnarSource(
            columns={
                "city": [row["city"] for row, __ in elements],
                "amount": [row["amount"] for row, __ in elements],
            },
            timestamps=[ts for __, ts in elements],
            batch_size=200,
        )
    else:
        source = BoundedListSource(elements, batch_size=200)
    env.add_source(
        source, name="src",
        parallelism=params["parallelism"],
    ) \
        .key_by("city") \
        .window(TumblingWindows(params["window_s"])) \
        .aggregate(SumAggregate("amount")) \
        .sink_to_list(out)
    runtime = JobRuntime(env.build("bench-window"), clock=clock)
    while True:
        with probe.op():
            processed = runtime.run_rounds(1, budget_per_task=500)
        if processed == 0:
            break
    sums = sorted((r.key, r.window.start, r.value) for r in out)
    return Outcome(records=n, sim_s=clock.now(), check=_digest(sums))


def stream_join(params: dict, seed: int, probe) -> Outcome:
    """Interval-joined prediction/outcome streams feeding a feature store.

    High key cardinality (``keys`` join keys over ``records`` lefts, so
    keys repeat — many-to-many pairs), seeded out-of-orderness
    (``ooo_s`` arrival jitter against event time) and seeded duplicate
    deliveries (``dup_rate`` of lefts arrive twice, exercising the
    store's idempotent writes and the join's duplicate pairs).  The left
    path logs per-prediction and per-model features *before* the join;
    the joined stream is enriched with a point-in-time read at the
    outcome's event time.  After quiescence a seeded batch of per-model
    point-in-time reads runs against the out-of-order version history.

    ``crash_restore=True`` switches the sink to 2PC-transactional and
    performs a seeded mid-run checkpoint + crash-restore; the outcome
    digest must be byte-identical to the plain run — that equality is
    the determinism gate in ``scripts/check_join_determinism.py``.
    """
    from repro.features import FeatureStore
    from repro.flink.graph import StreamEnvironment
    from repro.flink.operators import BoundedListSource
    from repro.flink.runtime import JobRuntime
    from repro.storage.blobstore import BlobStore

    n = params["records"]
    models = params["models"]
    delay_max = params["delay_max_s"]
    ooo_s = params["ooo_s"]
    dt = 0.05
    rng = seeded_rng(seed, "bench.stream_join")
    lefts: list[tuple[dict, float, float]] = []  # (row, event_ts, arrival)
    rights: list[tuple[dict, float, float]] = []
    for i in range(n):
        ts = i * dt
        row = {
            "id": f"k{rng.randrange(params['keys'])}",
            "seq": i,
            "model": f"m{i % models}",
            "val": rng.randrange(1000) / 1000.0,
            "ts": ts,
        }
        lefts.append((row, ts, ts + rng.uniform(0.0, ooo_s)))
        if rng.random() < params["dup_rate"]:
            # At-least-once upstream: the same prediction delivered twice.
            lefts.append((row, ts, ts + rng.uniform(0.0, ooo_s)))
        if rng.random() >= params["loss_rate"]:
            rts = ts + rng.uniform(1.0, delay_max)
            rights.append(
                (
                    {
                        "id": row["id"],
                        "seq": i,
                        "obs": rng.randrange(1000) / 1000.0,
                        "ts": rts,
                    },
                    rts,
                    rts + rng.uniform(0.0, ooo_s),
                )
            )
    lefts.sort(key=lambda e: (e[2], e[0]["seq"]))
    rights.sort(key=lambda e: (e[2], e[0]["seq"]))

    clock = SimulatedClock()
    store = FeatureStore("bench-features")
    env = StreamEnvironment()
    out: list = []

    def log_features(p: dict) -> dict:
        # Per-prediction request-time features (unique key: idempotent
        # under duplicate delivery) plus a high-cardinality per-model
        # series whose versions arrive out of event-time order.
        store.write_row(("pred", p["seq"]), {"val": p["val"]}, p["ts"])
        store.write(("model", p["model"]), "last_val", p["val"], p["ts"])
        return p

    def enrich(row: dict) -> dict:
        val = store.get_feature(("pred", row["ls"]), "val", row["rts"], -1.0)
        return {
            "id": row["id"],
            "ls": row["ls"],
            "rs": row["rs"],
            "err": abs(val - row["obs"]),
        }

    left = env.add_source(
        BoundedListSource(
            [(row, ts) for row, ts, __ in lefts],
            max_out_of_orderness=ooo_s,
            batch_size=200,
        ),
        name="predictions",
        parallelism=params["parallelism"],
    ).map(log_features, name="feature-log")
    right = env.add_source(
        BoundedListSource(
            [(row, ts) for row, ts, __ in rights],
            max_out_of_orderness=ooo_s,
            batch_size=200,
        ),
        name="outcomes",
        parallelism=params["parallelism"],
    )
    crash = params.get("crash_restore", False)
    left.interval_join(
        right,
        key_fns=(lambda p: p["id"], lambda o: o["id"]),
        lower=-delay_max,
        upper=0.0,
        join_fn=lambda p, o: {
            "id": p["id"],
            "ls": p["seq"],
            "rs": o["seq"],
            "obs": o["obs"],
            "rts": o["ts"],
        },
        allowed_lateness=params["lateness_s"],
        state_ttl=params["ttl_s"],
        spill_budget_bytes=params.get("spill_budget_bytes"),
        parallelism=params["parallelism"],
        name="ij",
    ).map(enrich, name="feature-enrich").sink_to_list(out, transactional=crash)

    runtime = JobRuntime(
        env.build("bench-stream-join"),
        blob_store=BlobStore(clock=clock),
        clock=clock,
    )
    rounds = 0
    restored = False
    while True:
        with probe.op():
            processed = runtime.run_rounds(1, budget_per_task=500)
        rounds += 1
        if crash:
            if rounds == params.get("checkpoint_round", 3):
                runtime.trigger_checkpoint()
            crash_now = rounds == params.get("crash_round", 6)
            if crash_now and runtime.completed_checkpoints():
                runtime.restore_from(runtime.completed_checkpoints()[-1])
                restored = True
                continue
        if processed == 0:
            break
    if crash:
        runtime.trigger_checkpoint()  # commit the final 2PC epoch
        assert restored, "crash_restore run never restored a checkpoint"

    join_ops = [task.operator for task in runtime.tasks["ij"]]
    late_dropped = sum(op.late_dropped for op in join_ops)
    evicted = sum(op.evicted for op in join_ops)
    # Offline half of the determinism gate: seeded per-model point-in-time
    # reads over the out-of-order version history.
    read_rng = seeded_rng(seed, "bench.stream_join.reads")
    with probe.op():
        read_digest = store.read_digest(
            (
                ("model", f"m{read_rng.randrange(models)}"),
                read_rng.uniform(0.0, n * dt),
            )
            for __ in range(params["reads"])
        )
    joined = sorted(out, key=lambda r: (r["id"], r["ls"], r["rs"]))
    return Outcome(
        records=n,
        sim_s=clock.now(),
        check=_digest(
            [joined, read_digest, late_dropped, evicted, store.version_count()]
        ),
    )


# -- pinot ---------------------------------------------------------------------


def _pinot_table(params: dict, seed: int, probe):
    from repro.kafka.cluster import KafkaCluster, TopicConfig
    from repro.kafka.producer import Producer
    from repro.metadata.schema import Field, FieldRole, FieldType, Schema
    from repro.pinot.broker import PinotBroker
    from repro.pinot.controller import PinotController
    from repro.pinot.recovery import PeerToPeerBackup
    from repro.pinot.segment import IndexConfig
    from repro.pinot.server import PinotServer
    from repro.pinot.table import TableConfig
    from repro.storage.blobstore import BlobStore

    n = params["records"]
    clock = SimulatedClock()
    kafka = KafkaCluster("bench", 3, clock=clock)
    kafka.create_topic("metrics", TopicConfig(partitions=4))
    producer = Producer(kafka, "bench", clock=clock)
    rng = seeded_rng(seed, "bench.pinot")
    schema = Schema(
        "metrics",
        (
            Field("city", FieldType.STRING),
            Field("status", FieldType.STRING),
            Field("amount", FieldType.DOUBLE, FieldRole.METRIC),
            Field("ts", FieldType.DOUBLE, FieldRole.TIME),
        ),
    )
    columnar = params.get("columnar", False)
    pending: list[dict] = []

    def flush_chunk() -> None:
        from repro.columnar import ColumnBatch

        batch = ColumnBatch.from_columns(
            {
                name: [row[name] for row in pending]
                for name in ("city", "status", "amount", "ts")
            }
        )
        producer.send_columnar(
            "metrics",
            batch,
            key_column="city",
            event_times=[row["ts"] for row in pending],
        )
        pending.clear()

    for __ in range(n):
        clock.advance(0.001)
        row = {
            "city": f"city-{rng.randrange(params['keys'])}",
            "status": rng.choice(["ok", "late", "cancelled"]),
            "amount": float(rng.randrange(100)),
            "ts": clock.now(),
        }
        if columnar:
            # Same rows, same rng/clock sequence — only the transport
            # changes, so the results digest must match the row branch.
            pending.append(row)
            if len(pending) >= 200:
                flush_chunk()
        else:
            producer.send("metrics", row, key=row["city"])
    if pending:
        flush_chunk()
    producer.flush()
    controller = PinotController(
        [PinotServer(f"s{i}") for i in range(3)],
        PeerToPeerBackup(BlobStore()),
    )
    state = controller.create_realtime_table(
        TableConfig(
            "metrics",
            schema,
            time_column="ts",
            index_config=IndexConfig(inverted=frozenset({"city"})),
            segment_rows_threshold=params["segment_rows"],
        ),
        kafka,
        "metrics",
    )
    while True:
        with probe.op():
            state.ingestion.run_step()
        controller.backup.run_step()
        if state.ingestion.lag() == 0 and not any(
            s.blocked() for s in state.ingestion.partitions.values()
        ):
            break
    return clock, PinotBroker(controller, clock=clock)


def pinot_ingest_query(params: dict, seed: int, probe) -> Outcome:
    from repro.pinot.query import Aggregation, Filter, PinotQuery

    clock, broker = _pinot_table(params, seed, probe)
    n = params["records"]
    checks = []
    queries = [
        PinotQuery(
            table="metrics",
            aggregations=[Aggregation("COUNT"), Aggregation("SUM", "amount")],
            filters=[Filter("city", "=", "city-3")],
            group_by=["status"],
        ),
        PinotQuery(
            table="metrics",
            aggregations=[Aggregation("SUM", "amount")],
            group_by=["city"],
            limit=100,
        ),
        PinotQuery(
            table="metrics",
            select_columns=["city", "amount"],
            filters=[Filter("amount", ">=", 95.0)],
            limit=1_000_000,
        ),
    ]
    for __ in range(params["query_rounds"]):
        for query in queries:
            with probe.op():
                result = broker.execute(query)
            checks.append(
                sorted(
                    tuple(sorted(row.items())) for row in result.rows
                )
            )
    return Outcome(records=n, sim_s=clock.now(), check=_digest(checks))


def pinot_selective_query(params: dict, seed: int, probe) -> Outcome:
    """Selective queries over many segments: the pruning + cache hot path.

    A keyed-by-city stream lands in a table that declares its partition
    column, blooms its high-cardinality ``ride_id`` and has a monotonic
    time column, so every sealed segment carries pruning metadata.  The
    workload then repeats a small set of *selective* queries — point
    lookups by ride id, a partition-scoped recency window, a narrow time
    window — across rounds.  With ``pruning``/``cache`` enabled (the
    registered configuration) the first round scans a handful of segments
    and later rounds are epoch-validated cache hits; the ablation (both
    off, exercised by the bench tests) full-scans every segment every
    round.
    """
    from repro.kafka.cluster import KafkaCluster, TopicConfig
    from repro.kafka.producer import Producer
    from repro.metadata.schema import Field, FieldRole, FieldType, Schema
    from repro.pinot.broker import PinotBroker
    from repro.pinot.controller import PinotController
    from repro.pinot.query import Aggregation, Filter, PinotQuery
    from repro.pinot.recovery import PeerToPeerBackup
    from repro.pinot.segment import IndexConfig
    from repro.pinot.server import PinotServer
    from repro.pinot.table import TableConfig
    from repro.storage.blobstore import BlobStore

    n = params["records"]
    clock = SimulatedClock()
    kafka = KafkaCluster("bench", 3, clock=clock)
    kafka.create_topic("rides", TopicConfig(partitions=4))
    producer = Producer(kafka, "bench", clock=clock)
    rng = seeded_rng(seed, "bench.pinot.selective")
    schema = Schema(
        "rides",
        (
            Field("city", FieldType.STRING),
            Field("ride_id", FieldType.STRING),
            Field("amount", FieldType.DOUBLE, FieldRole.METRIC),
            Field("ts", FieldType.DOUBLE, FieldRole.TIME),
        ),
    )
    cities = [f"city-{i}" for i in range(params["keys"])]
    for i in range(n):
        clock.advance(0.001)
        row = {
            "city": cities[rng.randrange(params["keys"])],
            "ride_id": f"ride-{i:08d}",
            "amount": float(rng.randrange(100)),
            "ts": clock.now(),
        }
        producer.send("rides", row, key=row["city"])
    producer.flush()
    controller = PinotController(
        [PinotServer(f"s{i}") for i in range(3)],
        PeerToPeerBackup(BlobStore()),
    )
    state = controller.create_realtime_table(
        TableConfig(
            "rides",
            schema,
            time_column="ts",
            index_config=IndexConfig(bloom_filtered=frozenset({"ride_id"})),
            segment_rows_threshold=params["segment_rows"],
            partition_column="city",
        ),
        kafka,
        "rides",
    )
    while True:
        with probe.op():
            state.ingestion.run_step()
        controller.backup.run_step()
        if state.ingestion.lag() == 0 and not any(
            s.blocked() for s in state.ingestion.partitions.values()
        ):
            break
    broker = PinotBroker(
        controller,
        clock=clock,
        enable_pruning=params.get("pruning", True),
        enable_cache=params.get("cache", True),
        sticky=params.get("sticky", True),
    )
    span = n * 0.001  # ts covers (0, span]
    lookup_ids = sorted(f"ride-{rng.randrange(n):08d}" for __ in range(3))
    queries = [
        # Point lookups: the bloom filter proves absence per segment.
        *(
            PinotQuery(
                table="rides",
                select_columns=["city", "amount", "ts"],
                filters=[Filter("ride_id", "=", ride)],
            )
            for ride in lookup_ids
        ),
        # Partition-scoped recency: partition pruning (city is the stream
        # key) plus the time zone map cut the scatter down to the newest
        # segments of one partition.
        PinotQuery(
            table="rides",
            aggregations=[Aggregation("COUNT"), Aggregation("SUM", "amount")],
            filters=[
                Filter("city", "=", cities[3]),
                Filter("ts", "BETWEEN", low=span * 0.9, high=span),
            ],
        ),
        # Narrow global time window: ts is monotonic, so zone maps prune
        # every segment outside the slice.
        PinotQuery(
            table="rides",
            aggregations=[Aggregation("COUNT")],
            filters=[Filter("ts", "BETWEEN", low=span * 0.45, high=span * 0.5)],
        ),
    ]
    checks = []
    for __ in range(params["query_rounds"]):
        for query in queries:
            with probe.op():
                result = broker.execute(query)
            checks.append(
                sorted(tuple(sorted(row.items())) for row in result.rows)
            )
    return Outcome(records=n, sim_s=clock.now(), check=_digest(checks))


# -- presto --------------------------------------------------------------------


def presto_scan(params: dict, seed: int, probe) -> Outcome:
    from repro.sql.presto.connector import PinotConnector
    from repro.sql.presto.engine import PrestoEngine

    clock, broker = _pinot_table(params, seed, probe)
    n = params["records"]
    engine = PrestoEngine(
        {
            "metrics": PinotConnector(
                broker,
                pushdown="predicate",
                columnar=params.get("columnar", False),
            )
        },
        clock=clock,
    )
    sql = (
        "SELECT city, COUNT(*) AS n, SUM(amount) AS total FROM metrics "
        "WHERE status = 'ok' GROUP BY city ORDER BY total DESC LIMIT 10"
    )
    checks = []
    for __ in range(params["query_rounds"]):
        with probe.op():
            out = engine.execute(sql)
        checks.append([tuple(sorted(row.items())) for row in out.rows])
    return Outcome(records=n, sim_s=clock.now(), check=_digest(checks))


def presto_federated_join(params: dict, seed: int, probe) -> Outcome:
    """Federated join with stage-artifact reuse: the planner's hot path.

    A Pinot realtime fact table (``rides``, keyed and partitioned by
    city) joins a small Hive dimension table (``cities`` → region)
    through the stage scheduler.  Every round runs four analytics
    queries sharing the scan → join (→ aggregate) plan prefix, so with
    ``reuse`` on (the registered configuration) the first query computes
    the shared stages and the rest — and later rounds — are served from
    the stage artifact store.  Midway through, an ingest burst advances
    the rides TableEpoch, which must invalidate every rides-derived
    artifact; the results digest covers each round's rows, so the
    ablation with ``reuse`` off (run by the bench tests) must match
    byte-for-byte or the store served stale data.
    """
    from repro.kafka.cluster import KafkaCluster, TopicConfig
    from repro.kafka.producer import Producer
    from repro.metadata.schema import Field, FieldRole, FieldType, Schema
    from repro.pinot.broker import PinotBroker
    from repro.pinot.controller import PinotController
    from repro.pinot.recovery import PeerToPeerBackup
    from repro.pinot.server import PinotServer
    from repro.pinot.table import TableConfig
    from repro.sql.presto.connector import HiveConnector, PinotConnector
    from repro.sql.presto.engine import PrestoEngine
    from repro.storage.blobstore import BlobStore
    from repro.storage.hive import HiveMetastore

    n = params["records"]
    keys = params["keys"]
    clock = SimulatedClock()
    kafka = KafkaCluster("bench", 3, clock=clock)
    kafka.create_topic("rides", TopicConfig(partitions=4))
    producer = Producer(kafka, "bench", clock=clock)
    rng = seeded_rng(seed, "bench.presto.join")
    cities = [f"city-{i}" for i in range(keys)]

    def send_rides(count: int) -> None:
        for __ in range(count):
            clock.advance(0.001)
            # partition_column="city" below promises the stream is keyed
            # by city, so key by the row's own city value.
            row = {
                "city": cities[rng.randrange(keys)],
                "amount": float(rng.randrange(100)),
                "ts": clock.now(),
            }
            producer.send("rides", row, key=row["city"])
        producer.flush()

    def ingest_until_caught_up() -> None:
        while True:
            with probe.op():
                state.ingestion.run_step()
            controller.backup.run_step()
            if state.ingestion.lag() == 0 and not any(
                s.blocked() for s in state.ingestion.partitions.values()
            ):
                break

    send_rides(n)
    schema = Schema(
        "rides",
        (
            Field("city", FieldType.STRING),
            Field("amount", FieldType.DOUBLE, FieldRole.METRIC),
            Field("ts", FieldType.DOUBLE, FieldRole.TIME),
        ),
    )
    controller = PinotController(
        [PinotServer(f"s{i}") for i in range(3)],
        PeerToPeerBackup(BlobStore()),
    )
    state = controller.create_realtime_table(
        TableConfig(
            "rides",
            schema,
            time_column="ts",
            segment_rows_threshold=params["segment_rows"],
            partition_column="city",
        ),
        kafka,
        "rides",
    )
    ingest_until_caught_up()
    broker = PinotBroker(controller, clock=clock)
    metastore = HiveMetastore(BlobStore())
    cities_schema = Schema(
        "cities",
        (
            Field("city", FieldType.STRING),
            Field("region", FieldType.STRING),
        ),
    )
    dim = metastore.create_table("cities", cities_schema)
    dim.add_rows(
        "p0",
        [
            {"city": city, "region": f"region-{i % 3}"}
            for i, city in enumerate(cities)
        ],
    )
    engine = PrestoEngine(
        {
            "rides": PinotConnector(broker, pushdown="full"),
            "cities": HiveConnector(metastore),
        },
        clock=clock,
        artifact_reuse=params.get("reuse", True),
    )
    # Four variants over one scan → join → aggregate prefix: the grouped
    # rollup, a HAVING refinement, a top-k cut, and a different aggregate
    # set (shares scan + join but not the aggregation).
    base = (
        "FROM rides f JOIN cities d ON f.city = d.city GROUP BY d.region"
    )
    rollup = f"SELECT d.region AS region, COUNT(*) AS n, SUM(f.amount) AS total {base}"
    queries = [
        rollup,
        rollup + " HAVING n > 0",
        rollup + " ORDER BY total DESC LIMIT 2",
        f"SELECT d.region AS region, MIN(f.amount) AS lo, MAX(f.amount) AS hi {base}",
    ]
    checks = []
    for round_no in range(params["query_rounds"]):
        if round_no == params["query_rounds"] // 2:
            # Freshness burst: new rows advance the rides TableEpoch, so
            # every artifact derived from the rides scan must recompute.
            send_rides(n // 8)
            ingest_until_caught_up()
        for sql in queries:
            with probe.op():
                out = engine.execute(sql)
            checks.append([tuple(sorted(row.items())) for row in out.rows])
    return Outcome(records=n, sim_s=clock.now(), check=_digest(checks))


# -- control plane -------------------------------------------------------------


def controlplane_surge(params: dict, seed: int, probe) -> Outcome:
    """The million-user surge under SLO-tiered admission + autoscaling.

    Wraps :func:`repro.controlplane.surge.run_surge`: a skewed, diurnal,
    spiking arrival stream queries a sealed serving table while a
    telemetry firehose loads the write path and a broker dies mid-spike.
    The control plane (admission shedding + cross-layer scaling) must
    hold every tier's latency SLO; the ``check`` digests the admitted
    result digests *and* the decision log, so both query semantics and
    control decisions gate byte-identically in CI.
    """
    from repro.controlplane.surge import run_surge

    report = run_surge(params, seed, probe)
    return Outcome(
        records=report.requests, sim_s=report.sim_s, check=report.check
    )


# -- registry --------------------------------------------------------------------


SCENARIOS: tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="kafka_produce_fetch",
        fn=kafka_produce_fetch,
        full_params={
            "records": 20_000,
            "partitions": 4,
            "keys": 256,
            "acks": "all",
            "batch_bytes": 16_384,
        },
        quick_params={
            "records": 5_000,
            "partitions": 4,
            "keys": 256,
            "acks": "all",
            "batch_bytes": 16_384,
        },
    ),
    ScenarioSpec(
        name="flink_window",
        fn=flink_window,
        # columnar=True is the registered configuration; the ablation
        # (columnar=False, the row plane) is exercised by the bench tests
        # and must produce a byte-identical results digest.
        full_params={
            "records": 12_000,
            "keys": 64,
            "window_s": 5.0,
            "parallelism": 2,
            "columnar": True,
        },
        quick_params={
            "records": 3_000,
            "keys": 64,
            "window_s": 5.0,
            "parallelism": 2,
            "columnar": True,
        },
    ),
    ScenarioSpec(
        name="stream_join",
        fn=stream_join,
        # models, the keys:records and reads:records ratios and the
        # delay/ooo/lateness/ttl horizons are fixed across modes, so
        # per-record join-state and feature-store cost — and therefore
        # rps — is mode-invariant for the quick-vs-full gate.
        # crash_restore stays off in the registered config;
        # scripts/check_join_determinism.py runs the crash variant and
        # asserts digest equality against this one.
        full_params={
            "records": 8_000,
            "keys": 1_024,
            "models": 16,
            "delay_max_s": 8.0,
            "ooo_s": 2.0,
            "lateness_s": 1.0,
            "ttl_s": 8.0,
            "dup_rate": 0.05,
            "loss_rate": 0.05,
            "reads": 800,
            "parallelism": 2,
        },
        quick_params={
            "records": 2_000,
            "keys": 256,
            "models": 16,
            "delay_max_s": 8.0,
            "ooo_s": 2.0,
            "lateness_s": 1.0,
            "ttl_s": 8.0,
            "dup_rate": 0.05,
            "loss_rate": 0.05,
            "reads": 200,
            "parallelism": 2,
        },
    ),
    ScenarioSpec(
        name="pinot_ingest_query",
        fn=pinot_ingest_query,
        # query_rounds is identical in both modes (per-round query cost
        # scales with the row count), and segment_rows scales with records
        # (same segment count, same sealed/consuming mix), so the
        # per-record virtual cost — and therefore rps — is mode-invariant,
        # letting CI's --quick run gate against the committed full baseline.
        full_params={
            "records": 12_000,
            "keys": 20,
            "segment_rows": 1_000,
            "query_rounds": 4,
        },
        quick_params={
            "records": 3_000,
            "keys": 20,
            "segment_rows": 250,
            "query_rounds": 4,
        },
    ),
    ScenarioSpec(
        name="pinot_selective_query",
        fn=pinot_selective_query,
        # Same mode-invariance recipe as pinot_ingest_query: query_rounds
        # and the records:segment_rows ratio (segments per partition) are
        # fixed across modes, so per-record virtual cost — and rps — is
        # comparable between CI's --quick run and the full baseline.
        full_params={
            "records": 12_000,
            "keys": 16,
            "segment_rows": 1_000,
            "query_rounds": 4,
            "pruning": True,
            "cache": True,
            "sticky": True,
        },
        quick_params={
            "records": 3_000,
            "keys": 16,
            "segment_rows": 250,
            "query_rounds": 4,
            "pruning": True,
            "cache": True,
            "sticky": True,
        },
    ),
    ScenarioSpec(
        name="presto_scan",
        fn=presto_scan,
        # query_rounds and the records:segment_rows ratio are fixed across
        # modes for the same reason as pinot.  columnar=True (chunked
        # produce/ingest + ColumnBatch pages into the engine) is the
        # registered configuration; the row-plane ablation is exercised by
        # the bench tests and must digest byte-identically.
        full_params={
            "records": 8_000,
            "keys": 20,
            "segment_rows": 1_000,
            "query_rounds": 4,
            "columnar": True,
        },
        quick_params={
            "records": 2_000,
            "keys": 20,
            "segment_rows": 250,
            "query_rounds": 4,
            "columnar": True,
        },
    ),
    ScenarioSpec(
        name="presto_federated_join",
        fn=presto_federated_join,
        # query_rounds, the records:segment_rows ratio and the burst share
        # (records // 8) are fixed across modes, so per-record virtual
        # cost — and rps — is comparable between CI's --quick run and the
        # committed full baseline.
        full_params={
            "records": 6_000,
            "keys": 12,
            "segment_rows": 500,
            "query_rounds": 6,
            "reuse": True,
        },
        quick_params={
            "records": 1_500,
            "keys": 12,
            "segment_rows": 125,
            "query_rounds": 6,
            "reuse": True,
        },
    ),
    ScenarioSpec(
        name="controlplane_surge",
        fn=controlplane_surge,
        # The records:segment_rows ratio (segments per partition) is fixed
        # across modes so per-query scatter cost stays comparable; the
        # quick run shortens the timeline (duration/spike) and shrinks the
        # table, which only *lowers* per-record virtual cost — safe for
        # the quick-vs-full rps gate, which flags drops.
        full_params={
            "control": True,
            "records": 6_000,
            "segment_rows": 500,
            "users": 2_000_000,
            "base_rps": 10.0,
            "duration": 180.0,
            "spike_start": 60.0,
            "spike_end": 120.0,
            "broker_kill_at": 90.0,
            "broker_restart_at": 125.0,
            "sticky": True,
        },
        quick_params={
            "control": True,
            "records": 3_000,
            "segment_rows": 250,
            "users": 500_000,
            "base_rps": 8.0,
            "duration": 90.0,
            "spike_start": 30.0,
            "spike_end": 60.0,
            "broker_kill_at": 45.0,
            "broker_restart_at": 65.0,
            "sticky": True,
        },
    ),
)


def scenario_names() -> list[str]:
    return [spec.name for spec in SCENARIOS]


def quick_scenario_names() -> list[str]:
    return [spec.name for spec in SCENARIOS if spec.in_quick]
