"""repro.bench — the machine-readable perf harness and CI regression gate.

The unit benchmarks under ``benchmarks/`` assert the *shape* of the
paper's claims (who wins, roughly by how much) but leave no machine-
readable trajectory: a PR could make the Kafka append path or a Pinot
scan several times slower and CI would stay green.  This package closes
that gap:

* :mod:`repro.bench.scenarios` defines parameterized hot-path workloads —
  Kafka produce→fetch, a Flink window pipeline, Pinot realtime
  ingest+query, a Presto scan — each driven under the simulated clock
  from a single seed.
* :mod:`repro.bench.harness` runs them, collecting records/sec, p50/p99
  per-op latency and allocation counts from the perf counters threaded
  through the hot paths (:mod:`repro.common.perf`), plus true wall time
  and the simulated-vs-wall slowdown for human consumption.
* :mod:`repro.bench.baseline` compares a fresh run against a committed
  ``BENCH_core.json`` and flags throughput regressions beyond a
  threshold.
* ``python -m repro.bench`` is the CLI; CI runs it with ``--quick
  --baseline BENCH_core.json`` and fails the build on a >25% regression.

The committed JSON is **deterministic**: throughput and latency are
derived from counted hot-path operations through a fixed cost model
(:mod:`repro.bench.costmodel`), so two runs with the same seed emit
byte-identical files on any machine.  Wall-clock numbers — which vary
run to run — are printed and only embedded with ``--wall``.
"""

from repro.bench.baseline import BaselineComparison, compare_reports, load_report
from repro.bench.harness import (
    BenchReport,
    OpProbe,
    ScenarioResult,
    build_report,
    render_report,
    report_to_json,
    run_scenarios,
)
from repro.bench.scenarios import SCENARIOS, quick_scenario_names, scenario_names

__all__ = [
    "BaselineComparison",
    "BenchReport",
    "OpProbe",
    "SCENARIOS",
    "ScenarioResult",
    "build_report",
    "compare_reports",
    "load_report",
    "quick_scenario_names",
    "render_report",
    "report_to_json",
    "run_scenarios",
    "scenario_names",
]
