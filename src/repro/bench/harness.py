"""Scenario runner: perf counters in, deterministic report out.

The harness runs each scenario twice over nothing — once is enough: a
scenario executes under :class:`repro.common.perf.measured`, which
enables the global counters for exactly the scenario's duration.  An
:class:`OpProbe` handed to the scenario marks logical operation
boundaries (one produce call, one fetch page, one query, one scheduler
round); the harness derives p50/p99 per-op cost from the counter deltas
between marks, and true wall latency from ``time.perf_counter`` around
the same marks.

Report layout (``BENCH_core.json``)::

    {
      "schema_version": 1,
      "cost_model_version": 1,
      "seed": 42,
      "mode": "full",
      "scenarios": {
        "<name>": {
          "records": ...,   # workload size (records through the pipeline)
          "ops": ...,       # total counted hot-path operations
          "allocs": ...,    # counted allocations (``*_allocs`` counters)
          "sim_s": ...,     # simulated-clock seconds the workload spanned
          "wall_s": ...,    # virtual seconds (cost model over ops)
          "rps": ...,       # records / wall_s — the regression-gated number
          "p50_ms": ...,    # per-op virtual cost percentiles
          "p99_ms": ...,
          "check": ...,     # workload-validity checksum (results, not speed)
          "counters": {...} # full counter snapshot
        }
      }
    }

Everything in the file is derived from counted operations and the seeded
workload, so two runs with the same seed produce byte-identical bytes.
True wall-clock numbers (and the simulated-vs-wall slowdown) are kept in
a parallel :class:`WallStats` structure — printed, and embedded under a
``"wall"`` key only when explicitly requested (``--wall``), because they
are not reproducible.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field

from repro.bench.costmodel import (
    COST_MODEL_VERSION,
    alloc_count,
    virtual_us,
)
from repro.bench.scenarios import SCENARIOS, ScenarioSpec
from repro.common.errors import ReproError
from repro.common.perf import PERF, measured
from repro.common.records import reset_uid_counter

SCHEMA_VERSION = 1
DEFAULT_SEED = 42


class BenchError(ReproError):
    """Harness misuse: unknown scenario, malformed baseline, etc."""


class OpProbe:
    """Marks logical-operation boundaries inside a running scenario."""

    def __init__(self) -> None:
        self.op_costs_us: list[float] = []
        self.op_wall_s: list[float] = []
        self._open_virtual: float | None = None
        self._open_wall = 0.0

    def __enter__(self) -> "OpProbe":
        self._open_virtual = virtual_us(PERF.counts)
        self._open_wall = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = time.perf_counter() - self._open_wall
        if self._open_virtual is None:
            raise BenchError("OpProbe exited without being entered")
        self.op_costs_us.append(virtual_us(PERF.counts) - self._open_virtual)
        self.op_wall_s.append(wall)
        self._open_virtual = None

    def op(self) -> "OpProbe":
        """Readability alias: ``with probe.op(): ...`` marks one operation."""
        return self


@dataclass
class WallStats:
    """Non-deterministic companion numbers for one scenario."""

    wall_s: float
    rps: float
    p50_ms: float
    p99_ms: float
    sim_x_wall: float  # simulated seconds covered per wall second


@dataclass
class ScenarioResult:
    """One scenario's outcome: deterministic core + wall companion."""

    name: str
    records: int
    sim_s: float
    check: int
    counters: dict[str, int]
    op_costs_us: list[float]
    wall: WallStats

    @property
    def ops(self) -> int:
        return sum(self.counters.values())

    @property
    def virtual_s(self) -> float:
        return virtual_us(self.counters) / 1e6

    @property
    def rps(self) -> float:
        return self.records / self.virtual_s if self.virtual_s else math.inf

    def core_dict(self) -> dict:
        """The deterministic per-scenario JSON fragment."""
        return {
            "records": self.records,
            "ops": self.ops,
            "allocs": alloc_count(self.counters),
            "sim_s": round(self.sim_s, 6),
            "wall_s": round(self.virtual_s, 6),
            "rps": round(self.rps, 1),
            "p50_ms": round(_percentile(self.op_costs_us, 50) / 1e3, 6),
            "p99_ms": round(_percentile(self.op_costs_us, 99) / 1e3, 6),
            "check": self.check,
            "counters": dict(sorted(self.counters.items())),
        }


@dataclass
class BenchReport:
    seed: int
    mode: str
    results: list[ScenarioResult] = field(default_factory=list)

    def scenario(self, name: str) -> ScenarioResult:
        for result in self.results:
            if result.name == name:
                return result
        raise BenchError(f"no scenario {name!r} in report")


def _percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile over a copy-sorted list; 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def run_scenarios(
    names: list[str] | None = None,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> BenchReport:
    """Run the named scenarios (default: all; ``quick`` selects the smoke
    subset and its smaller parameter sets) and collect results."""
    specs = _select(names, quick)
    report = BenchReport(seed=seed, mode="quick" if quick else "full")
    for spec in specs:
        report.results.append(_run_one(spec, seed, quick))
    return report


def _select(names: list[str] | None, quick: bool) -> list[ScenarioSpec]:
    by_name = {spec.name: spec for spec in SCENARIOS}
    if names:
        unknown = [n for n in names if n not in by_name]
        if unknown:
            raise BenchError(
                f"unknown scenario(s) {unknown}; available: {sorted(by_name)}"
            )
        return [by_name[n] for n in names]
    if quick:
        return [spec for spec in SCENARIOS if spec.in_quick]
    return list(SCENARIOS)


def _run_one(spec: ScenarioSpec, seed: int, quick: bool) -> ScenarioResult:
    params = spec.quick_params if quick else spec.full_params
    probe = OpProbe()
    # Uid strings are stamped from a process-global counter and their
    # length feeds encoded record sizes (so producer batch boundaries);
    # restart it so a scenario's counts don't depend on what ran earlier
    # in this process.
    reset_uid_counter()
    wall_start = time.perf_counter()
    with measured():
        outcome = spec.fn(dict(params), seed, probe)
        counters = PERF.snapshot()
    wall_s = time.perf_counter() - wall_start
    result = ScenarioResult(
        name=spec.name,
        records=outcome.records,
        sim_s=outcome.sim_s,
        check=outcome.check,
        counters=counters,
        op_costs_us=probe.op_costs_us,
        wall=WallStats(
            wall_s=wall_s,
            rps=outcome.records / wall_s if wall_s else math.inf,
            p50_ms=_percentile(probe.op_wall_s, 50) * 1e3,
            p99_ms=_percentile(probe.op_wall_s, 99) * 1e3,
            sim_x_wall=outcome.sim_s / wall_s if wall_s else math.inf,
        ),
    )
    return result


# -- serialization -------------------------------------------------------------


def build_report(report: BenchReport, include_wall: bool = False) -> dict:
    """The report as a JSON-ready dict; deterministic unless
    ``include_wall`` adds the (non-reproducible) wall section."""
    doc: dict = {
        "schema_version": SCHEMA_VERSION,
        "cost_model_version": COST_MODEL_VERSION,
        "seed": report.seed,
        "mode": report.mode,
        "scenarios": {r.name: r.core_dict() for r in report.results},
    }
    if include_wall:
        doc["wall"] = {
            r.name: {
                "wall_s": round(r.wall.wall_s, 6),
                "rps": round(r.wall.rps, 1),
                "p50_ms": round(r.wall.p50_ms, 6),
                "p99_ms": round(r.wall.p99_ms, 6),
                "sim_x_wall": round(r.wall.sim_x_wall, 3),
            }
            for r in report.results
        }
    return doc


def report_to_json(report: BenchReport, include_wall: bool = False) -> str:
    """Canonical serialization: sorted keys, two-space indent, trailing
    newline.  Byte-identical across runs with the same seed (without the
    wall section)."""
    return json.dumps(build_report(report, include_wall), indent=2, sort_keys=True) + "\n"


def render_report(report: BenchReport) -> str:
    """Human-readable table: deterministic metrics plus wall context."""
    header = (
        f"{'scenario':<22} {'records':>8} {'rps':>12} {'p99_ms':>9} "
        f"{'allocs':>9} {'wall rps':>12} {'simxwall':>9}"
    )
    lines = [f"repro.bench seed={report.seed} mode={report.mode}", header,
             "-" * len(header)]
    for r in report.results:
        core = r.core_dict()
        lines.append(
            f"{r.name:<22} {core['records']:>8} {core['rps']:>12,.1f} "
            f"{core['p99_ms']:>9.3f} {core['allocs']:>9} "
            f"{r.wall.rps:>12,.1f} {r.wall.sim_x_wall:>9.1f}"
        )
    lines.append(
        "(rps/p99/allocs are deterministic, from the op-cost model; "
        "'wall rps' and 'simxwall' are this machine, this run)"
    )
    return "\n".join(lines)
