"""CLI: ``python -m repro.bench``.

Runs the perf scenarios, writes the deterministic ``BENCH_core.json``,
prints a summary table, and — given ``--baseline`` — compares throughput
against the committed contract, exiting non-zero on regression.

Exit codes: 0 ok, 1 throughput regression, 2 usage/baseline error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.baseline import (
    DEFAULT_THRESHOLD,
    BaselineError,
    compare_reports,
    load_report,
)
from repro.bench.harness import (
    DEFAULT_SEED,
    BenchError,
    build_report,
    render_report,
    report_to_json,
    run_scenarios,
)
from repro.bench.scenarios import scenario_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the hot-path perf scenarios and emit BENCH_core.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke subset: every scenario at its small parameter set",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help=f"run only the named scenario(s); available: {scenario_names()}",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out",
        default="BENCH_core.json",
        help="output path for the deterministic report (default: %(default)s)",
    )
    parser.add_argument(
        "--no-out",
        action="store_true",
        help="skip writing the JSON file (print-only run)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare against a committed report; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative rps drop that counts as a regression "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--wall",
        action="store_true",
        help="embed this machine's wall-clock numbers in the JSON "
        "(makes the file non-reproducible)",
    )
    args = parser.parse_args(argv)

    try:
        report = run_scenarios(
            names=args.scenario, seed=args.seed, quick=args.quick
        )
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(report))
    if not args.no_out:
        out_path = Path(args.out)
        out_path.write_text(report_to_json(report, include_wall=args.wall))
        print(f"wrote {out_path}")
    if args.baseline is None:
        return 0
    try:
        baseline = load_report(args.baseline)
        comparison = compare_reports(
            build_report(report), baseline, threshold=args.threshold
        )
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(comparison.render())
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
