"""Baseline comparison: the regression gate itself.

A committed ``BENCH_core.json`` is the perf contract; a fresh run is
compared scenario-by-scenario on the deterministic ``rps``.  A scenario
regresses when its throughput drops more than ``threshold`` (default
25%) below the baseline — CI fails on any regression.  Scenarios present
in the baseline but missing from the run also fail (a deleted workload
is not a speedup); scenarios new in the run pass with a note.

Comparisons across different schema or cost-model versions are rejected:
re-weighting the cost model must regenerate baselines, not shift the
gate silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

DEFAULT_THRESHOLD = 0.25


@dataclass
class ScenarioDelta:
    name: str
    baseline_rps: float | None
    current_rps: float | None
    regressed: bool
    note: str = ""

    def render(self) -> str:
        if self.baseline_rps is None:
            return f"  NEW  {self.name}: rps={self.current_rps:,.1f} (no baseline)"
        if self.current_rps is None:
            return f"  FAIL {self.name}: in baseline but not in this run"
        change = self.current_rps / self.baseline_rps - 1.0
        mark = "FAIL" if self.regressed else ("  ok" if change < 0 else "  up")
        return (
            f"  {mark} {self.name}: rps {self.baseline_rps:,.1f} -> "
            f"{self.current_rps:,.1f} ({change:+.1%})"
        )


@dataclass
class BaselineComparison:
    threshold: float
    deltas: list[ScenarioDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.regressed for d in self.deltas)

    @property
    def regressions(self) -> list[ScenarioDelta]:
        return [d for d in self.deltas if d.regressed]

    def render(self) -> str:
        verdict = (
            "no throughput regressions"
            if self.ok
            else f"{len(self.regressions)} scenario(s) regressed "
            f"beyond {self.threshold:.0%}"
        )
        lines = [f"baseline comparison (threshold {self.threshold:.0%}): {verdict}"]
        lines.extend(d.render() for d in self.deltas)
        return "\n".join(lines)


class BaselineError(Exception):
    """Unusable baseline: missing file, version mismatch, bad shape."""


def load_report(path: str | Path) -> dict:
    path = Path(path)
    if not path.exists():
        raise BaselineError(f"baseline file {path} does not exist")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "scenarios" not in doc:
        raise BaselineError(f"baseline {path} has no 'scenarios' section")
    return doc


def compare_reports(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> BaselineComparison:
    """Compare two report documents (as emitted by ``build_report``)."""
    for key in ("schema_version", "cost_model_version"):
        if baseline.get(key) != current.get(key):
            raise BaselineError(
                f"baseline {key}={baseline.get(key)} does not match "
                f"current {key}={current.get(key)}; regenerate the baseline"
            )
    comparison = BaselineComparison(threshold=threshold)
    base_scenarios = baseline["scenarios"]
    cur_scenarios = current["scenarios"]
    for name in sorted(set(base_scenarios) | set(cur_scenarios)):
        base_rps = base_scenarios.get(name, {}).get("rps")
        cur_rps = cur_scenarios.get(name, {}).get("rps")
        if base_rps is None:
            comparison.deltas.append(
                ScenarioDelta(name, None, cur_rps, regressed=False, note="new")
            )
        elif cur_rps is None:
            comparison.deltas.append(
                ScenarioDelta(name, base_rps, None, regressed=True, note="missing")
            )
        else:
            regressed = cur_rps < base_rps * (1.0 - threshold)
            comparison.deltas.append(
                ScenarioDelta(name, base_rps, cur_rps, regressed=regressed)
            )
    return comparison
