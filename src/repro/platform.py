"""The Platform facade: one object wiring the whole Figure 3 stack.

Every example and benchmark used to hand-assemble the same ~30 lines:
a :class:`SimulatedClock`, a seeded RNG, a Kafka cluster, a FlinkSQL
compiler, a Pinot controller + broker, a Presto engine over a connector
catalog — and with the observability layer each of those now also wants
the shared :class:`~repro.observability.trace.SpanCollector` and
:class:`~repro.common.metrics.MetricsRegistry`.  :class:`Platform` owns
those shared singletons and hands out correctly-wired components::

    p = (
        Platform(seed=2021)
        .with_kafka(num_brokers=3)
        .with_pinot(servers=3, backup="p2p")
        .with_presto(pushdown="full")
        .topic("rides", partitions=4)
    )
    producer = p.producer("rides-service")
    runtime = p.streaming_sql("SELECT ... FROM rides ...", sink_topic="city_stats")
    table = p.realtime_table(config, topic="city_stats")
    output = p.sql("SELECT ... FROM city_stats ...")
    report = p.freshness_probe("city_stats").run(sentinels=5)

Tracing is on by default (``tracing=False`` turns the whole layer off);
components built outside the facade keep their own independent defaults.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.common.clock import SimulatedClock
from repro.common.errors import PlatformError
from repro.common.metrics import MetricsRegistry
from repro.flink.graph import JobGraph
from repro.flink.runtime import DEFAULT_CHANNEL_CAPACITY, JobRuntime
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.kafka.consumer import Consumer, GroupCoordinator
from repro.kafka.producer import Producer
from repro.metadata.schema import FieldRole, FieldType, Schema
from repro.observability.freshness import FreshnessProbe, PinotFreshnessProbe
from repro.observability.slo import SloMonitor, SloTarget
from repro.observability.trace import SpanCollector
from repro.pinot.broker import PinotBroker
from repro.pinot.controller import PinotController, TableState
from repro.pinot.recovery import CentralizedBackup, PeerToPeerBackup
from repro.pinot.server import PinotServer
from repro.pinot.table import TableConfig
from repro.sql.flinksql import FlinkSqlCompiler, StreamTableDef
from repro.sql.presto.connector import Connector, PinotConnector
from repro.sql.presto.engine import PrestoEngine, QueryOutput
from repro.storage.blobstore import BlobStore


class Platform:
    """Builder/facade over the clock, Kafka, Flink, Pinot and Presto."""

    def __init__(
        self,
        seed: int = 2021,
        start_time: float = 0.0,
        name: str = "platform",
        tracing: bool = True,
    ) -> None:
        self.name = name
        self.seed = seed
        self.clock = SimulatedClock(start_time)
        self.rng = random.Random(seed)
        self.metrics = MetricsRegistry(name)
        self.tracer: SpanCollector | None = (
            SpanCollector(metrics=self.metrics) if tracing else None
        )
        self.slo_monitor = SloMonitor()
        self.kafka: KafkaCluster | None = None
        self.pinot: PinotController | None = None
        self.broker: PinotBroker | None = None
        self.presto: PrestoEngine | None = None
        self.sql_compiler = FlinkSqlCompiler({})
        self.runtimes: list[JobRuntime] = []
        self.checkpoint_store = BlobStore("checkpoints")
        self.segment_store = BlobStore("segments")
        self._presto_catalog: dict[str, Connector] = {}
        self._pushdown = "full"
        self._channel_capacity = DEFAULT_CHANNEL_CAPACITY
        self._coordinator: GroupCoordinator | None = None
        self.control_plane = None  # set by with_control_plane()

    # -- builders -----------------------------------------------------------

    def with_kafka(
        self, name: str | None = None, num_brokers: int = 3
    ) -> "Platform":
        self.kafka = KafkaCluster(
            name or f"{self.name}-kafka",
            num_brokers=num_brokers,
            clock=self.clock,
            tracer=self.tracer,
        )
        return self

    def with_flink(
        self, channel_capacity: int = DEFAULT_CHANNEL_CAPACITY
    ) -> "Platform":
        self._channel_capacity = channel_capacity
        return self

    def with_pinot(self, servers: int = 3, backup: str = "p2p") -> "Platform":
        if backup == "p2p":
            strategy = PeerToPeerBackup(self.segment_store)
        elif backup == "centralized":
            strategy = CentralizedBackup(self.segment_store)
        else:
            raise PlatformError(
                f"backup must be 'p2p' or 'centralized', got {backup!r}"
            )
        nodes = [PinotServer(f"{self.name}-pinot-{i}") for i in range(servers)]
        self.pinot = PinotController(nodes, strategy, tracer=self.tracer)
        self.broker = PinotBroker(
            self.pinot, clock=self.clock, tracer=self.tracer
        )
        return self

    def with_presto(
        self,
        pushdown: str = "full",
        workers: int = 2,
        artifact_reuse: bool = True,
        artifact_capacity: int = 256,
    ) -> "Platform":
        self._pushdown = pushdown
        self.presto = PrestoEngine(
            self._presto_catalog,
            clock=self.clock,
            tracer=self.tracer,
            workers=workers,
            artifact_reuse=artifact_reuse,
            artifact_capacity=artifact_capacity,
        )
        return self

    def with_control_plane(self, **knobs: Any) -> "Platform":
        """Attach SLO-tiered admission + cross-layer scaling (§3, §8).

        ``knobs`` pass through to
        :class:`~repro.controlplane.plane.ControlPlane` (targets,
        tier_rates, eval_interval, pressure probe).  After attaching,
        register resources via ``platform.control_plane.watch_*`` and
        route guarded queries through ``control_plane.sql`` /
        ``control_plane.pinot_query``; :meth:`step` evaluates the scaler
        on its cadence and applies Flink/Pinot capacity boosts.
        """
        from repro.controlplane.plane import ControlPlane

        self.control_plane = ControlPlane(self, **knobs)
        return self

    # -- kafka --------------------------------------------------------------

    def _require_kafka(self) -> KafkaCluster:
        if self.kafka is None:
            raise PlatformError("call with_kafka() first")
        return self.kafka

    def topic(self, name: str, partitions: int = 4, **config: Any) -> "Platform":
        self._require_kafka().create_topic(
            name, TopicConfig(partitions=partitions, **config)
        )
        return self

    def producer(
        self, service_name: str = "producer", acks: str = "1", **kwargs: Any
    ) -> Producer:
        return Producer(
            self._require_kafka(),
            service_name=service_name,
            acks=acks,
            clock=self.clock,
            tracer=self.tracer,
            **kwargs,
        )

    def consumer(
        self, group: str, topic: str, member_id: str = "member-0", **kwargs: Any
    ) -> Consumer:
        kafka = self._require_kafka()
        if self._coordinator is None:
            self._coordinator = GroupCoordinator(kafka)
        return Consumer(
            kafka,
            self._coordinator,
            group,
            topic,
            member_id,
            tracer=self.tracer,
            **kwargs,
        )

    # -- flink --------------------------------------------------------------

    def stream_table(
        self,
        name: str,
        topic: str | None = None,
        timestamp_column: str | None = None,
        max_out_of_orderness: float = 0.0,
    ) -> "Platform":
        self.sql_compiler.register_stream_table(
            name,
            StreamTableDef(
                self._require_kafka(),
                topic or name,
                timestamp_column=timestamp_column,
                max_out_of_orderness=max_out_of_orderness,
            ),
        )
        return self

    def job(self, graph: JobGraph) -> JobRuntime:
        """Instantiate a hand-built job graph on the shared infrastructure."""
        runtime = JobRuntime(
            graph,
            blob_store=self.checkpoint_store,
            channel_capacity=self._channel_capacity,
            clock=self.clock,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.runtimes.append(runtime)
        return runtime

    def streaming_sql(
        self,
        sql: str,
        sink_topic: str | None = None,
        sink_collector: list | None = None,
        job_name: str | None = None,
        allowed_lateness: float = 0.0,
        parallelism: int = 1,
        sink_transactional: bool = False,
    ) -> JobRuntime:
        """Compile a FlinkSQL query and run it on the shared runtime.

        ``sink_transactional=True`` makes the job's sinks 2PC/exactly-once:
        output is buffered per checkpoint epoch and committed only on
        checkpoint completion, so the job MUST checkpoint regularly (e.g.
        via the chaos harness) or nothing ever reaches the sink.
        """
        kafka = self._require_kafka()
        graph = self.sql_compiler.compile_streaming(
            sql,
            sink_collector=sink_collector,
            sink_kafka=(kafka, sink_topic) if sink_topic is not None else None,
            job_name=job_name,
            allowed_lateness=allowed_lateness,
            parallelism=parallelism,
            sink_transactional=sink_transactional,
        )
        return self.job(graph)

    # -- pinot / presto -----------------------------------------------------

    def _require_pinot(self) -> PinotController:
        if self.pinot is None:
            raise PlatformError("call with_pinot() first")
        return self.pinot

    def realtime_table(self, config: TableConfig, topic: str) -> TableState:
        """Create a Pinot realtime table and expose it to Presto."""
        state = self._require_pinot().create_realtime_table(
            config, self._require_kafka(), topic
        )
        # The Presto catalog dict is shared with the engine, so tables
        # registered after with_presto() are immediately queryable.
        assert self.broker is not None
        self._presto_catalog[config.name] = PinotConnector(
            self.broker, pushdown=self._pushdown
        )
        return state

    def sql(self, query: str) -> QueryOutput:
        if self.presto is None:
            raise PlatformError("call with_presto() first")
        return self.presto.execute(query)

    def explain(self, query: str) -> str:
        """Render the optimized logical plan and stage DAG for ``query``
        without executing it (byte-stable for a given catalog state)."""
        if self.presto is None:
            raise PlatformError("call with_presto() first")
        return self.presto.explain(query)

    # -- driving simulated time --------------------------------------------

    def step(self, dt: float = 1.0, flink_rounds: int = 4) -> None:
        """Advance the platform by ``dt`` simulated seconds.

        One tick of every background loop: the clock advances, followers
        replicate, every registered Flink job runs a few scheduler rounds,
        and every Pinot table ingests one step (plus one backup upload).
        With a control plane attached, its current capacity boosts apply
        (extra Flink rounds for lagging jobs, extra ingest slots for
        lagging tables) and the cross-layer scaler evaluates on its own
        cadence.
        """
        self.clock.advance(dt)
        cp = self.control_plane
        kafka = self.kafka
        if kafka is not None:
            kafka.replicate()
        for runtime in self.runtimes:
            boost = cp.flink_boost(runtime.graph.name) if cp is not None else 1
            runtime.run_rounds(flink_rounds * boost)
        if self.pinot is not None:
            for name, state in self.pinot.tables.items():
                slots = cp.ingest_slots(name) if cp is not None else 1
                state.ingestion.run_step(max_records_per_partition=500 * slots)
            self.pinot.backup.run_step()
        if cp is not None:
            cp.tick(self.clock.now())

    # -- chaos --------------------------------------------------------------

    def chaos(self, seed: int | None = None) -> "ChaosHarness":
        """A seeded fault scheduler over this platform's components.

        Defaults to the platform seed, so ``Platform(seed=7).chaos()``
        replays byte-identically; pass ``seed`` to explore a different
        fault schedule on the same pipeline.  See
        :class:`repro.chaos.harness.ChaosHarness`.
        """
        from repro.chaos.harness import ChaosHarness

        return ChaosHarness(self, seed=seed)

    # -- observability ------------------------------------------------------

    def freshness_probe(
        self,
        table: str,
        match_column: str | None = None,
        sentinel_factory: Callable[[str], dict] | None = None,
        step_interval: float = 1.0,
    ) -> PinotFreshnessProbe:
        """Active end-to-end prober for one Pinot realtime table.

        Sentinel rows are auto-generated from the table schema: the first
        STRING dimension carries the probe marker (override with
        ``match_column``/``sentinel_factory``), metrics are zero, and the
        time column is stamped with the current simulated time.
        """
        state = self._require_pinot().table(table)
        schema = state.config.schema
        if match_column is None:
            match_column = _default_match_column(schema)
        if sentinel_factory is None:
            sentinel_factory = _schema_sentinel_factory(
                schema, match_column, self.clock
            )
        assert self.broker is not None
        return PinotFreshnessProbe(
            producer=self.producer(service_name="freshness-probe"),
            topic=state.topic,
            table=table,
            broker=self.broker,
            match_column=match_column,
            sentinel_factory=sentinel_factory,
            step=lambda dt: self.step(dt),
            clock=self.clock,
            step_interval=step_interval,
        )

    def passive_probe(self) -> FreshnessProbe:
        """A passive freshness sampler on the shared clock."""
        return FreshnessProbe(clock=self.clock)

    def slo(self, target: SloTarget) -> "Platform":
        self.slo_monitor.add_target(target)
        return self

    def dashboard(self) -> str:
        """Spans-by-hop summary plus the SLO table, as one text block."""
        sections = []
        if self.tracer is not None and self.tracer.spans():
            sections.append(self.tracer.summary())
            anomalies = self.tracer.anomalies()
            if anomalies:
                sections.append(
                    "TRACE ANOMALIES:\n" + "\n".join(f"  {a}" for a in anomalies)
                )
        if self.slo_monitor.targets():
            sections.append(self.slo_monitor.render())
        return "\n\n".join(sections) if sections else "(no observability data)"


def _default_match_column(schema: Schema) -> str:
    for field in schema.fields:
        if field.type is FieldType.STRING and field.role is FieldRole.DIMENSION:
            return field.name
    raise PlatformError(
        f"schema {schema.name!r} has no STRING dimension to carry the probe "
        "marker; pass match_column/sentinel_factory explicitly"
    )


def _schema_sentinel_factory(
    schema: Schema, match_column: str, clock
) -> Callable[[str], dict]:
    """Build schema-conforming sentinel rows carrying ``marker``."""

    def factory(marker: str) -> dict:
        row: dict[str, Any] = {}
        for field in schema.fields:
            if field.name == match_column:
                row[field.name] = marker
            elif field.role is FieldRole.TIME:
                row[field.name] = (
                    clock.now()
                    if field.type
                    in (FieldType.FLOAT, FieldType.DOUBLE, FieldType.LONG, FieldType.INT)
                    else str(clock.now())
                )
                if field.type in (FieldType.LONG, FieldType.INT):
                    row[field.name] = int(clock.now())
            elif field.type is FieldType.STRING:
                row[field.name] = "probe"
            elif field.type in (FieldType.INT, FieldType.LONG):
                row[field.name] = 0
            elif field.type in (FieldType.FLOAT, FieldType.DOUBLE):
                row[field.name] = 0.0
            elif field.type is FieldType.BOOLEAN:
                row[field.name] = False
            elif field.type is FieldType.BYTES:
                row[field.name] = b""
            else:  # JSON
                row[field.name] = {}
        return row

    return factory
