"""The streaming runtime: tasks, channels, backpressure, checkpoints.

A :class:`JobRuntime` instantiates a validated job graph into subtasks
connected by bounded in-memory channels and drives them with a cooperative
scheduler.  The design reproduces the two Flink properties the paper leans
on (Section 4.2):

* **Backpressure.**  Channels have finite capacity.  A task only runs when
  every output channel has space, so pressure propagates upstream until the
  *sources stop consuming from Kafka* — lag accumulates in the broker (which
  is built for it) instead of ballooning operator memory.  The Storm
  baseline (``flink.baselines``) lacks exactly this property.
* **Barrier checkpointing.**  The coordinator injects numbered barriers at
  the sources; tasks align barriers across input channels, snapshot their
  state, and forward the barrier.  Source offsets plus aligned operator
  snapshots give an exactly-once-consistent recovery point in the storage
  layer.
* **Transactional (2PC) sinks.**  A sink marked ``transactional`` buffers
  writes per checkpoint epoch: records are *pre-committed* when the sink
  aligns a barrier and *committed* — actually written — only once every
  sink acknowledged that checkpoint.  ``restore_from`` aborts uncommitted
  epochs and bumps the Kafka producer epoch (zombie fencing), so sink
  output is exactly-once under crash-restore; eager (non-transactional)
  sinks keep the classic at-least-once replay semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.common import serde
from repro.common.clock import Clock, SystemClock
from repro.common.errors import (
    BlobNotFoundError,
    CheckpointError,
    FlinkError,
    StorageUnavailableError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.perf import PERF
from repro.kafka.producer import hash_partitioner
from repro.flink.graph import Edge, JobGraph, OperatorSpec, validate_graph
from repro.flink.operators import build_operator
from repro.flink.time import (
    CheckpointBarrier,
    RecordBatch,
    StreamRecord,
    StreamStatus,
    Watermark,
)
from repro.observability.trace import SpanCollector

DEFAULT_CHANNEL_CAPACITY = 1000

#: Longest run of data records drained from one channel under a single
#: backpressure probe.  Bounds channel overshoot to one micro-batch's
#: worth of emissions past capacity.
MICRO_BATCH = 32


def _batch_to_records(
    rbatch: RecordBatch, key_column: str | None = None
) -> list[StreamRecord]:
    """Adapt a columnar batch to row records (the batch→row boundary).

    Used wherever a consumer has no vectorized path: row-only operators,
    transactional sink buffers, traced sinks.  Keys come from the
    batch's ``keys`` tuple when present, else from ``key_column`` — the
    same key the row path would have attached at the hash exchange.
    """
    if PERF.enabled:
        PERF.inc("columnar.rows_adapted", len(rbatch))
    batch = rbatch.batch
    timestamps = rbatch.timestamps
    keys = rbatch.keys
    trace = rbatch.trace
    value_vector = batch.columns.get("__value__")
    key_vector = (
        batch.columns.get(key_column)
        if keys is None and key_column is not None
        else None
    )
    out: list[StreamRecord] = []
    for i in rbatch.row_indices():
        value = value_vector.get(i) if value_vector is not None else batch.row(i)
        if keys is not None:
            key = keys[i]
        elif key_vector is not None:
            key = key_vector.get(i)
        else:
            key = None
        out.append(StreamRecord(value, timestamps[i], key, trace))
    return out


@dataclass
class InputChannel:
    """One upstream-subtask -> downstream-subtask queue."""

    capacity: int
    input_index: int
    queue: deque = field(default_factory=deque)
    last_watermark: float = float("-inf")
    blocked_for: int | None = None  # checkpoint id currently aligning
    idle: bool = False  # excluded from the watermark minimum while True

    def has_space(self) -> bool:
        return len(self.queue) < self.capacity

    def push(self, element: Any) -> None:
        self.queue.append(element)


class SubTask:
    """One parallel instance of an operator."""

    def __init__(self, spec: OperatorSpec, index: int, runtime: "JobRuntime") -> None:
        self.spec = spec
        self.index = index
        self.runtime = runtime
        self.operator = (
            build_operator(spec) if spec.kind not in ("source", "sink") else None
        )
        self.reader = (
            spec.source.create_reader(index, spec.parallelism)
            if spec.kind == "source"
            else None
        )
        # (src_op_id, src_subtask_index) -> channel
        self.inputs: dict[tuple[str, int], InputChannel] = {}
        self.records_processed = 0
        self.completed_checkpoints: set[int] = set()
        self._out_watermark = float("-inf")
        self._rebalance_cursor = 0
        # 2PC sink transaction buffers (spec.transactional sinks only):
        # the open transaction collects records since the last barrier;
        # pre-committed transactions (closed at barrier alignment) wait,
        # keyed and committed in checkpoint-id order.
        self._txn_open: list[StreamRecord] = []
        self._txn_pre: dict[int, list[StreamRecord]] = {}
        # Cached output wiring, built lazily on first emit/space probe:
        # (edge, dst channels, dst key_fn, key -> target memo) per out edge.
        self._out: list | None = None
        self._out_channels: list[InputChannel] = []

    # -- wiring -------------------------------------------------------------

    def add_input(self, src_key: tuple[str, int], input_index: int) -> None:
        self.inputs[src_key] = InputChannel(
            self.runtime.channel_capacity, input_index
        )

    # -- output routing -------------------------------------------------------

    def _output_wiring(self) -> list:
        """Per-edge destination wiring, resolved once.

        The job graph is immutable after ``validate_graph``, so the
        per-record graph and task-table lookups of the naive routing path
        collapse into cached channel lists; each hash edge also carries a
        key -> target memo so a key is partition-hashed only the first
        time it is seen.
        """
        if self._out is None:
            self._out = []
            self._out_channels = []
            for edge in self.runtime.graph.downstream_of(self.spec.op_id):
                dst_spec = self.runtime.graph.operators[edge.dst]
                channels = [
                    task.inputs[(self.spec.op_id, self.index)]
                    for task in self.runtime.tasks[edge.dst]
                ]
                key_fn = self._dst_key_fn(dst_spec, edge)
                key_column = self._dst_key_column(dst_spec, edge)
                # The last slot memoizes code -> target lookup tables for
                # columnar hash routing, keyed per dictionary object.
                self._out.append((edge, channels, key_fn, {}, key_column, {}))
                self._out_channels.extend(channels)
        return self._out

    def _route_record(
        self,
        edge: Edge,
        channels: list[InputChannel],
        key_fn,
        key_targets: dict,
        record: StreamRecord,
    ) -> None:
        if PERF.enabled:
            PERF.inc("flink.cached_routes")
        if edge.partitioning == "hash":
            key = key_fn(record.value) if key_fn is not None else record.key
            record = record.with_key(key)
            try:
                target = key_targets.get(key)
            except TypeError:  # unhashable key: hash every time
                target = hash_partitioner(key, len(channels))
            else:
                if target is None:
                    target = hash_partitioner(key, len(channels))
                    key_targets[key] = target
            targets = (target,)
        elif edge.partitioning == "broadcast":
            targets = range(len(channels))
        elif edge.partitioning == "rebalance":
            targets = (self._rebalance_cursor % len(channels),)
            self._rebalance_cursor += 1
        else:  # forward
            targets = (self.index % len(channels),)
        if PERF.enabled:
            PERF.inc("flink.channel_pushes", len(targets))
        for target in targets:
            channels[target].push(record)

    @staticmethod
    def _dst_key_fn(dst_spec: OperatorSpec, edge: Edge):
        if (
            dst_spec.kind in ("join", "interval_join")
            and dst_spec.join_key_fns is not None
        ):
            return dst_spec.join_key_fns[edge.input_index]
        return dst_spec.key_fn

    @staticmethod
    def _dst_key_column(dst_spec: OperatorSpec, edge: Edge) -> str | None:
        """Key column for columnar hash routing; ``None`` forces the
        row-adapting fallback (joins key through opaque callables)."""
        if dst_spec.kind in ("join", "interval_join"):
            return None
        return dst_spec.key_column

    def _route_batch(
        self,
        edge: Edge,
        channels: list[InputChannel],
        key_fn,
        key_targets: dict,
        key_column: str | None,
        code_memo: dict,
        rbatch: RecordBatch,
    ) -> None:
        """Route a columnar batch along one edge without touching rows.

        Forward/broadcast edges and single-channel hash edges push the
        whole batch.  A multi-channel hash edge partitions by the key
        column *in code space*: the hash of each distinct value is
        memoized per dictionary (``code_memo`` keeps the dictionary
        alive, so ids cannot be reused), and each target receives a
        selection-vector view over the shared batch — no cell is copied.
        Batches without a usable dictionary-coded key column fall back
        to row-at-a-time routing via the adapter.
        """
        if PERF.enabled:
            PERF.inc("flink.cached_routes")
        n_channels = len(channels)
        if edge.partitioning == "hash" and n_channels > 1:
            vector = (
                rbatch.batch.columns.get(key_column)
                if key_column is not None
                else None
            )
            if vector is None or not vector.is_dict:
                for record in _batch_to_records(rbatch, key_column):
                    self._route_record(
                        edge, channels, key_fn, key_targets, record
                    )
                return
            memo = code_memo.get(id(vector.dictionary))
            if memo is None or memo[0] is not vector.dictionary:
                lut = [
                    hash_partitioner(value, n_channels)
                    for value in vector.dictionary
                ]
                code_memo[id(vector.dictionary)] = (vector.dictionary, lut)
            else:
                lut = memo[1]
            if PERF.enabled:
                PERF.inc("columnar.rows_routed", len(rbatch))
            null_target: int | None = None
            selections: list[list[int]] = [[] for __ in range(n_channels)]
            for i in rbatch.row_indices():
                code = vector.code_at(i)
                if code is None:
                    if null_target is None:
                        null_target = hash_partitioner(None, n_channels)
                    selections[null_target].append(i)
                else:
                    selections[lut[code]].append(i)
            pushes = 0
            for target, rows in enumerate(selections):
                if not rows:
                    continue
                channels[target].push(
                    RecordBatch(
                        rbatch.batch,
                        rbatch.timestamps,
                        rbatch.keys,
                        rbatch.trace,
                        tuple(rows),
                    )
                )
                pushes += 1
            if PERF.enabled and pushes:
                PERF.inc("flink.channel_pushes", pushes)
            return
        if edge.partitioning == "broadcast":
            targets = range(n_channels)
        elif edge.partitioning == "rebalance":
            # Whole-batch granularity: the batch is the unit of work.
            targets = (self._rebalance_cursor % n_channels,)
            self._rebalance_cursor += 1
        else:  # forward, or hash collapsed onto a single channel
            targets = (self.index % n_channels,)
        if PERF.enabled:
            PERF.inc("flink.channel_pushes", len(targets))
        for target in targets:
            channels[target].push(rbatch)

    def _broadcast_control(self, element: Any) -> None:
        """Watermarks and barriers go to every downstream subtask."""
        self._output_wiring()
        for channel in self._out_channels:
            channel.push(element)

    def emit(self, elements: list[Any]) -> None:
        wiring = self._output_wiring()
        for element in elements:
            if isinstance(element, StreamRecord):
                for edge, channels, key_fn, key_targets, __, __ in wiring:
                    self._route_record(edge, channels, key_fn, key_targets, element)
            elif isinstance(element, RecordBatch):
                for entry in wiring:
                    self._route_batch(*entry, element)
            else:
                for channel in self._out_channels:
                    channel.push(element)

    # -- backpressure ------------------------------------------------------------

    def output_has_space(self) -> bool:
        self._output_wiring()
        channels = self._out_channels
        if PERF.enabled:
            PERF.inc("flink.space_channel_checks", len(channels))
        for channel in channels:
            if not channel.has_space():
                return False
        return True

    # -- execution -----------------------------------------------------------------

    def run_source_step(self, max_records: int) -> int:
        assert self.reader is not None
        if not self.output_has_space():
            self.runtime.metrics.counter("backpressure_stalls").inc()
            return 0
        elements = self.reader.poll(max_records)
        data = [e for e in elements if isinstance(e, StreamRecord)]
        tracer = self.runtime.tracer
        if tracer is not None:
            # The process span opens when the record enters the job and is
            # closed by whichever sink its (possibly aggregated) descendant
            # reaches.  Records aggregated away never close theirs; the
            # collector evicts those.
            now = self.runtime.clock.now()
            for element in data:
                if element.trace is not None:
                    tracer.begin_span(
                        element.trace.trace_id,
                        "process",
                        "flink",
                        start=now,
                        job=self.runtime.graph.name,
                    )
        rows = len(data) + sum(
            len(e) for e in elements if isinstance(e, RecordBatch)
        )
        self.emit(elements)
        self.records_processed += rows
        return rows

    def step(self, budget: int) -> int:
        """Process up to ``budget`` elements from input channels."""
        if self.spec.kind == "source":
            return self.run_source_step(budget)
        if not self.output_has_space():
            self.runtime.metrics.counter("backpressure_stalls").inc()
            return 0
        processed = 0
        progress = True
        while processed < budget and progress:
            progress = False
            for channel in self.inputs.values():
                if processed >= budget:
                    break
                queue = channel.queue
                if channel.blocked_for is not None or not queue:
                    continue
                if isinstance(queue[0], StreamRecord):
                    # Micro-batch: drain a run of consecutive data records
                    # from this channel under a single backpressure probe.
                    # Control elements (watermarks, barriers, status) are
                    # never part of a run, so alignment and watermark
                    # propagation behave exactly as in the singly-stepped
                    # path.
                    limit = min(budget - processed, MICRO_BATCH)
                    run = [queue.popleft()]
                    while len(run) < limit and queue and isinstance(
                        queue[0], StreamRecord
                    ):
                        run.append(queue.popleft())
                    self._handle_records(run, channel)
                    processed += len(run)
                elif isinstance(queue[0], RecordBatch):
                    self._handle_record_batch(queue.popleft(), channel)
                    processed += 1
                else:
                    self._handle(queue.popleft(), channel)
                    processed += 1
                progress = True
                if not self.output_has_space():
                    return processed
        return processed

    def _handle_records(
        self, records: list[StreamRecord], channel: InputChannel
    ) -> None:
        """Dispatch a drained run of data records in one operator call."""
        if PERF.enabled:
            PERF.inc("flink.batch_elements", len(records))
        self.records_processed += len(records)
        if self.spec.kind == "sink":
            if self.spec.transactional:
                self._txn_open.extend(records)
            else:
                for record in records:
                    self._write_to_sink(record)
        else:
            assert self.operator is not None
            self.emit(self.operator.process_batch(records, channel.input_index))

    def _handle_record_batch(
        self, rbatch: RecordBatch, channel: InputChannel
    ) -> None:
        """Dispatch one columnar batch: vectorized kernel when the
        operator has one, batch→row adaptation otherwise.

        Sinks stay columnar only on the eager untraced path — 2PC
        buffers and trace-span closing are per-record contracts, so
        transactional or traced sinks adapt to records first.
        """
        if PERF.enabled:
            PERF.inc("flink.vector_batches")
        self.records_processed += len(rbatch)
        if self.spec.kind == "sink":
            write_batch = getattr(self.spec.sink, "write_batch", None)
            if (
                write_batch is not None
                and not self.spec.transactional
                and self.runtime.tracer is None
            ):
                write_batch(rbatch)
                return
            records = _batch_to_records(rbatch)
            if self.spec.transactional:
                self._txn_open.extend(records)
            else:
                for record in records:
                    self._write_to_sink(record)
            return
        assert self.operator is not None
        out = self.operator.process_columnar(rbatch, channel.input_index)
        if out is None:
            records = _batch_to_records(rbatch, self.spec.key_column)
            out = self.operator.process_batch(records, channel.input_index)
        self.emit(out)

    def _handle(self, element: Any, channel: InputChannel) -> None:
        if PERF.enabled:
            PERF.inc("flink.elements")
        if isinstance(element, StreamRecord):
            self.records_processed += 1
            if self.spec.kind == "sink":
                if self.spec.transactional:
                    self._txn_open.append(element)
                else:
                    self._write_to_sink(element)
            else:
                assert self.operator is not None
                self.emit(self.operator.process(element, channel.input_index))
        elif isinstance(element, Watermark):
            channel.idle = False
            channel.last_watermark = max(channel.last_watermark, element.timestamp)
            self._maybe_advance_watermark()
        elif isinstance(element, CheckpointBarrier):
            channel.blocked_for = element.checkpoint_id
            self._maybe_complete_alignment(element.checkpoint_id)
        elif isinstance(element, StreamStatus):
            channel.idle = element.idle
            if self.spec.kind != "sink":
                # This task is idle to its downstreams only when *every*
                # input is idle; re-activation propagates immediately.
                all_idle = all(c.idle for c in self.inputs.values())
                if element.idle and all_idle:
                    self._broadcast_control(StreamStatus(idle=True))
                elif not element.idle:
                    self._broadcast_control(StreamStatus(idle=False))
            self._maybe_advance_watermark()
        else:
            raise FlinkError(f"unknown stream element {element!r}")

    def _maybe_advance_watermark(self) -> None:
        active = [c for c in self.inputs.values() if not c.idle]
        if not active:
            return
        minimum = min(c.last_watermark for c in active)
        if minimum <= self._out_watermark:
            return
        self._out_watermark = minimum
        if self.spec.kind == "sink":
            return
        assert self.operator is not None
        self.emit(self.operator.on_watermark(Watermark(minimum)))
        self._broadcast_control(Watermark(minimum))

    # -- 2PC sink transactions ------------------------------------------------

    def _write_to_sink(self, record: StreamRecord) -> None:
        """Physically write one record (the only path into ``sink.write``)."""
        self.spec.sink.write(record)
        tracer = self.runtime.tracer
        if tracer is not None and record.trace is not None:
            tracer.end_span(
                record.trace.trace_id,
                "process",
                end=self.runtime.clock.now(),
                sink=self.spec.op_id,
            )

    def _precommit(self, checkpoint_id: int) -> None:
        """2PC phase one, at barrier alignment: close the open transaction
        under this checkpoint's epoch.  Nothing is written yet."""
        self._txn_pre[checkpoint_id] = self._txn_open
        self._txn_open = []
        self.runtime._txn_event(
            "precommit", self, checkpoint_id, len(self._txn_pre[checkpoint_id])
        )

    def commit_through(self, checkpoint_id: int) -> int:
        """2PC phase two: write every pre-committed transaction with an
        epoch at or below ``checkpoint_id``, in checkpoint order.  Returns
        records written."""
        written = 0
        for epoch in sorted(self._txn_pre):
            if epoch > checkpoint_id:
                break
            records = self._txn_pre.pop(epoch)
            for record in records:
                self._write_to_sink(record)
            written += len(records)
            self.runtime._txn_event("commit", self, epoch, len(records))
        return written

    def rollback_precommit(self, checkpoint_id: int) -> None:
        """Aborted checkpoint: its pre-committed records re-join the front
        of the open transaction (they precede it in stream order), so the
        next successful checkpoint commits them — no loss, no duplication."""
        records = self._txn_pre.pop(checkpoint_id, None)
        if records:
            self._txn_open[:0] = records

    def abort_transactions(self) -> int:
        """Crash-restore: discard every uncommitted transaction (the
        rewound sources will regenerate those records) and fence the sink's
        producer identity if it has one.  Returns records discarded."""
        discarded = len(self._txn_open)
        self._txn_open = []
        for epoch in sorted(self._txn_pre):
            discarded += len(self._txn_pre[epoch])
            self.runtime._txn_event(
                "abort", self, epoch, len(self._txn_pre[epoch])
            )
        self._txn_pre = {}
        on_restore = getattr(self.spec.sink, "on_restore", None)
        if on_restore is not None:
            on_restore()
        return discarded

    def pending_txn_records(self) -> int:
        """Buffered-but-uncommitted records (open + pre-committed)."""
        return len(self._txn_open) + sum(
            len(records) for records in self._txn_pre.values()
        )

    def _maybe_complete_alignment(self, checkpoint_id: int) -> None:
        if any(c.blocked_for != checkpoint_id for c in self.inputs.values()):
            return
        if self.spec.kind == "sink":
            if self.spec.transactional:
                self._precommit(checkpoint_id)
            self.completed_checkpoints.add(checkpoint_id)
            self.runtime._sink_acked(checkpoint_id, self)
        else:
            assert self.operator is not None
            self.runtime._store_snapshot(
                checkpoint_id, self.spec.op_id, self.index, self.operator.snapshot()
            )
            self._broadcast_control(CheckpointBarrier(checkpoint_id))
        self.completed_checkpoints.add(checkpoint_id)
        for c in self.inputs.values():
            c.blocked_for = None

    def inject_barrier(self, checkpoint_id: int) -> None:
        """Source-side barrier injection: snapshot offsets, forward barrier."""
        assert self.reader is not None
        self.runtime._store_source_snapshot(
            checkpoint_id, self.spec.op_id, self.index, self.reader.snapshot()
        )
        self.completed_checkpoints.add(checkpoint_id)
        self._broadcast_control(CheckpointBarrier(checkpoint_id))

    # -- introspection ----------------------------------------------------------------

    def buffered_elements(self) -> int:
        return sum(len(c.queue) for c in self.inputs.values())

    def state_size_bytes(self) -> int:
        if self.operator is None:
            return 0
        return self.operator.state.size_bytes()


class JobRuntime:
    """Instantiated job: tasks + channels + scheduler + checkpointing."""

    def __init__(
        self,
        graph: JobGraph,
        blob_store=None,
        channel_capacity: int = DEFAULT_CHANNEL_CAPACITY,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: SpanCollector | None = None,
    ) -> None:
        validate_graph(graph)
        self.graph = graph
        self.blob_store = blob_store
        self.channel_capacity = channel_capacity
        self.clock = clock or self._infer_clock(graph)
        self.tracer = tracer
        self.metrics = metrics or MetricsRegistry(f"flink.{graph.name}")
        if tracer is not None:
            # Kafka sinks re-produce results; hand them the tracer so the
            # derived record's second produce hop is spanned too.
            for spec in graph.sinks():
                if hasattr(spec.sink, "set_tracer"):
                    spec.sink.set_tracer(tracer)
        self.tasks: dict[str, list[SubTask]] = {}
        for spec in graph.operators.values():
            self.tasks[spec.op_id] = [
                SubTask(spec, i, self) for i in range(spec.parallelism)
            ]
        for edge in graph.edges:
            for src_task in self.tasks[edge.src]:
                for dst_task in self.tasks[edge.dst]:
                    dst_task.add_input(
                        (edge.src, src_task.index), edge.input_index
                    )
        self._topo = [spec.op_id for spec in graph.topological_order()]
        self._next_checkpoint_id = 1
        self._pending_sink_acks: dict[int, set[tuple[str, int]]] = {}
        self._completed_checkpoints: list[int] = []

    @staticmethod
    def _infer_clock(graph: JobGraph) -> Clock:
        """Default to the Kafka sources' cluster clock so span timestamps
        share one timeline with the produce/ingest hops."""
        for spec in graph.sources():
            cluster = getattr(spec.source, "cluster", None)
            if cluster is not None and getattr(cluster, "clock", None) is not None:
                return cluster.clock
        return SystemClock()

    # -- scheduling --------------------------------------------------------------

    def run_rounds(self, rounds: int = 1, budget_per_task: int = 200) -> int:
        """Run the cooperative scheduler; returns elements processed."""
        total = 0
        for __ in range(rounds):
            progress = 0
            for op_id in self._topo:
                for task in self.tasks[op_id]:
                    progress += task.step(budget_per_task)
            total += progress
            if progress == 0:
                break
        return total

    def run_until_quiescent(self, max_rounds: int = 100_000) -> int:
        """Run until no task can make progress (drained bounded input or
        fully caught up with Kafka)."""
        total = 0
        for __ in range(max_rounds):
            progress = self.run_rounds(1)
            total += progress
            if progress == 0:
                return total
        raise FlinkError(
            f"job {self.graph.name!r} did not quiesce in {max_rounds} rounds"
        )

    # -- checkpointing ------------------------------------------------------------

    def _checkpoint_key(self, checkpoint_id: int, op_id: str, index: int) -> str:
        return f"checkpoints/{self.graph.name}/{checkpoint_id}/{op_id}/{index}"

    def _checkpoint_prefix(self, checkpoint_id: int) -> str:
        return f"checkpoints/{self.graph.name}/{checkpoint_id}/"

    def _completion_marker_key(self, checkpoint_id: int) -> str:
        """Durable completion record: written only after every sink acked
        and every transactional sink committed, so a *fresh* runtime (job
        manager recovery) can tell completed checkpoints from debris."""
        return self._checkpoint_prefix(checkpoint_id) + "__complete__"

    def _txn_event(
        self, phase: str, task: SubTask, checkpoint_id: int, records: int
    ) -> None:
        """Counters + an instantaneous span per 2PC transition, so the
        dashboard shows precommit/commit/abort next to the data spans."""
        self.metrics.counter(f"sink_{phase}s").inc()
        self.metrics.counter(f"sink_records_{phase}ted" if phase != "abort"
                             else "sink_records_aborted").inc(records)
        if self.tracer is not None:
            now = self.clock.now()
            self.tracer.record_span(
                f"2pc-{self.graph.name}",
                phase,
                "flink",
                start=now,
                end=now,
                op=task.spec.op_id,
                subtask=task.index,
                checkpoint=checkpoint_id,
                records=records,
            )

    def _store_snapshot(
        self, checkpoint_id: int, op_id: str, index: int, data: bytes
    ) -> None:
        if self.blob_store is None:
            raise CheckpointError("no blob store configured for checkpoints")
        self.blob_store.put(self._checkpoint_key(checkpoint_id, op_id, index), data)

    def _store_source_snapshot(
        self, checkpoint_id: int, op_id: str, index: int, data: dict
    ) -> None:
        if self.blob_store is None:
            raise CheckpointError("no blob store configured for checkpoints")
        self.blob_store.put(
            self._checkpoint_key(checkpoint_id, op_id, index), serde.encode(data)
        )

    def _sink_acked(self, checkpoint_id: int, task: SubTask) -> None:
        pending = self._pending_sink_acks.get(checkpoint_id)
        if pending is None:
            return
        pending.discard((task.spec.op_id, task.index))
        if not pending:
            # Every sink aligned: commit phase.  Transactional sinks write
            # their pre-committed epochs now (in deterministic sink order),
            # then the completion marker makes the checkpoint durable.  A
            # commit failure propagates and aborts the checkpoint — the
            # uncommitted sinks' buffers roll back into their open
            # transactions, so nothing is lost for the next checkpoint.
            for spec in self.graph.sinks():
                if not spec.transactional:
                    continue
                for sink_task in self.tasks[spec.op_id]:
                    sink_task.commit_through(checkpoint_id)
            if self.blob_store is not None:
                self.blob_store.put(
                    self._completion_marker_key(checkpoint_id), b"complete"
                )
            self._completed_checkpoints.append(checkpoint_id)
            del self._pending_sink_acks[checkpoint_id]

    def trigger_checkpoint(self, max_rounds: int = 100_000) -> int:
        """Take a barrier-aligned checkpoint; returns its id.

        Injects barriers at every source subtask, then drives the scheduler
        until every sink subtask has acknowledged the barrier.  A checkpoint
        that stalls or fails mid-flight (snapshot store down, commit error)
        is *aborted*: its pending acks, per-task completion markers,
        in-flight barriers and partial snapshot blobs are all cleaned up,
        and pre-committed sink transactions roll back into the open
        transaction so the next checkpoint commits those records instead.
        """
        checkpoint_id = self._next_checkpoint_id
        self._next_checkpoint_id += 1
        self._pending_sink_acks[checkpoint_id] = {
            (spec.op_id, task.index)
            for spec in self.graph.sinks()
            for task in self.tasks[spec.op_id]
        }
        try:
            for spec in self.graph.sources():
                for task in self.tasks[spec.op_id]:
                    task.inject_barrier(checkpoint_id)
            # Alignment only needs the in-flight channel data ahead of the
            # barriers to drain; sources are NOT stepped, so a checkpoint
            # never pulls new input (and its position is exactly where it
            # was triggered).
            source_ids = {spec.op_id for spec in self.graph.sources()}
            for __ in range(max_rounds):
                if checkpoint_id in self._completed_checkpoints:
                    return checkpoint_id
                progress = 0
                for op_id in self._topo:
                    if op_id in source_ids:
                        continue
                    for task in self.tasks[op_id]:
                        progress += task.step(200)
                if progress == 0:
                    break
            if checkpoint_id in self._completed_checkpoints:
                return checkpoint_id
        except BaseException:
            self._abort_checkpoint(checkpoint_id)
            raise
        self._abort_checkpoint(checkpoint_id)
        raise CheckpointError(
            f"checkpoint {checkpoint_id} did not complete in {max_rounds} rounds"
        )

    def _abort_checkpoint(self, checkpoint_id: int) -> None:
        """Undo every trace of a failed/stalled checkpoint.

        Leaves the job able to keep running and to take (and complete) the
        next checkpoint: no dangling pending-ack entry, no per-task
        completion marker, no blocked channel or queued barrier for the
        aborted id, no orphaned snapshot blobs, and no sink records stranded
        in a pre-committed transaction that would never commit.
        """
        self._pending_sink_acks.pop(checkpoint_id, None)
        for tasks in self.tasks.values():
            for task in tasks:
                task.completed_checkpoints.discard(checkpoint_id)
                task.rollback_precommit(checkpoint_id)
                for channel in task.inputs.values():
                    if channel.blocked_for == checkpoint_id:
                        channel.blocked_for = None
                    if any(
                        isinstance(e, CheckpointBarrier)
                        and e.checkpoint_id == checkpoint_id
                        for e in channel.queue
                    ):
                        channel.queue = deque(
                            e
                            for e in channel.queue
                            if not (
                                isinstance(e, CheckpointBarrier)
                                and e.checkpoint_id == checkpoint_id
                            )
                        )
        if self.blob_store is not None:
            try:
                for key in self.blob_store.list(
                    self._checkpoint_prefix(checkpoint_id)
                ):
                    self.blob_store.delete(key)
            except StorageUnavailableError:
                # Storage being down is likely *why* we are aborting; the
                # orphaned partial blobs are harmless debris (restore only
                # trusts checkpoints with a completion marker).
                pass
        self.metrics.counter("checkpoints_aborted").inc()

    def completed_checkpoints(self) -> list[int]:
        return list(self._completed_checkpoints)

    def restore_from(self, checkpoint_id: int) -> None:
        """Reset all tasks to the checkpointed state (after a failure).

        In-flight channel contents are discarded; sources rewind to the
        checkpointed offsets, so every record after the checkpoint is
        reprocessed — exactly-once for internal state, and exactly-once into
        *transactional* sinks too: their uncommitted transactions are
        aborted here (the rewound sources will regenerate those records)
        and the Kafka producer epoch is bumped, fencing any zombie
        pre-failure task that might still try to commit.  Eager
        (non-transactional) sinks keep at-least-once replay semantics.

        Only *completed* checkpoints are restorable.  An id that is neither
        in this runtime's completed list nor durably marked complete in the
        blob store (the ``__complete__`` marker written at commit) raises
        :class:`CheckpointError` before any task state is touched — a
        failed restore must not leave the job half-mutated.
        """
        if self.blob_store is None:
            raise CheckpointError("no blob store configured for checkpoints")
        if checkpoint_id not in self._completed_checkpoints:
            # Fresh runtime (job-manager recovery): fall back to the
            # durable completion marker.
            if not self.blob_store.exists(self._completion_marker_key(checkpoint_id)):
                raise CheckpointError(
                    f"checkpoint {checkpoint_id} was never completed; refusing "
                    f"to restore (completed: {self._completed_checkpoints})"
                )
        # Prefetch every snapshot before mutating anything, so a missing or
        # unreadable blob cannot leave the job partially restored.
        snapshots: dict[tuple[str, int], Any] = {}
        try:
            for op_id, tasks in self.tasks.items():
                for task in tasks:
                    if task.spec.kind == "sink":
                        continue
                    key = self._checkpoint_key(checkpoint_id, op_id, task.index)
                    data = self.blob_store.get(key)
                    snapshots[(op_id, task.index)] = (
                        serde.decode(data) if task.spec.kind == "source" else data
                    )
        except BlobNotFoundError as exc:
            raise CheckpointError(
                f"checkpoint {checkpoint_id} is incomplete: {exc}"
            ) from exc
        for op_id, tasks in self.tasks.items():
            for task in tasks:
                for channel in task.inputs.values():
                    channel.queue.clear()
                    channel.blocked_for = None
                    channel.last_watermark = float("-inf")
                    channel.idle = False
                task._out_watermark = float("-inf")
                if task.spec.kind == "source":
                    assert task.reader is not None
                    task.reader.restore(snapshots[(op_id, task.index)])
                elif task.spec.kind == "sink":
                    task.abort_transactions()
                else:
                    assert task.operator is not None
                    task.operator.restore(snapshots[(op_id, task.index)])
        # Abandon any checkpoint that was mid-flight when we crashed, and
        # never reuse an id (a zombie's stale barrier must not collide).
        self._pending_sink_acks.clear()
        self._next_checkpoint_id = max(self._next_checkpoint_id, checkpoint_id + 1)
        if checkpoint_id not in self._completed_checkpoints:
            self._completed_checkpoints.append(checkpoint_id)

    # -- introspection ------------------------------------------------------------

    def total_source_lag(self) -> int:
        return sum(
            task.reader.lag()
            for spec in self.graph.sources()
            for task in self.tasks[spec.op_id]
            if task.reader is not None
        )

    def total_state_bytes(self) -> int:
        return sum(
            task.state_size_bytes()
            for tasks in self.tasks.values()
            for task in tasks
        )

    def join_spill_pressure(self) -> float:
        """Worst spill pressure across the job's interval-join subtasks.

        0.0 when the job has no budgeted join state; >= 1.0 means some
        join subtask's buffered state would spill — the AutoScaler scales
        up on that signal before lag or utilization ever move.
        """
        pressure = 0.0
        for tasks in self.tasks.values():
            for task in tasks:
                gauge = getattr(task.operator, "spill_pressure", None)
                if gauge is not None:
                    pressure = max(pressure, gauge())
        return pressure

    def total_buffered_elements(self) -> int:
        return sum(
            task.buffered_elements()
            for tasks in self.tasks.values()
            for task in tasks
        )

    def records_processed(self) -> dict[str, int]:
        return {
            op_id: sum(t.records_processed for t in tasks)
            for op_id, tasks in self.tasks.items()
        }
