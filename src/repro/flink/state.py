"""Keyed state backends (Section 4.2: "built-in state management").

Operators access state scoped to the current key.  The backend snapshots to
and restores from plain bytes via the serde layer, which is what the
checkpoint coordinator persists to the storage layer.  State size is
measurable (``deep_sizeof``) for the memory benchmarks and the
autoscaler's memory-bound heuristics.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.common import serde
from repro.common.errors import CheckpointError
from repro.common.memory import deep_sizeof


class KeyedStateBackend:
    """All keyed state of one operator subtask.

    State is organized as named *descriptors* (like Flink's state
    descriptors); each descriptor holds a map key -> value.  Values must be
    serde-serializable for checkpointing (enforced at snapshot time, not on
    every update, to keep the hot path fast).
    """

    def __init__(self) -> None:
        self._state: dict[str, dict[Hashable, Any]] = {}

    # -- value state -------------------------------------------------------

    def get(self, descriptor: str, key: Hashable, default: Any = None) -> Any:
        return self._state.get(descriptor, {}).get(key, default)

    def put(self, descriptor: str, key: Hashable, value: Any) -> None:
        self._state.setdefault(descriptor, {})[key] = value

    def remove(self, descriptor: str, key: Hashable) -> None:
        table = self._state.get(descriptor)
        if table is not None:
            table.pop(key, None)

    def keys(self, descriptor: str) -> list[Hashable]:
        return list(self._state.get(descriptor, {}))

    def items(self, descriptor: str) -> list[tuple[Hashable, Any]]:
        return list(self._state.get(descriptor, {}).items())

    # -- list state ---------------------------------------------------------

    def append(self, descriptor: str, key: Hashable, value: Any) -> None:
        table = self._state.setdefault(descriptor, {})
        table.setdefault(key, []).append(value)

    def get_list(self, descriptor: str, key: Hashable) -> list[Any]:
        return self._state.get(descriptor, {}).get(key, [])

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        self._state.clear()

    def size_bytes(self) -> int:
        """Retained memory of all state (drives autoscaling + benches)."""
        return deep_sizeof(self._state)

    def entry_count(self) -> int:
        return sum(len(table) for table in self._state.values())

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize all state.  Keys and values must be serde-compatible;
        tuples are converted to lists (and restored as tuples for keys)."""
        try:
            payload = {
                descriptor: [[_key_to_wire(k), _value_to_wire(v)] for k, v in table.items()]
                for descriptor, table in self._state.items()
            }
            return serde.encode(payload)
        except Exception as exc:
            raise CheckpointError(f"state is not serializable: {exc}") from exc

    def restore(self, data: bytes) -> None:
        payload = serde.decode(data)
        self._state = {
            descriptor: {_key_from_wire(k): _value_from_wire(v) for k, v in entries}
            for descriptor, entries in payload.items()
        }


def _key_to_wire(key: Hashable) -> Any:
    if isinstance(key, tuple):
        return {"__tuple__": [_key_to_wire(k) for k in key]}
    return key


def _key_from_wire(key: Any) -> Hashable:
    if isinstance(key, dict) and "__tuple__" in key:
        return tuple(_key_from_wire(k) for k in key["__tuple__"])
    return key


def _value_to_wire(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"__tuple__": [_value_to_wire(v) for v in value]}
    if isinstance(value, list):
        return [_value_to_wire(v) for v in value]
    if isinstance(value, dict):
        return {k: _value_to_wire(v) for k, v in value.items()}
    return value


def _value_from_wire(value: Any) -> Any:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_value_from_wire(v) for v in value["__tuple__"])
    if isinstance(value, list):
        return [_value_from_wire(v) for v in value]
    if isinstance(value, dict):
        return {k: _value_from_wire(v) for k, v in value.items()}
    return value
