"""Micro-batch ("Spark Streaming"-style) engine baseline (claim C2).

Section 4.2: "Spark jobs consumed 5-10 times more memory than a
corresponding Flink job for the same workload."

The structural reason, reproduced here: a micro-batch engine materializes
every record of the current batch interval as an in-memory dataset (an
RDD), transforms it batch-at-a-time, and retains recently generated RDDs
for lineage/fault tolerance.  A streaming engine like our
:class:`~repro.flink.runtime.JobRuntime` holds only per-key window
*accumulators* plus small channel buffers.  Both engines run the same
logical job (keyed tumbling-window aggregation); the memory bench
measures actual retained bytes of each engine's structures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.memory import deep_sizeof
from repro.flink.windows import AggregateFunction, WindowResult, TimeWindow


@dataclass
class MicroBatch:
    """One materialized batch (the RDD)."""

    batch_start: float
    records: list[tuple[Any, float, Any]]  # (value, timestamp, key)


class MicroBatchEngine:
    """Micro-batch keyed windowed aggregation.

    ``batch_interval`` seconds of input are buffered, then processed as one
    dataset.  ``retained_batches`` recent input batches are kept cached for
    lineage-based recovery (Spark's default behaviour of caching the
    receiver's blocks until checkpoint cleanup).
    """

    def __init__(
        self,
        key_fn: Callable[[Any], Any],
        window_size: float,
        aggregator: AggregateFunction,
        batch_interval: float = 10.0,
        retained_batches: int = 2,
    ) -> None:
        self.key_fn = key_fn
        self.window_size = window_size
        self.aggregator = aggregator
        self.batch_interval = batch_interval
        self.retained_batches = retained_batches
        self._current: MicroBatch | None = None
        self._lineage: list[MicroBatch] = []
        # (key, window_start) -> accumulator; carried across batches.
        self._window_state: dict[tuple[Any, float], Any] = {}
        self._watermark = float("-inf")
        self.results: list[WindowResult] = []
        self.peak_memory_bytes = 0
        self._ingests_since_probe = 0

    def ingest(self, value: Any, timestamp: float, key: Any = None) -> None:
        """Buffer one record into the current batch, processing boundaries."""
        if self._current is None:
            start = math.floor(timestamp / self.batch_interval) * self.batch_interval
            self._current = MicroBatch(start, [])
        while timestamp >= self._current.batch_start + self.batch_interval:
            self._process_batch()
            self._current = MicroBatch(
                self._current.batch_start + self.batch_interval, []
            )
        self._current.records.append((value, timestamp, key))
        # Probing memory is O(retained objects); sample rather than probe
        # per record.  Batch boundaries always probe (the peak is there).
        self._ingests_since_probe += 1
        if self._ingests_since_probe >= 2000:
            self._ingests_since_probe = 0
            self._observe_memory()

    def _process_batch(self) -> None:
        assert self._current is not None
        batch = self._current
        # Batch transformation: group by (key, window), fold accumulators.
        for value, timestamp, __ in batch.records:
            key = self.key_fn(value)
            window_start = (
                math.floor(timestamp / self.window_size) * self.window_size
            )
            state_key = (key, window_start)
            acc = self._window_state.get(state_key)
            if acc is None:
                acc = self.aggregator.create_accumulator()
            self._window_state[state_key] = self.aggregator.add(value, acc)
            self._watermark = max(self._watermark, timestamp)
        # Emit windows that closed before this batch's end.
        batch_end = batch.batch_start + self.batch_interval
        for state_key in sorted(self._window_state, key=lambda k: (k[1], str(k[0]))):
            key, window_start = state_key
            if window_start + self.window_size <= batch_end:
                acc = self._window_state.pop(state_key)
                self.results.append(
                    WindowResult(
                        key,
                        TimeWindow(window_start, window_start + self.window_size),
                        self.aggregator.get_result(acc),
                    )
                )
        # Lineage cache: keep recent raw input batches around.
        self._lineage.append(batch)
        if len(self._lineage) > self.retained_batches:
            self._lineage.pop(0)
        self._observe_memory()

    def flush(self) -> None:
        """End of input: process the pending batch and fire all windows."""
        if self._current is not None and self._current.records:
            self._process_batch()
        self._current = None
        for state_key in sorted(self._window_state, key=lambda k: (k[1], str(k[0]))):
            key, window_start = state_key
            acc = self._window_state.pop(state_key)
            self.results.append(
                WindowResult(
                    key,
                    TimeWindow(window_start, window_start + self.window_size),
                    self.aggregator.get_result(acc),
                )
            )

    def _observe_memory(self) -> None:
        retained = deep_sizeof(
            {
                "current": self._current,
                "lineage": self._lineage,
                "window_state": self._window_state,
            }
        )
        if retained > self.peak_memory_bytes:
            self.peak_memory_bytes = retained

    def memory_bytes(self) -> int:
        return self.peak_memory_bytes
