"""Baseline engines the paper compares Flink against (Section 4.2)."""

from repro.flink.baselines.backlog import (
    RecoveryResult,
    recovery_comparison,
    simulate_flink_recovery,
    simulate_storm_recovery,
)
from repro.flink.baselines.spark import MicroBatchEngine

__all__ = [
    "RecoveryResult",
    "recovery_comparison",
    "simulate_flink_recovery",
    "simulate_storm_recovery",
    "MicroBatchEngine",
]
