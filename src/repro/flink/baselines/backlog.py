"""Backlog-recovery queueing simulation: Flink vs Storm (claim C1).

Section 4.2: "Storm performed poorly in handling back pressure when faced
with a massive input backlog of millions of messages, taking several hours
to recover whereas Flink only took 20 minutes."

The mechanism, not the constant, is what we reproduce:

* **Flink (credit-based backpressure).**  The source only pulls what the
  bounded in-flight buffer can hold, so the worker always does useful work.
  Recovery time ≈ backlog / (service_rate - arrival_rate).
* **Storm (ack-timeout replay, no backpressure).**  The spout floods the
  queue.  Tuples wait so long that their ack timers expire while queued:
  the spout replays them (more load), and when the original finally reaches
  the worker the work is wasted.  Goodput collapses to the fraction of
  tuples processed within the timeout.
* **Storm (drop mode).**  Same engine with replay disabled: timed-out
  tuples are counted as lost.  Fast "recovery", but with data loss — the
  other horn of the Section 4.1.2 dilemma.

Tuples are tracked in cohorts (enqueue-time buckets) so simulating a
million-message backlog costs thousands of cohort operations, not millions
of per-tuple events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class RecoveryResult:
    """Outcome of draining a backlog under one discipline."""

    discipline: str
    recovery_seconds: float
    completed: int
    wasted_work: int  # tuples processed after their ack already expired
    replays: int
    lost: int
    peak_queue_length: int

    def goodput_fraction(self) -> float:
        total_work = self.completed + self.wasted_work
        return self.completed / total_work if total_work else 0.0


@dataclass
class _Cohort:
    enqueue_time: float
    count: int
    attempt: int = 0
    stale: bool = False  # ack expired; processing it is wasted work


def simulate_flink_recovery(
    backlog: int,
    service_rate: float,
    arrival_rate: float = 0.0,
    buffer_capacity: int = 10_000,
    dt: float = 1.0,
    max_time: float = 1e7,
) -> RecoveryResult:
    """Credit-based engine: bounded in-flight buffer, no wasted work."""
    if service_rate <= arrival_rate:
        raise ValueError(
            "service rate must exceed arrival rate or recovery never ends"
        )
    remaining = backlog  # still in Kafka
    in_flight = 0
    completed = 0
    peak_queue = 0
    now = 0.0
    carry_arrivals = 0.0
    while completed < backlog and now < max_time:
        # New events keep arriving during recovery and join the backlog.
        carry_arrivals += arrival_rate * dt
        new = int(carry_arrivals)
        carry_arrivals -= new
        remaining += new
        backlog += new
        # Source pulls only what the buffer can hold (credits).
        pull = min(remaining, buffer_capacity - in_flight)
        remaining -= pull
        in_flight += pull
        peak_queue = max(peak_queue, in_flight)
        # Worker drains the buffer at the service rate.
        served = min(in_flight, int(service_rate * dt))
        in_flight -= served
        completed += served
        now += dt
    return RecoveryResult(
        discipline="flink",
        recovery_seconds=now,
        completed=completed,
        wasted_work=0,
        replays=0,
        lost=0,
        peak_queue_length=peak_queue,
    )


def simulate_storm_recovery(
    backlog: int,
    service_rate: float,
    ack_timeout: float = 30.0,
    spout_rate: float | None = None,
    max_pending: int | None = None,
    replay: bool = True,
    replay_backoff: float = 5.0,
    dt: float = 1.0,
    max_time: float = 1e7,
) -> RecoveryResult:
    """Ack-timeout engine without operator-level backpressure.

    The spout floods the topology at ``spout_rate`` (default 10x the
    service rate) subject only to a coarse ``max_pending`` cap (default:
    4x the work the worker can do within one ack timeout — enough to
    guarantee congestive thrash).  Tuples whose ack timer expires while
    they sit in the queue are *failed*: with ``replay=True`` the spout
    re-emits them after an exponential backoff (Storm's standard escape
    from congestive collapse), and when the original finally reaches the
    worker, that processing is wasted work.  With ``replay=False`` failed
    tuples are simply lost.
    """
    if spout_rate is None:
        spout_rate = service_rate * 10
    if max_pending is None:
        max_pending = int(4 * service_rate * ack_timeout)
    queue: deque[_Cohort] = deque()
    backoff_pool: list[_Cohort] = []  # replays waiting out their backoff
    remaining = backlog
    pending = 0  # emitted and neither acked nor permanently resolved
    distinct_completed = 0
    wasted = 0
    replays = 0
    lost = 0
    peak_queue = 0
    now = 0.0
    while distinct_completed + lost < backlog and now < max_time:
        now += dt
        # Replays whose backoff elapsed re-enter the queue first.
        ready = [c for c in backoff_pool if c.enqueue_time <= now]
        if ready:
            backoff_pool = [c for c in backoff_pool if c.enqueue_time > now]
            for cohort in ready:
                cohort.enqueue_time = now
                queue.append(cohort)
        # Spout emits new tuples, bounded only by the coarse pending cap.
        emit = min(remaining, int(spout_rate * dt), max(0, max_pending - pending))
        remaining -= emit
        if emit:
            queue.append(_Cohort(now, emit))
            pending += emit
        # Ack timers fire for anything queued longer than the timeout.
        for cohort in queue:
            if not cohort.stale and now - cohort.enqueue_time > ack_timeout:
                cohort.stale = True
                if replay:
                    replays += cohort.count
                    delay = replay_backoff * (2**cohort.attempt)
                    backoff_pool.append(
                        _Cohort(now + delay, cohort.count, cohort.attempt + 1)
                    )
                else:
                    lost += cohort.count
                    pending -= cohort.count
        # Worker processes FIFO at the service rate.
        capacity = int(service_rate * dt)
        while capacity > 0 and queue:
            head = queue[0]
            take = min(capacity, head.count)
            head.count -= take
            capacity -= take
            if head.stale:
                wasted += take
            else:
                distinct_completed += take
                pending -= take
            if head.count == 0:
                queue.popleft()
        peak_queue = max(
            peak_queue, sum(c.count for c in queue) + sum(c.count for c in backoff_pool)
        )
    return RecoveryResult(
        discipline="storm-replay" if replay else "storm-drop",
        recovery_seconds=now,
        completed=distinct_completed,
        wasted_work=wasted,
        replays=replays,
        lost=lost,
        peak_queue_length=peak_queue,
    )


def recovery_comparison(
    backlog: int = 1_000_000,
    service_rate: float = 1000.0,
    ack_timeout: float = 30.0,
) -> dict[str, RecoveryResult]:
    """Run all three disciplines on the same backlog (bench C1 driver)."""
    return {
        "flink": simulate_flink_recovery(backlog, service_rate),
        "storm-replay": simulate_storm_recovery(
            backlog, service_rate, ack_timeout, replay=True
        ),
        "storm-drop": simulate_storm_recovery(
            backlog, service_rate, ack_timeout, replay=False
        ),
    }
