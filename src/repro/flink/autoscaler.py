"""Resource estimation and auto-scaling (Section 4.2.1).

The paper describes two mechanisms the platform team built for FlinkSQL
jobs:

* **Empirical resource estimation by job type.**  "A stateless Flink job
  which does not maintain any aggregation windows is CPU bound vs a
  stream-stream join job will almost always be memory bound."  We classify
  a job graph by its operators and produce an initial CPU/memory profile.
* **Reactive auto-scaling.**  "Continuous monitoring of the job load and
  garbage collection statistics" with scale-up/down decisions to maximize
  cluster utilization across peak and off-peak hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.flink.graph import JobGraph


class JobProfile(Enum):
    """Dominant resource by job shape (empirical table from the paper)."""

    STATELESS_CPU_BOUND = "stateless-cpu-bound"
    WINDOWED_MIXED = "windowed-mixed"
    JOIN_MEMORY_BOUND = "join-memory-bound"


@dataclass(frozen=True)
class ResourceEstimate:
    """Initial allocation for a job."""

    profile: JobProfile
    cpu_cores: float
    memory_mb: float
    parallelism: int


def classify_job(graph: JobGraph) -> JobProfile:
    """Classify a job graph by its most demanding operator."""
    kinds = {op.kind for op in graph.operators.values()}
    if "join" in kinds or "interval_join" in kinds:
        return JobProfile.JOIN_MEMORY_BOUND
    if "window" in kinds:
        return JobProfile.WINDOWED_MIXED
    return JobProfile.STATELESS_CPU_BOUND


def estimate_resources(
    graph: JobGraph,
    expected_rate: float,
    records_per_core_per_s: float = 5000.0,
    window_state_mb_per_1k_keys: float = 2.0,
    expected_keys: int = 1000,
) -> ResourceEstimate:
    """Initial CPU/memory sizing from the empirical correlation table.

    CPU scales with the expected input rate; memory scales with key
    cardinality for windowed jobs and is doubled for stream-stream joins
    (both sides buffered).
    """
    profile = classify_job(graph)
    cores = max(1.0, expected_rate / records_per_core_per_s)
    base_memory = 256.0  # runtime overhead
    if profile is JobProfile.STATELESS_CPU_BOUND:
        memory = base_memory
    elif profile is JobProfile.WINDOWED_MIXED:
        memory = base_memory + window_state_mb_per_1k_keys * expected_keys / 1000.0
    else:
        memory = base_memory + 2 * window_state_mb_per_1k_keys * expected_keys / 1000.0
    parallelism = max(1, round(cores))
    return ResourceEstimate(profile, cores, memory, parallelism)


@dataclass
class ScalingDecision:
    action: str  # 'scale_up' | 'scale_down' | 'hold'
    reason: str
    new_parallelism: int


class AutoScaler:
    """Reactive scaler evaluating job load and memory-pressure signals.

    Inputs per evaluation: input rate vs processing capacity (lag trend)
    and state size vs the budget (the stand-in for GC pressure).  Uses
    hysteresis so oscillating load does not cause flapping.

    One scaler instance may serve many jobs: pass ``job_id`` so the lag
    trend of one job never masks (or fakes) another's.  The very first
    observation of a job counts as "growing" when it is already above the
    scale-up threshold — a job restored with a huge backlog must not hold
    for a full evaluation cycle waiting for a second sample.
    """

    def __init__(
        self,
        target_utilization: float = 0.75,
        scale_up_lag_threshold: int = 10_000,
        scale_down_utilization: float = 0.3,
        memory_budget_bytes: int = 64 * 1024 * 1024,
        min_parallelism: int = 1,
        max_parallelism: int = 64,
    ) -> None:
        self.target_utilization = target_utilization
        self.scale_up_lag_threshold = scale_up_lag_threshold
        self.scale_down_utilization = scale_down_utilization
        self.memory_budget_bytes = memory_budget_bytes
        self.min_parallelism = min_parallelism
        self.max_parallelism = max_parallelism
        self._last_lag: dict[str, float] = {}

    def evaluate(
        self,
        parallelism: int,
        source_lag: float,
        state_bytes: float,
        input_rate: float = 0.0,
        capacity_per_subtask: float = 5000.0,
        job_id: str = "default",
        spill_pressure: float = 0.0,
    ) -> ScalingDecision:
        last_lag = self._last_lag.get(job_id)
        lag_growing = last_lag is None or source_lag > last_lag
        self._last_lag[job_id] = source_lag
        capacity = parallelism * capacity_per_subtask
        utilization = input_rate / capacity if capacity else 1.0

        # Join-state spill pressure outranks every other signal: a
        # memory-bound stream-stream join (Section 4.2.1) degrades the
        # moment its buffers spill, long before lag or utilization move.
        # Re-keying over twice the subtasks halves per-subtask state.
        if spill_pressure >= 1.0:
            new = min(self.max_parallelism, parallelism * 2)
            if new > parallelism:
                return ScalingDecision(
                    "scale_up",
                    f"join-state spill pressure {spill_pressure:.2f} at/over "
                    "budget (memory-bound join)",
                    new,
                )
        if state_bytes > self.memory_budget_bytes:
            new = min(self.max_parallelism, parallelism * 2)
            if new > parallelism:
                return ScalingDecision(
                    "scale_up",
                    f"memory pressure: state {state_bytes:.0f}B over budget "
                    f"{self.memory_budget_bytes}B (GC churn)",
                    new,
                )
        if source_lag > self.scale_up_lag_threshold and lag_growing:
            new = min(self.max_parallelism, parallelism * 2)
            if new > parallelism:
                return ScalingDecision(
                    "scale_up",
                    f"lag {source_lag:.0f} above threshold and growing",
                    new,
                )
        if utilization > self.target_utilization:
            new = min(self.max_parallelism, parallelism + 1)
            if new > parallelism:
                return ScalingDecision(
                    "scale_up",
                    f"utilization {utilization:.2f} above target "
                    f"{self.target_utilization}",
                    new,
                )
        if (
            utilization < self.scale_down_utilization
            and source_lag == 0
            and parallelism > self.min_parallelism
        ):
            return ScalingDecision(
                "scale_down",
                f"off-peak: utilization {utilization:.2f} with zero lag",
                max(self.min_parallelism, parallelism // 2),
            )
        return ScalingDecision("hold", "within targets", parallelism)
