"""Stream processing: a Flink-flavoured dataflow engine.

DataStream-style builder (graph), event time + watermarks (time), windows
and aggregates (windows), keyed state (state), operators, a cooperative
runtime with credit-style backpressure and barrier checkpointing
(runtime), and the platform pieces from the paper: unified job management
(jobserver, Section 4.2.2), resource estimation + auto-scaling
(autoscaler) and the rule-based recovery watchdog (watchdog, both
Section 4.2.1).
"""

from repro.flink.autoscaler import (
    AutoScaler,
    JobProfile,
    ResourceEstimate,
    ScalingDecision,
    classify_job,
    estimate_resources,
)
from repro.flink.graph import DataStream, JobGraph, StreamEnvironment, validate_graph
from repro.flink.jobserver import (
    ComputeCluster,
    JobPriority,
    JobServer,
    JobState,
    ManagedJob,
)
from repro.flink.operators import (
    BoundedListSource,
    CollectSink,
    IntervalJoinOperator,
    KafkaSink,
    KafkaSource,
    WindowJoinOperator,
)
from repro.flink.runtime import JobRuntime
from repro.flink.state import KeyedStateBackend
from repro.flink.time import (
    BoundedOutOfOrdernessWatermarks,
    CheckpointBarrier,
    StreamRecord,
    StreamStatus,
    Watermark,
)
from repro.flink.watchdog import Rule, Watchdog, WatchdogEvent
from repro.flink.windows import (
    AvgAggregate,
    CollectAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    SessionWindows,
    SlidingWindows,
    SumAggregate,
    TimeWindow,
    TumblingWindows,
    WindowResult,
)

__all__ = [
    "AutoScaler",
    "JobProfile",
    "ResourceEstimate",
    "ScalingDecision",
    "classify_job",
    "estimate_resources",
    "DataStream",
    "JobGraph",
    "StreamEnvironment",
    "validate_graph",
    "ComputeCluster",
    "JobPriority",
    "JobServer",
    "JobState",
    "ManagedJob",
    "BoundedListSource",
    "CollectSink",
    "IntervalJoinOperator",
    "KafkaSink",
    "KafkaSource",
    "WindowJoinOperator",
    "JobRuntime",
    "KeyedStateBackend",
    "BoundedOutOfOrdernessWatermarks",
    "CheckpointBarrier",
    "StreamRecord",
    "StreamStatus",
    "Watermark",
    "Rule",
    "Watchdog",
    "WatchdogEvent",
    "AvgAggregate",
    "CollectAggregate",
    "CountAggregate",
    "MaxAggregate",
    "MinAggregate",
    "SessionWindows",
    "SlidingWindows",
    "SumAggregate",
    "TimeWindow",
    "TumblingWindows",
    "WindowResult",
]
