"""The unified job management layer (Section 4.2.2, Figure 5).

Sits between the platform layer (FlinkSQL, business components) and the
physical infrastructure.  Offers the unified API abstractions the paper
lists — validate / start / stop / list — persists job metadata and state
checkpoints, dispatches jobs to compute clusters by type and priority, and
continuously monitors health, automatically recovering jobs from transient
failures (the shared component of Figure 5's middle layer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.common.errors import JobNotFoundError, JobValidationError
from repro.common.metrics import MetricsRegistry
from repro.flink.graph import JobGraph, validate_graph
from repro.flink.runtime import JobRuntime
from repro.storage.blobstore import BlobStore


class JobState(Enum):
    VALIDATED = "validated"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"
    RECOVERING = "recovering"


class JobPriority(Enum):
    CRITICAL = 0  # surge, payments
    PRODUCTION = 1  # dashboards, monitoring
    ADHOC = 2  # exploration, backfills


@dataclass
class ComputeCluster:
    """One physical compute cluster (YARN / Peloton pool in the paper)."""

    name: str
    total_slots: int
    used_slots: int = 0

    def free_slots(self) -> int:
        return self.total_slots - self.used_slots


@dataclass
class ManagedJob:
    """Job metadata the management layer persists."""

    job_id: str
    graph: JobGraph
    priority: JobPriority
    state: JobState
    cluster: str | None = None
    runtime: JobRuntime | None = None
    restarts: int = 0
    last_checkpoint: int | None = None
    slots: int = 0
    tags: dict[str, Any] = field(default_factory=dict)


class JobServer:
    """Deploy, monitor and recover streaming jobs across compute clusters."""

    def __init__(self, checkpoint_store: BlobStore | None = None) -> None:
        self.checkpoint_store = checkpoint_store or BlobStore("flink-checkpoints")
        self.clusters: dict[str, ComputeCluster] = {}
        self.jobs: dict[str, ManagedJob] = {}
        self._ids = itertools.count(1)
        self.metrics = MetricsRegistry("jobserver")

    def add_cluster(self, name: str, total_slots: int) -> ComputeCluster:
        cluster = ComputeCluster(name, total_slots)
        self.clusters[name] = cluster
        return cluster

    # -- unified API (Start / Stop / List, Section 4.2.2) ---------------------

    def validate(self, graph: JobGraph) -> None:
        validate_graph(graph)

    def submit(
        self,
        graph: JobGraph,
        priority: JobPriority = JobPriority.PRODUCTION,
        slots: int | None = None,
    ) -> str:
        """Validate, place and start a job; returns its job id."""
        self.validate(graph)
        job_id = f"job-{next(self._ids)}"
        needed = slots if slots is not None else sum(
            op.parallelism for op in graph.operators.values()
        )
        cluster = self._place(needed, priority)
        runtime = JobRuntime(graph, blob_store=self.checkpoint_store)
        job = ManagedJob(
            job_id=job_id,
            graph=graph,
            priority=priority,
            state=JobState.RUNNING,
            cluster=cluster.name,
            runtime=runtime,
            slots=needed,
        )
        cluster.used_slots += needed
        self.jobs[job_id] = job
        self.metrics.counter("jobs_submitted").inc()
        return job_id

    def _place(self, slots: int, priority: JobPriority) -> ComputeCluster:
        """Dispatch by priority: critical jobs get first pick of capacity."""
        if not self.clusters:
            raise JobValidationError("no compute clusters registered")
        candidates = [c for c in self.clusters.values() if c.free_slots() >= slots]
        if not candidates:
            if priority is JobPriority.CRITICAL:
                # Critical jobs may oversubscribe the least-loaded cluster.
                return min(
                    self.clusters.values(), key=lambda c: c.used_slots / c.total_slots
                )
            raise JobValidationError(
                f"no cluster has {slots} free slots for a {priority.name} job"
            )
        return max(candidates, key=ComputeCluster.free_slots)

    def stop(self, job_id: str, with_savepoint: bool = True) -> int | None:
        """Stop a job, optionally taking a final checkpoint (savepoint)."""
        job = self.get(job_id)
        savepoint = None
        if with_savepoint and job.runtime is not None:
            savepoint = job.runtime.trigger_checkpoint()
            job.last_checkpoint = savepoint
        self._release(job)
        job.state = JobState.STOPPED
        return savepoint

    def _release(self, job: ManagedJob) -> None:
        if job.cluster is not None:
            self.clusters[job.cluster].used_slots -= job.slots

    def list_jobs(self, state: JobState | None = None) -> list[ManagedJob]:
        jobs = sorted(self.jobs.values(), key=lambda j: j.job_id)
        if state is None:
            return jobs
        return [j for j in jobs if j.state == state]

    def get(self, job_id: str) -> ManagedJob:
        if job_id not in self.jobs:
            raise JobNotFoundError(f"unknown job {job_id!r}")
        return self.jobs[job_id]

    # -- execution driving ----------------------------------------------------

    def run_all(self, rounds: int = 1) -> dict[str, int]:
        """Drive every running job's scheduler; returns per-job progress."""
        progress = {}
        for job in self.jobs.values():
            if job.state is JobState.RUNNING and job.runtime is not None:
                progress[job.job_id] = job.runtime.run_rounds(rounds)
        return progress

    def checkpoint(self, job_id: str) -> int:
        job = self.get(job_id)
        if job.runtime is None:
            raise JobValidationError(f"job {job_id} has no runtime")
        checkpoint_id = job.runtime.trigger_checkpoint()
        job.last_checkpoint = checkpoint_id
        self.metrics.counter("checkpoints").inc()
        return checkpoint_id

    # -- failure handling -------------------------------------------------------

    def mark_failed(self, job_id: str) -> None:
        """Record a job failure (detected by the watchdog or a user)."""
        job = self.get(job_id)
        job.state = JobState.FAILED
        self.metrics.counter("failures").inc()

    def recover(self, job_id: str) -> bool:
        """Automatically restart a failed job from its last checkpoint.

        Builds a fresh runtime and restores state + source offsets; if no
        checkpoint exists, restarts from scratch (sources at earliest).
        Returns True on success.
        """
        job = self.get(job_id)
        if job.state is not JobState.FAILED:
            return False
        job.state = JobState.RECOVERING
        runtime = JobRuntime(job.graph, blob_store=self.checkpoint_store)
        if job.last_checkpoint is not None:
            runtime.restore_from(job.last_checkpoint)
        job.runtime = runtime
        job.restarts += 1
        job.state = JobState.RUNNING
        self.metrics.counter("recoveries").inc()
        return True

    def health_snapshot(self) -> dict[str, dict[str, float]]:
        """Per-job metrics the watchdog rules evaluate."""
        out: dict[str, dict[str, float]] = {}
        for job in self.jobs.values():
            if job.runtime is None:
                continue
            out[job.job_id] = {
                "state_bytes": float(job.runtime.total_state_bytes()),
                "join_spill_pressure": job.runtime.join_spill_pressure(),
                "buffered_elements": float(job.runtime.total_buffered_elements()),
                "source_lag": float(job.runtime.total_source_lag()),
                "running": 1.0 if job.state is JobState.RUNNING else 0.0,
                "restarts": float(job.restarts),
            }
        return out
