"""Window assigners and aggregate functions.

Supports the window shapes the paper's pipelines use: tumbling windows
(surge pricing's "per time window" multipliers, Chaperone-style counts),
sliding windows (moving business metrics) and session windows.  Aggregation
follows Flink's incremental ``AggregateFunction`` contract so window state
holds accumulators, not raw elements — the memory property the Spark
comparison (C2) measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.common.errors import FlinkError


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """Half-open event-time interval [start, end)."""

    start: float
    end: float

    def max_timestamp(self) -> float:
        return self.end


class WindowAssigner(Protocol):
    def assign(self, timestamp: float) -> list[TimeWindow]:
        """Windows that an element with this timestamp belongs to."""
        ...

    def is_session(self) -> bool: ...


class TumblingWindows:
    """Fixed, non-overlapping windows of ``size`` seconds."""

    def __init__(self, size: float) -> None:
        if size <= 0:
            raise FlinkError(f"window size must be positive, got {size}")
        self.size = size

    def assign(self, timestamp: float) -> list[TimeWindow]:
        start = math.floor(timestamp / self.size) * self.size
        return [TimeWindow(start, start + self.size)]

    def is_session(self) -> bool:
        return False


class SlidingWindows:
    """Overlapping windows of ``size`` seconds every ``slide`` seconds."""

    def __init__(self, size: float, slide: float) -> None:
        if size <= 0 or slide <= 0:
            raise FlinkError("window size and slide must be positive")
        if slide > size:
            raise FlinkError(
                f"slide ({slide}) larger than size ({size}) would drop data; "
                "use tumbling windows instead"
            )
        self.size = size
        self.slide = slide

    def assign(self, timestamp: float) -> list[TimeWindow]:
        windows = []
        last_start = math.floor(timestamp / self.slide) * self.slide
        start = last_start
        while start > timestamp - self.size:
            windows.append(TimeWindow(start, start + self.size))
            start -= self.slide
        return windows

    def is_session(self) -> bool:
        return False


class SessionWindows:
    """Gap-based session windows; merged by the window operator."""

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise FlinkError(f"session gap must be positive, got {gap}")
        self.gap = gap

    def assign(self, timestamp: float) -> list[TimeWindow]:
        return [TimeWindow(timestamp, timestamp + self.gap)]

    def is_session(self) -> bool:
        return True


class AggregateFunction(Protocol):
    """Flink's incremental aggregation contract.

    Aggregates that can run in the vectorized plane additionally expose
    ``column`` (the input column their extractor reads, or ``None`` for
    column-less aggregates like count) and ``add_raw`` (the same update
    as ``add`` but over a pre-extracted cell value) — the window
    operator's columnar kernel accumulates straight from column vectors
    without materializing row objects.
    """

    def create_accumulator(self) -> Any: ...

    def add(self, value: Any, accumulator: Any) -> Any: ...

    def get_result(self, accumulator: Any) -> Any: ...

    def merge(self, a: Any, b: Any) -> Any: ...


def _column_extract(
    extract: Callable[[Any], float] | str,
) -> tuple[Callable[[Any], float], str | None]:
    """Resolve an extractor spec into ``(callable, column_name)``.

    A string names an input column: the row path reads ``value[name]``
    and the columnar path reads the column vector directly.  A callable
    is opaque — it works row-at-a-time only (``column`` stays ``None``
    and the window operator falls back to the row kernel).
    """
    if isinstance(extract, str):
        name = extract
        return (lambda value: value[name]), name
    return extract, None


class CountAggregate:
    """Counts elements."""

    column = None

    def create_accumulator(self) -> int:
        return 0

    def add(self, value: Any, accumulator: int) -> int:
        return accumulator + 1

    def add_raw(self, value: Any, accumulator: int) -> int:
        return accumulator + 1

    def get_result(self, accumulator: int) -> int:
        return accumulator

    def merge(self, a: int, b: int) -> int:
        return a + b


class SumAggregate:
    """Sums ``extract(value)``."""

    def __init__(self, extract: Callable[[Any], float] | str) -> None:
        self.extract, self.column = _column_extract(extract)

    def create_accumulator(self) -> float:
        return 0.0

    def add(self, value: Any, accumulator: float) -> float:
        return accumulator + self.extract(value)

    def add_raw(self, value: float, accumulator: float) -> float:
        return accumulator + value

    def get_result(self, accumulator: float) -> float:
        return accumulator

    def merge(self, a: float, b: float) -> float:
        return a + b


class AvgAggregate:
    """Arithmetic mean of ``extract(value)``."""

    def __init__(self, extract: Callable[[Any], float] | str) -> None:
        self.extract, self.column = _column_extract(extract)

    def create_accumulator(self) -> tuple[float, int]:
        return (0.0, 0)

    def add(self, value: Any, accumulator: tuple[float, int]) -> tuple[float, int]:
        total, count = accumulator
        return (total + self.extract(value), count + 1)

    def add_raw(
        self, value: float, accumulator: tuple[float, int]
    ) -> tuple[float, int]:
        total, count = accumulator
        return (total + value, count + 1)

    def get_result(self, accumulator: tuple[float, int]) -> float:
        total, count = accumulator
        return total / count if count else float("nan")

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        return (a[0] + b[0], a[1] + b[1])


class MinAggregate:
    def __init__(self, extract: Callable[[Any], float] | str) -> None:
        self.extract, self.column = _column_extract(extract)

    def create_accumulator(self) -> float:
        return math.inf

    def add(self, value: Any, accumulator: float) -> float:
        return min(accumulator, self.extract(value))

    def add_raw(self, value: float, accumulator: float) -> float:
        return min(accumulator, value)

    def get_result(self, accumulator: float) -> float:
        return accumulator

    def merge(self, a: float, b: float) -> float:
        return min(a, b)


class MaxAggregate:
    def __init__(self, extract: Callable[[Any], float] | str) -> None:
        self.extract, self.column = _column_extract(extract)

    def create_accumulator(self) -> float:
        return -math.inf

    def add(self, value: Any, accumulator: float) -> float:
        return max(accumulator, self.extract(value))

    def add_raw(self, value: float, accumulator: float) -> float:
        return max(accumulator, value)

    def get_result(self, accumulator: float) -> float:
        return accumulator

    def merge(self, a: float, b: float) -> float:
        return max(a, b)


class CollectAggregate:
    """Keeps raw elements (used where the result needs them, e.g. joins).

    Deliberately memory-heavy; prefer incremental aggregates.
    """

    def create_accumulator(self) -> list:
        return []

    def add(self, value: Any, accumulator: list) -> list:
        accumulator.append(value)
        return accumulator

    def get_result(self, accumulator: list) -> list:
        return list(accumulator)

    def merge(self, a: list, b: list) -> list:
        return a + b


@dataclass(frozen=True, slots=True)
class WindowResult:
    """Emitted by the window operator when a window fires."""

    key: Any
    window: TimeWindow
    value: Any
