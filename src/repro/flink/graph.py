"""Job graph and the fluent DataStream-style builder API.

This is the "low-level API" surface of Section 4.2 that advanced users
program against (FlinkSQL compiles to it, Section 4.2.1).  A
:class:`StreamEnvironment` accumulates operator specs; ``build()``
validates and returns an immutable :class:`JobGraph` that the runtime
instantiates.

Example::

    env = StreamEnvironment()
    env.from_kafka(cluster, "trips", group="surge") \\
       .key_by(lambda trip: trip["hex_id"]) \\
       .window(TumblingWindows(60)) \\
       .aggregate(CountAggregate()) \\
       .sink_to_list(results)
    job_graph = env.build("demand-counter")
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import JobValidationError
from repro.flink.windows import AggregateFunction, WindowAssigner

Partitioning = str  # 'forward' | 'hash' | 'rebalance' | 'broadcast'


@dataclass
class OperatorSpec:
    """One node of the job graph."""

    op_id: str
    # source | map | filter | flat_map | window | join | interval_join |
    # sink | process
    kind: str
    parallelism: int = 1
    # operator payloads (exactly the ones the kind uses):
    fn: Callable | None = None
    key_fn: Callable | None = None
    # Column-name form of key_fn, when the key is one input column.  Set
    # via ``key_by("city")``; lets the runtime route and aggregate
    # columnar batches in the vectorized plane without calling key_fn on
    # materialized row objects.  key_fn is still always populated (the
    # row path and row-only operators keep using it).
    key_column: str | None = None
    assigner: WindowAssigner | None = None
    aggregator: AggregateFunction | None = None
    allowed_lateness: float = 0.0
    source: Any = None  # SourceFunction for kind == 'source'
    sink: Any = None  # SinkFunction for kind == 'sink'
    join_key_fns: tuple[Callable, Callable] | None = None
    join_fn: Callable | None = None
    # Interval joins (kind == 'interval_join'): pair (left, right) iff
    # ``left.ts - right.ts ∈ [join_lower, join_upper]``.  state_ttl
    # extends buffered-entry retention past the join horizon;
    # spill_budget_bytes arms the operator's spill-pressure signal.
    join_lower: float | None = None
    join_upper: float | None = None
    state_ttl: float | None = None
    spill_budget_bytes: int | None = None
    # Exactly-once sinks (kind == 'sink' only): writes are buffered per
    # checkpoint epoch and two-phase committed on checkpoint completion
    # instead of written eagerly.  Without checkpoints nothing commits, so
    # a transactional sink only makes sense on a checkpointed job.
    transactional: bool = False


@dataclass
class Edge:
    src: str
    dst: str
    partitioning: Partitioning = "forward"
    # For joins: which logical input of dst this edge feeds (0 or 1).
    input_index: int = 0


@dataclass
class JobGraph:
    """Validated, immutable description of a streaming job."""

    name: str
    operators: dict[str, OperatorSpec]
    edges: list[Edge]

    def upstream_of(self, op_id: str) -> list[Edge]:
        return [e for e in self.edges if e.dst == op_id]

    def downstream_of(self, op_id: str) -> list[Edge]:
        return [e for e in self.edges if e.src == op_id]

    def sources(self) -> list[OperatorSpec]:
        return [op for op in self.operators.values() if op.kind == "source"]

    def sinks(self) -> list[OperatorSpec]:
        return [op for op in self.operators.values() if op.kind == "sink"]

    def topological_order(self) -> list[OperatorSpec]:
        indegree = {op_id: 0 for op_id in self.operators}
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = sorted(op_id for op_id, deg in indegree.items() if deg == 0)
        order: list[OperatorSpec] = []
        while ready:
            op_id = ready.pop(0)
            order.append(self.operators[op_id])
            for edge in self.downstream_of(op_id):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self.operators):
            raise JobValidationError(f"job {self.name!r} contains a cycle")
        return order


def validate_graph(graph: JobGraph) -> None:
    """Raise :class:`JobValidationError` on structural problems.

    Checks: at least one source and one sink, no cycles, no dangling
    edges, every non-source reachable from a source, window/join payloads
    present.  This is the job-management layer's validation step
    (Section 4.2.2).
    """
    if not graph.sources():
        raise JobValidationError(f"job {graph.name!r} has no source")
    if not graph.sinks():
        raise JobValidationError(f"job {graph.name!r} has no sink")
    for edge in graph.edges:
        for end in (edge.src, edge.dst):
            if end not in graph.operators:
                raise JobValidationError(
                    f"edge {edge.src}->{edge.dst} references unknown operator {end!r}"
                )
    graph.topological_order()  # raises on cycles
    # Reachability from sources.
    reachable = {op.op_id for op in graph.sources()}
    frontier = list(reachable)
    while frontier:
        current = frontier.pop()
        for edge in graph.downstream_of(current):
            if edge.dst not in reachable:
                reachable.add(edge.dst)
                frontier.append(edge.dst)
    unreachable = set(graph.operators) - reachable
    if unreachable:
        raise JobValidationError(
            f"operators unreachable from any source: {sorted(unreachable)}"
        )
    for op in graph.operators.values():
        if op.kind == "window" and (op.assigner is None or op.aggregator is None):
            raise JobValidationError(f"window operator {op.op_id} incomplete")
        if op.kind == "join" and (op.join_key_fns is None or op.join_fn is None):
            raise JobValidationError(f"join operator {op.op_id} incomplete")
        if op.kind == "interval_join":
            if op.join_key_fns is None or op.join_fn is None:
                raise JobValidationError(
                    f"interval join operator {op.op_id} incomplete"
                )
            if op.join_lower is None or op.join_upper is None:
                raise JobValidationError(
                    f"interval join operator {op.op_id} is missing its bounds"
                )
            if op.join_lower > op.join_upper:
                raise JobValidationError(
                    f"interval join operator {op.op_id} has inverted bounds "
                    f"[{op.join_lower}, {op.join_upper}]"
                )
        if op.parallelism < 1:
            raise JobValidationError(
                f"operator {op.op_id} has parallelism {op.parallelism}"
            )


class StreamEnvironment:
    """Builder accumulating operators and edges."""

    def __init__(self) -> None:
        self._operators: dict[str, OperatorSpec] = {}
        self._edges: list[Edge] = []
        self._ids = itertools.count()

    def _new_id(self, kind: str) -> str:
        return f"{kind}-{next(self._ids)}"

    def _add(self, spec: OperatorSpec) -> None:
        self._operators[spec.op_id] = spec

    def add_source(self, source: Any, name: str | None = None, parallelism: int = 1) -> "DataStream":
        op_id = name or self._new_id("source")
        self._add(OperatorSpec(op_id, "source", parallelism=parallelism, source=source))
        return DataStream(self, op_id)

    def from_kafka(
        self,
        cluster,
        topic: str,
        group: str,
        parallelism: int | None = None,
        max_out_of_orderness: float = 0.0,
        timestamp_fn: Callable | None = None,
    ) -> "DataStream":
        """Convenience: a Kafka source with one subtask per partition."""
        from repro.flink.operators import KafkaSource

        if parallelism is None:
            parallelism = cluster.partition_count(topic)
        source = KafkaSource(
            cluster,
            topic,
            group,
            max_out_of_orderness=max_out_of_orderness,
            timestamp_fn=timestamp_fn,
        )
        return self.add_source(source, name=f"kafka-{topic}", parallelism=parallelism)

    def build(self, name: str) -> JobGraph:
        graph = JobGraph(name, dict(self._operators), list(self._edges))
        validate_graph(graph)
        return graph


@dataclass
class DataStream:
    """A handle to one operator's output within the builder."""

    env: StreamEnvironment
    op_id: str
    keyed_by: Callable | None = None
    keyed_by_column: str | None = None

    def _chain(
        self,
        spec: OperatorSpec,
        partitioning: Partitioning,
        input_index: int = 0,
    ) -> "DataStream":
        self.env._add(spec)
        self.env._edges.append(Edge(self.op_id, spec.op_id, partitioning, input_index))
        return DataStream(self.env, spec.op_id)

    def map(self, fn: Callable, parallelism: int = 1, name: str | None = None) -> "DataStream":
        spec = OperatorSpec(
            name or self.env._new_id("map"), "map", parallelism=parallelism, fn=fn
        )
        return self._chain(spec, "rebalance" if parallelism > 1 else "forward")

    def filter(self, fn: Callable, parallelism: int = 1, name: str | None = None) -> "DataStream":
        spec = OperatorSpec(
            name or self.env._new_id("filter"), "filter", parallelism=parallelism, fn=fn
        )
        return self._chain(spec, "rebalance" if parallelism > 1 else "forward")

    def flat_map(self, fn: Callable, parallelism: int = 1, name: str | None = None) -> "DataStream":
        spec = OperatorSpec(
            name or self.env._new_id("flat_map"),
            "flat_map",
            parallelism=parallelism,
            fn=fn,
        )
        return self._chain(spec, "rebalance" if parallelism > 1 else "forward")

    def key_by(self, key_fn: Callable | str) -> "DataStream":
        """Logical re-keying; realized as hash partitioning on the next edge.

        Passing a column name instead of a callable keys by that input
        column — equivalent for row streams, and additionally lets
        columnar batches stay vectorized through the keyed exchange.
        """
        if isinstance(key_fn, str):
            name = key_fn
            return DataStream(
                self.env,
                self.op_id,
                keyed_by=lambda value: value[name],
                keyed_by_column=name,
            )
        return DataStream(self.env, self.op_id, keyed_by=key_fn)

    def window(self, assigner: WindowAssigner) -> "WindowedStream":
        if self.keyed_by is None:
            raise JobValidationError("window() requires key_by() first")
        return WindowedStream(self, assigner)

    def join(
        self,
        other: "DataStream",
        key_fns: tuple[Callable, Callable],
        assigner: WindowAssigner,
        join_fn: Callable,
        allowed_lateness: float = 0.0,
        parallelism: int = 1,
        name: str | None = None,
    ) -> "DataStream":
        """Window join: pairs elements of both inputs sharing a key within
        the same window (the prediction-monitoring join of Section 5.3).
        ``allowed_lateness`` follows WindowOperator semantics: a window
        admits late records until ``end + lateness <= watermark``."""
        spec = OperatorSpec(
            name or self.env._new_id("join"),
            "join",
            parallelism=parallelism,
            assigner=assigner,
            join_key_fns=key_fns,
            join_fn=join_fn,
            allowed_lateness=allowed_lateness,
        )
        self.env._add(spec)
        self.env._edges.append(Edge(self.op_id, spec.op_id, "hash", input_index=0))
        self.env._edges.append(Edge(other.op_id, spec.op_id, "hash", input_index=1))
        return DataStream(self.env, spec.op_id)

    def interval_join(
        self,
        other: "DataStream",
        key_fns: tuple[Callable, Callable],
        lower: float,
        upper: float,
        join_fn: Callable,
        allowed_lateness: float = 0.0,
        state_ttl: float | None = None,
        spill_budget_bytes: int | None = None,
        parallelism: int = 1,
        name: str | None = None,
    ) -> "DataStream":
        """Interval join: pairs ``(left, right)`` sharing a key with
        ``left.ts ∈ [right.ts + lower, right.ts + upper]`` — no window
        boundary, so a prediction at 11:59 still joins its outcome at
        12:04.  ``self`` is the left input, ``other`` the right.  Join
        state is TTL'd and evicted by watermark (see
        :class:`~repro.flink.operators.IntervalJoinOperator`)."""
        spec = OperatorSpec(
            name or self.env._new_id("interval_join"),
            "interval_join",
            parallelism=parallelism,
            join_key_fns=key_fns,
            join_fn=join_fn,
            join_lower=lower,
            join_upper=upper,
            allowed_lateness=allowed_lateness,
            state_ttl=state_ttl,
            spill_budget_bytes=spill_budget_bytes,
        )
        self.env._add(spec)
        self.env._edges.append(Edge(self.op_id, spec.op_id, "hash", input_index=0))
        self.env._edges.append(Edge(other.op_id, spec.op_id, "hash", input_index=1))
        return DataStream(self.env, spec.op_id)

    def process(self, fn: Callable, parallelism: int = 1, name: str | None = None) -> "DataStream":
        """Low-level operator: fn(record, state_backend, emit) for custom logic."""
        spec = OperatorSpec(
            name or self.env._new_id("process"),
            "process",
            parallelism=parallelism,
            fn=fn,
        )
        partitioning = "hash" if self.keyed_by is not None else "forward"
        stream = self._chain(spec, partitioning)
        if self.keyed_by is not None:
            spec.key_fn = self.keyed_by
            spec.key_column = self.keyed_by_column
        return stream

    def add_sink(
        self, sink: Any, name: str | None = None, transactional: bool = False
    ) -> "DataStream":
        spec = OperatorSpec(
            name or self.env._new_id("sink"),
            "sink",
            sink=sink,
            transactional=transactional,
        )
        return self._chain(spec, "forward")

    def sink_to_list(
        self,
        collector: list,
        name: str | None = None,
        transactional: bool = False,
    ) -> "DataStream":
        from repro.flink.operators import CollectSink

        return self.add_sink(
            CollectSink(collector), name=name, transactional=transactional
        )

    def sink_to_kafka(self, cluster, topic: str, key_fn: Callable | None = None,
                      name: str | None = None, transactional: bool = False,
                      transactional_id: str | None = None) -> "DataStream":
        """Kafka sink; ``transactional=True`` gives end-to-end exactly-once:
        records are 2PC-buffered by the runtime and produced with an
        idempotent, epoch-fenced producer (pass ``transactional_id`` when
        several jobs sink to the same topic)."""
        from repro.flink.operators import KafkaSink

        return self.add_sink(
            KafkaSink(
                cluster, topic, key_fn,
                transactional=transactional,
                transactional_id=transactional_id,
            ),
            name=name,
            transactional=transactional,
        )


@dataclass
class WindowedStream:
    stream: DataStream
    assigner: WindowAssigner
    allowed_lateness: float = 0.0

    def allow_lateness(self, seconds: float) -> "WindowedStream":
        self.allowed_lateness = seconds
        return self

    def aggregate(
        self,
        aggregator: AggregateFunction,
        parallelism: int = 1,
        name: str | None = None,
    ) -> DataStream:
        env = self.stream.env
        spec = OperatorSpec(
            name or env._new_id("window"),
            "window",
            parallelism=parallelism,
            key_fn=self.stream.keyed_by,
            key_column=self.stream.keyed_by_column,
            assigner=self.assigner,
            aggregator=aggregator,
            allowed_lateness=self.allowed_lateness,
        )
        env._add(spec)
        env._edges.append(Edge(self.stream.op_id, spec.op_id, "hash"))
        return DataStream(env, spec.op_id)
