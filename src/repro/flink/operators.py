"""Operator implementations: sources, transforms, windows, joins, sinks.

Each operator follows a small contract used by the runtime:

* ``process(record, input_index) -> list[StreamElement]``
* ``on_watermark(watermark) -> list[StreamElement]`` (fire timers/windows)
* ``snapshot() -> bytes`` / ``restore(bytes)`` for checkpointing

Window and join operators keep their contents in a
:class:`~repro.flink.state.KeyedStateBackend`, so their state is
checkpointable and measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable

from repro.common import serde
from repro.common.errors import OperatorError
from repro.common.perf import PERF
from repro.common.records import Record
from repro.columnar import ColumnBatch, ColumnVector
from repro.flink.state import KeyedStateBackend, _key_from_wire, _key_to_wire
from repro.flink.time import (
    BoundedOutOfOrdernessWatermarks,
    RecordBatch,
    StreamRecord,
    StreamStatus,
    Watermark,
)
from repro.flink.windows import (
    AggregateFunction,
    TimeWindow,
    WindowAssigner,
    WindowResult,
)
from repro.observability.trace import SpanCollector, TraceContext


class Operator:
    """Base class; stateless pass-through."""

    def __init__(self) -> None:
        self.state = KeyedStateBackend()

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        raise NotImplementedError

    def process_batch(
        self, records: list[StreamRecord], input_index: int = 0
    ) -> list[Any]:
        """Process a micro-batched run of records in one call.

        The default loops :meth:`process` and concatenates the outputs —
        semantically identical to stepping the records one at a time.
        Operators with per-call overhead worth amortizing can override.
        """
        out: list[Any] = []
        for record in records:
            out.extend(self.process(record, input_index))
        return out

    def process_columnar(
        self, rbatch: RecordBatch, input_index: int = 0
    ) -> list[Any] | None:
        """Process a columnar batch without materializing rows.

        Returns ``None`` when this operator has no vectorized kernel for
        the batch; the runtime then adapts the batch to records and
        falls back to :meth:`process_batch`, so row-only operators keep
        working unchanged in a columnar pipeline.
        """
        return None

    def on_watermark(self, watermark: Watermark) -> list[Any]:
        return []

    def snapshot(self) -> bytes:
        return self.state.snapshot()

    def restore(self, data: bytes) -> None:
        self.state.restore(data)


class MapOperator(Operator):
    def __init__(self, fn: Callable[[Any], Any]) -> None:
        super().__init__()
        self.fn = fn

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        try:
            return [record.with_value(self.fn(record.value))]
        except Exception as exc:
            raise OperatorError(f"map function failed: {exc}") from exc


class FilterOperator(Operator):
    def __init__(self, fn: Callable[[Any], bool]) -> None:
        super().__init__()
        self.fn = fn

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        try:
            return [record] if self.fn(record.value) else []
        except Exception as exc:
            raise OperatorError(f"filter function failed: {exc}") from exc


class FlatMapOperator(Operator):
    def __init__(self, fn: Callable[[Any], list[Any]]) -> None:
        super().__init__()
        self.fn = fn

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        try:
            return [record.with_value(v) for v in self.fn(record.value)]
        except Exception as exc:
            raise OperatorError(f"flat_map function failed: {exc}") from exc


class ProcessOperator(Operator):
    """Escape hatch: ``fn(record, state, emit)`` with keyed state access."""

    def __init__(self, fn: Callable) -> None:
        super().__init__()
        self.fn = fn

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        out: list[StreamRecord] = []

        def emit(value: Any, key: Any = None) -> None:
            out.append(StreamRecord(value, record.timestamp, key, record.trace))

        try:
            self.fn(record, self.state, emit)
        except Exception as exc:
            raise OperatorError(f"process function failed: {exc}") from exc
        return out


class WindowOperator(Operator):
    """Keyed event-time windows with incremental aggregation.

    State layout (all serde-plain):

    * ``"acc"``: (key, start, end) -> accumulator
    * session windows merge eagerly on insert.

    Late elements — those whose every assigned window has already fired
    (watermark >= window end + allowed lateness) — are dropped and counted,
    matching the surge-pricing policy that "late-arriving messages do not
    contribute" (Section 5.1).
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        aggregator: AggregateFunction,
        allowed_lateness: float = 0.0,
        key_column: str | None = None,
    ) -> None:
        super().__init__()
        self.assigner = assigner
        self.aggregator = aggregator
        self.allowed_lateness = allowed_lateness
        self.key_column = key_column
        self.current_watermark = float("-inf")
        self.late_dropped = 0
        # Once a columnar batch has been accumulated, fired results are
        # emitted as columnar batches too, so the downstream edge stays
        # in the vectorized plane.
        self._columnar_fires = False
        # Representative trace per open window: the latest contributing
        # traced record.  Deliberately outside the checkpointed state —
        # traces are observability metadata, not replayable data.
        self._traces: dict[Any, Any] = {}

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        key = record.key
        windows = self.assigner.assign(record.timestamp)
        if self.assigner.is_session():
            self._add_to_session(key, windows[0], record.value, record.trace)
            return []
        live = [
            w
            for w in windows
            if w.end + self.allowed_lateness > self.current_watermark
        ]
        if not live:
            self.late_dropped += 1
            return []
        for window in live:
            state_key = (key, window.start, window.end)
            acc = self.state.get("acc", state_key)
            if acc is None:
                acc = self.aggregator.create_accumulator()
            self.state.put("acc", state_key, self.aggregator.add(record.value, acc))
            if record.trace is not None:
                self._traces[state_key] = record.trace
        return []

    def process_columnar(
        self, rbatch: RecordBatch, input_index: int = 0
    ) -> list[Any] | None:
        """Accumulate a whole columnar batch into window state.

        Vectorized kernel: keys come straight from the key column's
        vector, values from the aggregate's input column, and updates
        run over local lists — no per-row StreamRecord or dict ever
        materializes.  Per-(key, window) update order matches the row
        path exactly (row order within the batch), so accumulators —
        including float sums — are bit-identical.

        Requires a declared key column and an aggregate exposing the
        ``add_raw``/``column`` contract; session windows merge on
        insert, which is inherently row-at-a-time.  Returns ``None``
        in those cases so the runtime falls back to the row kernel.
        """
        if self.key_column is None or self.assigner.is_session():
            return None
        aggregator = self.aggregator
        add_raw = getattr(aggregator, "add_raw", None)
        if add_raw is None:
            return None
        batch = rbatch.batch
        key_vector = batch.columns.get(self.key_column)
        if key_vector is None:
            return None
        value_vector = None
        column = getattr(aggregator, "column", None)
        if column is not None:
            value_vector = batch.columns.get(column)
            if value_vector is None:
                return None
        if PERF.enabled:
            PERF.inc("columnar.agg_rows", len(rbatch))
        timestamps = rbatch.timestamps
        assign = self.assigner.assign
        lateness = self.allowed_lateness
        watermark = self.current_watermark
        state = self.state
        missing = object()
        pending: dict[tuple, Any] = {}
        for i in rbatch.row_indices():
            live = False
            for window in assign(timestamps[i]):
                if window.end + lateness > watermark:
                    live = True
                    state_key = (key_vector.get(i), window.start, window.end)
                    acc = pending.get(state_key, missing)
                    if acc is missing:
                        acc = state.get("acc", state_key)
                        if acc is None:
                            acc = aggregator.create_accumulator()
                    value = (
                        value_vector.get(i) if value_vector is not None else None
                    )
                    pending[state_key] = add_raw(value, acc)
                    if rbatch.trace is not None:
                        self._traces[state_key] = rbatch.trace
            if not live:
                self.late_dropped += 1
        for state_key, acc in pending.items():
            state.put("acc", state_key, acc)
        self._columnar_fires = True
        return []

    def _add_to_session(
        self, key: Any, window: TimeWindow, value: Any, trace: Any = None
    ) -> None:
        """Insert into session state, merging overlapping sessions."""
        acc = self.aggregator.add(value, self.aggregator.create_accumulator())
        start, end = window.start, window.end
        merged = True
        while merged:
            merged = False
            for state_key, existing in self.state.items("acc"):
                k, s, e = state_key
                if k != key:
                    continue
                if s <= end and start <= e:  # overlap -> merge
                    acc = self.aggregator.merge(acc, existing)
                    start, end = min(start, s), max(end, e)
                    self.state.remove("acc", state_key)
                    trace = trace or self._traces.pop(state_key, None)
                    merged = True
                    break
        self.state.put("acc", (key, start, end), acc)
        if trace is not None:
            self._traces[(key, start, end)] = trace

    def on_watermark(self, watermark: Watermark) -> list[Any]:
        self.current_watermark = max(self.current_watermark, watermark.timestamp)
        fired: list[StreamRecord] = []
        for state_key, acc in sorted(self.state.items("acc"), key=lambda kv: kv[0][2]):
            key, start, end = state_key
            if end + self.allowed_lateness <= self.current_watermark:
                result = WindowResult(
                    key=key,
                    window=TimeWindow(start, end),
                    value=self.aggregator.get_result(acc),
                )
                # Results are timestamped at window end, Flink-style.
                fired.append(
                    StreamRecord(result, end, key, self._traces.pop(state_key, None))
                )
                self.state.remove("acc", state_key)
        if (
            self._columnar_fires
            and len(fired) > 1
            and all(r.trace is None for r in fired)
        ):
            # Keep the downstream edge vectorized: one RecordBatch of
            # results instead of one element per fired window.  Results
            # are opaque WindowResult objects, carried as a raw vector
            # under the ``__value__`` convention.
            batch = ColumnBatch(
                {"__value__": ColumnVector.raw([r.value for r in fired])},
                num_rows=len(fired),
            )
            return [
                RecordBatch(
                    batch,
                    timestamps=tuple(r.timestamp for r in fired),
                    keys=tuple(r.key for r in fired),
                )
            ]
        return fired

    def snapshot(self) -> bytes:
        meta = {
            "watermark": self.current_watermark
            if self.current_watermark != float("-inf")
            else None,
            "late_dropped": self.late_dropped,
        }
        return serde.encode({"meta": meta, "state": self.state.snapshot()})

    def restore(self, data: bytes) -> None:
        payload = serde.decode(data)
        meta = payload["meta"]
        self.current_watermark = (
            float("-inf") if meta["watermark"] is None else meta["watermark"]
        )
        self.late_dropped = meta["late_dropped"]
        self.state.restore(payload["state"])


def _traces_to_wire(traces: dict[Any, Any]) -> list:
    """Serialize a state-key -> TraceContext map for a checkpoint."""
    return [
        [_key_to_wire(state_key), trace.to_headers()]
        for state_key, trace in traces.items()
        if trace is not None
    ]


def _traces_from_wire(entries: list) -> dict[Any, Any]:
    return {
        _key_from_wire(state_key): TraceContext.from_headers(headers)
        for state_key, headers in entries
    }


class WindowJoinOperator(Operator):
    """Two-input window join: emits ``join_fn(left, right)`` for every pair
    sharing a key inside the same window (Section 5.3's prediction-to-
    outcome join).  Buffers both sides until the window closes — which is
    why the paper calls stream-stream joins "almost always memory bound"
    (Section 4.2.1); the autoscaler uses the same signal.

    Late elements follow :class:`WindowOperator` semantics exactly: a
    record is admitted while ``window.end + allowed_lateness >
    current_watermark`` and a window fires (and is evicted) only once
    ``end + allowed_lateness <= watermark``, so an admitted late record
    always lands in a window that still has a pending fire.
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        join_fn: Callable[[Any, Any], Any],
        allowed_lateness: float = 0.0,
    ) -> None:
        super().__init__()
        self.assigner = assigner
        self.join_fn = join_fn
        self.allowed_lateness = allowed_lateness
        self.current_watermark = float("-inf")
        self.late_dropped = 0
        self._traces: dict[Any, Any] = {}

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        side = "left" if input_index == 0 else "right"
        out = []
        for window in self.assigner.assign(record.timestamp):
            if window.end + self.allowed_lateness <= self.current_watermark:
                self.late_dropped += 1
                continue
            state_key = (record.key, window.start, window.end)
            self.state.append(side, state_key, record.value)
            if record.trace is not None:
                self._traces[state_key] = record.trace
        return out

    def on_watermark(self, watermark: Watermark) -> list[Any]:
        self.current_watermark = max(self.current_watermark, watermark.timestamp)
        fired: list[StreamRecord] = []
        closed: set = set()
        for state_key in self.state.keys("left"):
            __, __, end = state_key
            if end + self.allowed_lateness <= self.current_watermark:
                closed.add(state_key)
        for state_key in self.state.keys("right"):
            __, __, end = state_key
            if end + self.allowed_lateness <= self.current_watermark:
                closed.add(state_key)
        for state_key in sorted(closed, key=lambda k: (k[2], str(k[0]))):
            key, start, end = state_key
            trace = self._traces.pop(state_key, None)
            lefts = self.state.get_list("left", state_key)
            rights = self.state.get_list("right", state_key)
            for left in lefts:
                for right in rights:
                    fired.append(
                        StreamRecord(self.join_fn(left, right), end, key, trace)
                    )
            self.state.remove("left", state_key)
            self.state.remove("right", state_key)
        return fired

    def snapshot(self) -> bytes:
        # Unlike WindowOperator, the join buffers raw records, so the
        # representative trace per open window is part of what a restore
        # must reconstruct — without it, every pair fired after recovery
        # loses its end-to-end trace attribution.
        meta = {
            "watermark": self.current_watermark
            if self.current_watermark != float("-inf")
            else None,
            "late_dropped": self.late_dropped,
            "traces": _traces_to_wire(self._traces),
        }
        return serde.encode({"meta": meta, "state": self.state.snapshot()})

    def restore(self, data: bytes) -> None:
        payload = serde.decode(data)
        meta = payload["meta"]
        self.current_watermark = (
            float("-inf") if meta["watermark"] is None else meta["watermark"]
        )
        self.late_dropped = meta["late_dropped"]
        self._traces = _traces_from_wire(meta["traces"])
        self.state.restore(payload["state"])


class IntervalJoinOperator(Operator):
    """Per-key time-bounded join: emits ``join_fn(left, right)`` for every
    pair sharing a key with ``left.ts ∈ [right.ts + lower, right.ts +
    upper]`` (equivalently ``left.ts - right.ts ∈ [lower, upper]``).

    Unlike the window join there is no window boundary to straddle: a
    prediction made at 11:59 still joins its outcome at 12:04.  Pairs are
    emitted eagerly when the second side arrives, stamped at ``max(left.ts,
    right.ts)`` — the event time at which the pair became complete.

    **State + eviction.**  Both sides buffer ``[ts, seq, value]`` entries
    in keyed list state.  A buffered record's *join horizon* is the latest
    event time of any pair it can still complete: ``ts + max(0, -lower)``
    for a left, ``ts + max(0, upper)`` for a right.  An entry is evicted
    once the watermark passes ``max(horizon + allowed_lateness, ts +
    state_ttl)`` — the TTL can only *extend* retention past the join
    horizon (for late observers and state reads), never truncate it, so
    TTL eviction can never drop a still-joinable record.  Eviction is
    driven by a min-heap over per-entry deadlines that is rebuilt from
    state on restore (the deadlines are pure functions of the entries).

    **Lateness.**  Admission mirrors :class:`WindowOperator` with the
    join horizon standing in for the window end: a record is admitted
    while ``horizon + allowed_lateness > current_watermark``, otherwise
    it is dropped and counted in ``late_dropped``.

    **Spill pressure.**  The buffered state is the memory-bound signal of
    Section 4.2.1; ``spill_pressure()`` reports buffered bytes against
    ``spill_budget_bytes`` so the AutoScaler can react before the state
    actually spills.
    """

    def __init__(
        self,
        lower: float,
        upper: float,
        join_fn: Callable[[Any, Any], Any],
        allowed_lateness: float = 0.0,
        state_ttl: float | None = None,
        spill_budget_bytes: int | None = None,
    ) -> None:
        super().__init__()
        if lower > upper:
            raise OperatorError(
                f"interval join bounds inverted: lower {lower} > upper {upper}"
            )
        self.lower = lower
        self.upper = upper
        self.join_fn = join_fn
        self.allowed_lateness = allowed_lateness
        self.state_ttl = state_ttl
        self.spill_budget_bytes = spill_budget_bytes
        self.current_watermark = float("-inf")
        self.late_dropped = 0
        self.evicted = 0
        self._seq = 0
        self._traces: dict[Any, Any] = {}
        # (deadline, seq, side, key) — seq breaks ties so keys are never
        # compared (they may be mixed types).
        self._evictions: list[tuple[float, int, str, Any]] = []

    # -- time bounds ---------------------------------------------------------

    def _horizon(self, side: str, timestamp: float) -> float:
        if side == "left":
            return timestamp + max(0.0, -self.lower)
        return timestamp + max(0.0, self.upper)

    def _deadline(self, side: str, timestamp: float) -> float:
        deadline = self._horizon(side, timestamp) + self.allowed_lateness
        if self.state_ttl is not None:
            deadline = max(deadline, timestamp + self.state_ttl)
        return deadline

    def _matches(self, side: str, timestamp: float, other_ts: float) -> bool:
        delta = timestamp - other_ts if side == "left" else other_ts - timestamp
        return self.lower <= delta <= self.upper

    # -- dataflow ------------------------------------------------------------

    def process(self, record: StreamRecord, input_index: int = 0) -> list[Any]:
        side = "left" if input_index == 0 else "right"
        other = "right" if side == "left" else "left"
        timestamp = record.timestamp
        if self._horizon(side, timestamp) + self.allowed_lateness <= (
            self.current_watermark
        ):
            self.late_dropped += 1
            return []
        key = record.key
        if record.trace is not None:
            self._traces[key] = record.trace
        out: list[StreamRecord] = []
        buffered = self.state.get_list(other, key)
        if PERF.enabled and buffered:
            PERF.inc("flink.join_probes", len(buffered))
        for other_ts, _seq, other_value in buffered:
            if self._matches(side, timestamp, other_ts):
                left, right = (
                    (record.value, other_value)
                    if side == "left"
                    else (other_value, record.value)
                )
                out.append(
                    StreamRecord(
                        self.join_fn(left, right),
                        max(timestamp, other_ts),
                        key,
                        record.trace or self._traces.get(key),
                    )
                )
        if PERF.enabled:
            PERF.inc("flink.join_state_appends")
            if out:
                PERF.inc("flink.join_rows_out", len(out))
        seq = self._seq
        self._seq += 1
        self.state.append(side, key, [timestamp, seq, record.value])
        heappush(self._evictions, (self._deadline(side, timestamp), seq, side, key))
        return out

    def on_watermark(self, watermark: Watermark) -> list[Any]:
        self.current_watermark = max(self.current_watermark, watermark.timestamp)
        evictions = self._evictions
        while evictions and evictions[0][0] <= self.current_watermark:
            __, seq, side, key = heappop(evictions)
            entries = self.state.get_list(side, key)
            remaining = [e for e in entries if e[1] != seq]
            if len(remaining) == len(entries):
                continue  # already gone (stale heap entry after restore)
            self.evicted += 1
            if PERF.enabled:
                PERF.inc("flink.join_evictions")
            if remaining:
                self.state.put(side, key, remaining)
            else:
                self.state.remove(side, key)
                if not self.state.get_list("right" if side == "left" else "left", key):
                    self._traces.pop(key, None)
        return []

    # -- memory-pressure signal ----------------------------------------------

    def spill_pressure(self) -> float:
        """Buffered join state as a fraction of the spill budget.

        >= 1.0 means the operator would have to spill; the AutoScaler
        treats that as an immediate scale-up signal.
        """
        if not self.spill_budget_bytes:
            return 0.0
        return self.state.size_bytes() / self.spill_budget_bytes

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> bytes:
        meta = {
            "watermark": self.current_watermark
            if self.current_watermark != float("-inf")
            else None,
            "late_dropped": self.late_dropped,
            "evicted": self.evicted,
            "seq": self._seq,
            "traces": _traces_to_wire(self._traces),
        }
        return serde.encode({"meta": meta, "state": self.state.snapshot()})

    def restore(self, data: bytes) -> None:
        payload = serde.decode(data)
        meta = payload["meta"]
        self.current_watermark = (
            float("-inf") if meta["watermark"] is None else meta["watermark"]
        )
        self.late_dropped = meta["late_dropped"]
        self.evicted = meta["evicted"]
        self._seq = meta["seq"]
        self._traces = _traces_from_wire(meta["traces"])
        self.state.restore(payload["state"])
        # The eviction heap is derived state: every deadline is a pure
        # function of (side, ts), so rebuild it from the buffers.
        self._evictions = []
        for side in ("left", "right"):
            for key in self.state.keys(side):
                for ts, seq, __ in self.state.get_list(side, key):
                    heappush(
                        self._evictions, (self._deadline(side, ts), seq, side, key)
                    )


# --- sources ----------------------------------------------------------------


class KafkaSource:
    """Reads a topic; each subtask owns ``partition % parallelism`` slices.

    Event timestamps default to the record's ``event_time``; a
    ``timestamp_fn(value) -> float`` can override.  Watermarks use bounded
    out-of-orderness.  Offsets are checkpoint state.
    """

    def __init__(
        self,
        cluster,
        topic: str,
        group: str,
        max_out_of_orderness: float = 0.0,
        timestamp_fn: Callable | None = None,
    ) -> None:
        self.cluster = cluster
        self.topic = topic
        self.group = group
        self.timestamp_fn = timestamp_fn
        self.max_out_of_orderness = max_out_of_orderness

    def create_reader(self, subtask: int, parallelism: int) -> "KafkaSourceReader":
        partitions = [
            p
            for p in range(self.cluster.partition_count(self.topic))
            if p % parallelism == subtask
        ]
        return KafkaSourceReader(self, partitions)


IDLE_AFTER_EMPTY_POLLS = 2


class KafkaSourceReader:
    def __init__(self, source: KafkaSource, partitions: list[int]) -> None:
        self.source = source
        self.partitions = partitions
        self.positions = {
            p: source.cluster.start_offset(source.topic, p) for p in partitions
        }
        self.watermarks = BoundedOutOfOrdernessWatermarks(source.max_out_of_orderness)
        self._emitted_watermark = float("-inf")
        self._empty_polls = 0
        self._idle = False

    def poll(self, max_records: int = 100) -> list[Any]:
        """Next batch of elements: StreamRecords plus a trailing Watermark
        when event time advanced, plus idleness transitions."""
        out: list[Any] = []
        cluster, topic = self.source.cluster, self.source.topic
        if not self.partitions:
            # Subtask owns nothing; declare idle once so it never stalls
            # the downstream watermark.
            if not self._idle:
                self._idle = True
                return [StreamStatus(idle=True)]
            return []
        budget = max(1, max_records // len(self.partitions))
        for partition in self.partitions:
            entries = cluster.fetch(topic, partition, self.positions[partition], budget)
            for entry in entries:
                record: Record = entry.record
                timestamp = (
                    self.source.timestamp_fn(record.value)
                    if self.source.timestamp_fn is not None
                    else record.event_time
                )
                self.watermarks.on_event(timestamp)
                out.append(
                    StreamRecord(
                        record.value,
                        timestamp,
                        record.key,
                        TraceContext.from_record(record),
                    )
                )
                self.positions[partition] = entry.offset + 1
        if not out:
            self._empty_polls += 1
            if self._empty_polls >= IDLE_AFTER_EMPTY_POLLS and not self._idle:
                self._idle = True
                return [StreamStatus(idle=True)]
            return []
        self._empty_polls = 0
        if self._idle:
            self._idle = False
            out.insert(0, StreamStatus(idle=False))
        watermark = self.watermarks.current_watermark()
        if watermark > self._emitted_watermark:
            self._emitted_watermark = watermark
            out.append(Watermark(watermark))
        return out

    def lag(self) -> int:
        cluster, topic = self.source.cluster, self.source.topic
        return sum(
            cluster.end_offset(topic, p) - self.positions[p] for p in self.partitions
        )

    def snapshot(self) -> dict[str, Any]:
        return {"positions": {str(p): off for p, off in self.positions.items()}}

    def restore(self, data: dict[str, Any]) -> None:
        for partition, offset in data["positions"].items():
            self.positions[int(partition)] = offset
        # Watermark/idleness state is *derived* from the records read, so
        # rewinding the offsets must reset it too: a stale high-water mark
        # would swallow the watermarks regenerated during replay and stall
        # every downstream window until some even-newer event arrived.
        self.watermarks = BoundedOutOfOrdernessWatermarks(
            self.source.max_out_of_orderness
        )
        self._emitted_watermark = float("-inf")
        self._empty_polls = 0
        self._idle = False


class BoundedListSource:
    """Source over a fixed list of (value, timestamp, key) — for tests and
    the Kappa+ batch mode (bounded input, Section 7)."""

    def __init__(
        self,
        elements: list[tuple[Any, float]] | list[tuple[Any, float, Any]],
        max_out_of_orderness: float = 0.0,
        batch_size: int = 100,
    ) -> None:
        self.elements = elements
        self.max_out_of_orderness = max_out_of_orderness
        self.batch_size = batch_size

    def create_reader(self, subtask: int, parallelism: int) -> "BoundedListReader":
        slice_ = self.elements[subtask::parallelism]
        return BoundedListReader(self, slice_)


class BoundedListReader:
    def __init__(self, source: BoundedListSource, elements: list) -> None:
        self.source = source
        self.elements = elements
        self.position = 0
        self.watermarks = BoundedOutOfOrdernessWatermarks(source.max_out_of_orderness)
        self._emitted_watermark = float("-inf")
        self._final_sent = False

    def poll(self, max_records: int = 100) -> list[Any]:
        out: list[Any] = []
        batch = self.elements[self.position : self.position + self.source.batch_size]
        for element in batch:
            value, timestamp, *rest = element
            key = rest[0] if rest else None
            self.watermarks.on_event(timestamp)
            out.append(StreamRecord(value, timestamp, key))
        self.position += len(batch)
        if batch:
            watermark = self.watermarks.current_watermark()
            if watermark > self._emitted_watermark:
                self._emitted_watermark = watermark
                out.append(Watermark(watermark))
        elif not self._final_sent:
            # Bounded input exhausted: emit the +inf watermark so every
            # window fires (the "end boundary" of Kappa+, Section 7).
            self._final_sent = True
            out.append(Watermark(float("inf")))
        return out

    def lag(self) -> int:
        return len(self.elements) - self.position

    def snapshot(self) -> dict[str, Any]:
        return {"position": self.position}

    def restore(self, data: dict[str, Any]) -> None:
        self.position = data["position"]
        # Same rule as KafkaSourceReader.restore: watermark state is
        # derived from the records read, so rewinding the position must
        # reset it — otherwise replayed records are judged against the
        # pre-crash high-water mark (different admission decisions than
        # the original run) and the final +inf watermark is never
        # re-sent, stranding every open window.
        self.watermarks = BoundedOutOfOrdernessWatermarks(
            self.source.max_out_of_orderness
        )
        self._emitted_watermark = float("-inf")
        self._final_sent = False


class BoundedColumnarSource:
    """Columnar counterpart of :class:`BoundedListSource`.

    Input is column value lists plus per-row timestamps.  Each reader
    builds its stride-sliced :class:`~repro.columnar.ColumnBatch` once,
    then every poll emits a zero-copy slice as a single
    :class:`~repro.flink.time.RecordBatch` element — the per-element
    scheduler and routing costs of the row plane amortize over the
    whole batch.
    """

    def __init__(
        self,
        columns: dict[str, list],
        timestamps: list[float],
        max_out_of_orderness: float = 0.0,
        batch_size: int = 100,
    ) -> None:
        lengths = {name: len(values) for name, values in columns.items()}
        if any(n != len(timestamps) for n in lengths.values()):
            raise OperatorError(
                f"column lengths {lengths} do not match "
                f"{len(timestamps)} timestamps"
            )
        self.columns = columns
        self.timestamps = timestamps
        self.max_out_of_orderness = max_out_of_orderness
        self.batch_size = batch_size

    def create_reader(self, subtask: int, parallelism: int) -> "BoundedColumnarReader":
        columns = {
            name: values[subtask::parallelism]
            for name, values in self.columns.items()
        }
        return BoundedColumnarReader(
            self, columns, self.timestamps[subtask::parallelism]
        )


class BoundedColumnarReader:
    def __init__(
        self,
        source: BoundedColumnarSource,
        columns: dict[str, list],
        timestamps: list[float],
    ) -> None:
        self.source = source
        self.batch = ColumnBatch.from_columns(columns)
        self.timestamps = timestamps
        self.position = 0
        self.watermarks = BoundedOutOfOrdernessWatermarks(source.max_out_of_orderness)
        self._emitted_watermark = float("-inf")
        self._final_sent = False

    def poll(self, max_records: int = 100) -> list[Any]:
        out: list[Any] = []
        count = min(self.source.batch_size, len(self.batch) - self.position)
        if count > 0:
            view = self.batch.slice(self.position, count)
            timestamps = tuple(
                self.timestamps[self.position : self.position + count]
            )
            # Only the maximum feeds the watermark generator, so one
            # call covers the whole slice.
            self.watermarks.on_event(max(timestamps))
            self.position += count
            out.append(RecordBatch(view, timestamps))
            watermark = self.watermarks.current_watermark()
            if watermark > self._emitted_watermark:
                self._emitted_watermark = watermark
                out.append(Watermark(watermark))
        elif not self._final_sent:
            self._final_sent = True
            out.append(Watermark(float("inf")))
        return out

    def lag(self) -> int:
        return len(self.batch) - self.position

    def snapshot(self) -> dict[str, Any]:
        return {"position": self.position}

    def restore(self, data: dict[str, Any]) -> None:
        self.position = data["position"]
        # See BoundedListReader.restore: derived watermark state resets
        # with the position.
        self.watermarks = BoundedOutOfOrdernessWatermarks(
            self.source.max_out_of_orderness
        )
        self._emitted_watermark = float("-inf")
        self._final_sent = False


# --- sinks ------------------------------------------------------------------


@dataclass
class CollectSink:
    """Appends every result to a caller-provided list."""

    collector: list

    def write(self, record: StreamRecord) -> None:
        self.collector.append(record.value)

    def write_batch(self, rbatch: RecordBatch) -> None:
        """Columnar write: append per-row values without record objects.

        Batches of opaque values use the ``__value__`` column
        convention; batches of named columns append row dicts.
        """
        if PERF.enabled:
            PERF.inc("columnar.kernel_rows", len(rbatch))
        batch = rbatch.batch
        vector = batch.columns.get("__value__")
        if vector is not None:
            for i in rbatch.row_indices():
                self.collector.append(vector.get(i))
            return
        for i in rbatch.row_indices():
            self.collector.append(batch.row(i))


class KafkaSink:
    """Produces results to a Kafka topic (FlinkSQL -> Pinot path, §4.3.3).

    ``transactional=True`` puts the internal producer in idempotent,
    epoch-fenced mode: the runtime buffers writes per checkpoint epoch (2PC)
    and, on crash-restore, calls :meth:`on_restore` to bump the producer
    epoch — a zombie pre-failure instance that still tries to commit its
    buffered records is fenced broker-side
    (:class:`~repro.common.errors.ProducerFencedError`).
    """

    def __init__(self, cluster, topic: str, key_fn: Callable | None = None,
                 transactional: bool = False,
                 transactional_id: str | None = None) -> None:
        from repro.kafka.producer import Producer

        self.cluster = cluster
        self.topic = topic
        self.key_fn = key_fn
        self.transactional = transactional
        self._producer = Producer(
            cluster,
            service_name=f"flink-sink-{topic}",
            transactional_id=(
                (transactional_id or f"flink-2pc-{topic}")
                if transactional
                else None
            ),
        )

    def set_tracer(self, tracer: SpanCollector | None) -> None:
        """Let the runtime hand its tracer to the sink's internal producer."""
        self._producer.tracer = tracer

    def on_restore(self) -> None:
        """Crash-restore fencing hook: re-register the transactional
        producer so the epoch advances and any zombie commit is rejected."""
        if self.transactional:
            self._producer.init_transactions()

    def write(self, record: StreamRecord) -> None:
        key = self.key_fn(record.value) if self.key_fn is not None else record.key
        value = record.value
        if isinstance(value, WindowResult):
            value = {
                "key": value.key,
                "window_start": value.window.start,
                "window_end": value.window.end,
                "value": value.value,
            }
        # Re-stamp the upstream trace so the derived record continues the
        # same end-to-end trace across its second Kafka hop.
        headers = record.trace.to_headers() if record.trace is not None else None
        self._producer.produce(
            self.topic, value, key=key, event_time=record.timestamp, headers=headers
        )


def build_operator(spec) -> Operator:
    """Instantiate the runtime operator for a graph spec."""
    if spec.kind == "map":
        return MapOperator(spec.fn)
    if spec.kind == "filter":
        return FilterOperator(spec.fn)
    if spec.kind == "flat_map":
        return FlatMapOperator(spec.fn)
    if spec.kind == "process":
        return ProcessOperator(spec.fn)
    if spec.kind == "window":
        return WindowOperator(
            spec.assigner,
            spec.aggregator,
            spec.allowed_lateness,
            key_column=spec.key_column,
        )
    if spec.kind == "join":
        return WindowJoinOperator(
            spec.assigner, spec.join_fn, allowed_lateness=spec.allowed_lateness
        )
    if spec.kind == "interval_join":
        return IntervalJoinOperator(
            spec.join_lower,
            spec.join_upper,
            spec.join_fn,
            allowed_lateness=spec.allowed_lateness,
            state_ttl=spec.state_ttl,
            spill_budget_bytes=spec.spill_budget_bytes,
        )
    raise OperatorError(f"no runtime operator for kind {spec.kind!r}")
