"""Rule-based job monitoring and automatic failure recovery (Section 4.2.1).

"A rule-based engine which compares the Flink job's key metrics such as
resource usage against the desired state and takes corrective action such
as restarting a stuck job or auto scaling."

Rules are predicates over a job's health snapshot; actions are callables
on the job server.  The stock rule set covers the paper's two examples
(stuck job -> restart, resource pressure -> rescale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.flink.jobserver import JobServer, JobState


@dataclass
class Rule:
    """One monitoring rule."""

    name: str
    condition: Callable[[dict[str, float]], bool]
    action: str  # 'restart' | 'scale_up' | 'alert'


@dataclass
class WatchdogEvent:
    job_id: str
    rule: str
    action: str
    detail: str = ""


@dataclass
class _JobHistory:
    last_lag: float | None = None
    stuck_evaluations: int = 0


class Watchdog:
    """Evaluates rules over every job each cycle and acts on matches."""

    def __init__(
        self,
        server: JobServer,
        stuck_cycles_before_restart: int = 3,
    ) -> None:
        self.server = server
        self.stuck_cycles_before_restart = stuck_cycles_before_restart
        self.rules: list[Rule] = []
        self.events: list[WatchdogEvent] = []
        self._history: dict[str, _JobHistory] = {}
        self._install_default_rules()

    def _install_default_rules(self) -> None:
        self.rules.append(
            Rule(
                "job-not-running",
                condition=lambda m: m.get("running", 1.0) == 0.0,
                action="restart",
            )
        )
        self.rules.append(
            Rule(
                "excessive-buffering",
                condition=lambda m: m.get("buffered_elements", 0.0) > 100_000,
                action="alert",
            )
        )

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def evaluate_once(self) -> list[WatchdogEvent]:
        """One monitoring cycle; returns the events it acted on."""
        fired: list[WatchdogEvent] = []
        snapshot = self.server.health_snapshot()
        for job_id, job_metrics in snapshot.items():
            history = self._history.setdefault(job_id, _JobHistory())
            self._track_stuck(job_id, job_metrics, history)
            for rule in self.rules:
                if not rule.condition(job_metrics):
                    continue
                event = WatchdogEvent(job_id, rule.name, rule.action)
                if rule.action == "restart":
                    recovered = self._restart(job_id)
                    event.detail = "recovered" if recovered else "recovery failed"
                fired.append(event)
                self.events.append(event)
        return fired

    def _track_stuck(
        self, job_id: str, job_metrics: dict[str, float], history: _JobHistory
    ) -> None:
        """Stuck detection: lag present and not shrinking for N cycles
        while the job claims to be running."""
        lag = job_metrics.get("source_lag", 0.0)
        running = job_metrics.get("running", 0.0) == 1.0
        if running and lag > 0 and history.last_lag is not None and lag >= history.last_lag:
            history.stuck_evaluations += 1
        else:
            history.stuck_evaluations = 0
        history.last_lag = lag
        if history.stuck_evaluations >= self.stuck_cycles_before_restart:
            event = WatchdogEvent(
                job_id, "stuck-job", "restart", detail=f"lag pinned at {lag:.0f}"
            )
            self.server.mark_failed(job_id)
            if self._restart(job_id):
                event.detail += "; recovered"
            self.events.append(event)
            history.stuck_evaluations = 0

    def _restart(self, job_id: str) -> bool:
        job = self.server.get(job_id)
        if job.state is not JobState.FAILED:
            self.server.mark_failed(job_id)
        return self.server.recover(job_id)
