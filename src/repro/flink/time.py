"""Event time, watermarks and stream elements.

Everything that flows between operators is a :class:`StreamElement`:
data records, watermarks (event-time progress markers) and checkpoint
barriers (Section 4.2's "built-in state management and checkpointing").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class StreamRecord:
    """A data element with an assigned event timestamp and optional key.

    ``trace`` carries the upstream
    :class:`~repro.observability.trace.TraceContext` of the Kafka record
    the element originated from (``None`` for untraced pipelines); operator
    transforms preserve it so the element can be followed back out of the
    job at the sink.
    """

    value: Any
    timestamp: float
    key: Any = None
    trace: Any = None

    def with_value(self, value: Any) -> "StreamRecord":
        return StreamRecord(value, self.timestamp, self.key, self.trace)

    def with_key(self, key: Any) -> "StreamRecord":
        return StreamRecord(self.value, self.timestamp, key, self.trace)


@dataclass(frozen=True, slots=True)
class Watermark:
    """Assertion that no element with timestamp <= ``timestamp`` follows."""

    timestamp: float


@dataclass(frozen=True, slots=True)
class CheckpointBarrier:
    """Alignment marker injected by the checkpoint coordinator."""

    checkpoint_id: int


@dataclass(frozen=True, slots=True)
class StreamStatus:
    """Source idleness marker (Flink's ``withIdleness``).

    An idle channel is excluded from the downstream watermark minimum so an
    empty Kafka partition cannot stall event time for the whole job.
    """

    idle: bool


@dataclass(frozen=True, slots=True)
class RecordBatch:
    """A columnar batch flowing through the dataflow as one element.

    The vectorized counterpart of :class:`StreamRecord`: ``batch`` is a
    :class:`repro.columnar.ColumnBatch`, ``timestamps`` holds one event
    timestamp per row, and ``selection`` (when set) restricts the
    element to a subset of row indices — the runtime routes partitioned
    sub-batches as selection vectors over the *shared* parent batch, so
    a keyed exchange never copies cells.  ``trace`` follows the
    :class:`StreamRecord` contract for the whole batch.
    """

    batch: Any
    timestamps: tuple
    keys: tuple | None = None
    trace: Any = None
    selection: tuple | None = None

    def __len__(self) -> int:
        return len(self.selection) if self.selection is not None else len(self.batch)

    def row_indices(self) -> range | tuple:
        """Indices of live rows in ``batch`` (all rows when unselected)."""
        if self.selection is not None:
            return self.selection
        return range(self.batch.num_rows)


StreamElement = (
    StreamRecord | RecordBatch | Watermark | CheckpointBarrier | StreamStatus
)


class BoundedOutOfOrdernessWatermarks:
    """Watermark generator tolerating ``max_out_of_orderness`` seconds.

    Emits ``max_seen_timestamp - max_out_of_orderness`` — the standard
    Flink strategy.  Late events (below the watermark) are handled by the
    window operator's allowed-lateness policy.
    """

    def __init__(self, max_out_of_orderness: float = 0.0) -> None:
        if max_out_of_orderness < 0:
            raise ValueError(
                f"out-of-orderness bound must be >= 0, got {max_out_of_orderness}"
            )
        self.max_out_of_orderness = max_out_of_orderness
        self._max_timestamp = float("-inf")

    def on_event(self, timestamp: float) -> None:
        if timestamp > self._max_timestamp:
            self._max_timestamp = timestamp

    def current_watermark(self) -> float:
        if self._max_timestamp == float("-inf"):
            return float("-inf")
        return self._max_timestamp - self.max_out_of_orderness
