"""Native semistructured (JSON) support (Section 4.3, current work).

"Users currently rely on a Flink job to preprocess an input Kafka topic
with nested JSON format into a flattened-schema Kafka topic for Pinot
ingestion.  We are working with the community in building native JSON
support for both ingestion and queries."

This module supplies both halves so the ablation can compare them:

* **Native path** — ``json_extract`` evaluates dotted/indexed paths
  against JSON column values at query time, and :func:`execute_json_query`
  runs filter/group-by queries over a JSON column without any
  preprocessing (full scan of the JSON column; flexible but slower).
* **Flattening path** — :func:`build_flattener` returns the map function
  a Flink preprocessing job applies to turn nested payloads into flat
  rows (fast indexed serving; schema fixed at pipeline-build time).
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.common.errors import QueryError
from repro.pinot.query import (
    PartialResult,
    PinotQuery,
    SegmentPlan,
    _new_agg_state,
    _update_agg_state,
)
from repro.pinot.segment import ImmutableSegment, MutableSegment

_PATH_TOKEN = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)|\[(\d+)\]")


def parse_json_path(path: str) -> list[Any]:
    """'payload.items[2].name' -> ['payload', 'items', 2, 'name']."""
    if not path:
        raise QueryError("empty JSON path")
    tokens: list[Any] = []
    for part in path.split("."):
        if not part:
            raise QueryError(f"malformed JSON path {path!r}: empty segment")
        matched = 0
        for match in _PATH_TOKEN.finditer(part):
            if match.group(1) is not None:
                tokens.append(match.group(1))
            else:
                tokens.append(int(match.group(2)))
            matched += len(match.group(0))
        if matched != len(part):
            raise QueryError(f"malformed JSON path segment {part!r}")
    return tokens


def json_extract(value: Any, path: str) -> Any:
    """Evaluate a dotted/indexed path; None when any hop is missing."""
    current = value
    for token in parse_json_path(path):
        if isinstance(token, int):
            if not isinstance(current, list) or token >= len(current):
                return None
            current = current[token]
        else:
            if not isinstance(current, dict):
                return None
            current = current.get(token)
        if current is None:
            return None
    return current


def execute_json_query(
    segment: ImmutableSegment | MutableSegment,
    json_column: str,
    query: PinotQuery,
) -> PartialResult:
    """Run a query whose filter/group-by columns are JSON paths *inside*
    ``json_column`` (e.g. ``Filter("order.city", "=", "sf")``).

    Always a full scan of the JSON column — the flexibility/cost trade the
    paper's users escape by flattening with Flink.
    """
    plan = SegmentPlan(segment=segment.name)
    plan.access_paths.append(f"json-scan:{json_column}")
    num_docs = segment.num_docs
    plan.docs_examined = num_docs
    partial = PartialResult(plan=plan)
    for doc_id in range(num_docs):
        payload = segment.value(json_column, doc_id)
        if payload is None:
            continue
        if not all(
            flt.matches(json_extract(payload, flt.column))
            for flt in query.filters
        ):
            continue
        if query.is_aggregation():
            key = tuple(
                json_extract(payload, path) for path in query.group_by
            )
            states = partial.groups.get(key)
            if states is None:
                states = [_new_agg_state(a) for a in query.aggregations]
                partial.groups[key] = states
            for i, agg in enumerate(query.aggregations):
                value = (
                    json_extract(payload, agg.column)
                    if agg.column is not None
                    else None
                )
                states[i] = _update_agg_state(agg, states[i], value)
        else:
            columns = query.select_columns
            if columns:
                partial.rows.append(
                    {c: json_extract(payload, c) for c in columns}
                )
            else:
                partial.rows.append({json_column: payload})
    return partial


def build_flattener(
    mapping: dict[str, str],
) -> Callable[[dict[str, Any]], dict[str, Any]]:
    """The Flink preprocessing function: flat column -> JSON path.

    ``build_flattener({"city": "order.city"})`` returns a map function for
    a Flink job that emits flat rows Pinot can index normally.  Changing
    the mapping means redeploying the pipeline — the rigidity native JSON
    removes.
    """
    compiled = {flat: path for flat, path in mapping.items()}
    for path in compiled.values():
        parse_json_path(path)  # validate eagerly

    def flatten(payload: dict[str, Any]) -> dict[str, Any]:
        return {flat: json_extract(payload, path) for flat, path in compiled.items()}

    return flatten
