"""Table configuration (Section 4.3).

A Pinot table is configured with its schema, time column, per-column
indexes, an optional star-tree, and — for the upsert tables of
Section 4.3.1 — a primary key, in which case the input stream must be
partitioned by that key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import PinotError
from repro.metadata.schema import Schema
from repro.pinot.segment import IndexConfig
from repro.pinot.startree import StarTreeConfig


@dataclass
class TableConfig:
    name: str
    schema: Schema
    time_column: str | None = None
    index_config: IndexConfig = field(default_factory=IndexConfig)
    startree_config: StarTreeConfig | None = None
    upsert_enabled: bool = False
    primary_key: str | None = None
    # Opt-in ingestion-time replay dedup: rows whose content digest was
    # already ingested into this partition are skipped.  Shields append-only
    # tables from the at-least-once replay of upstream producers (a Flink
    # job re-emitting after crash-restore, a Kafka re-produce).  Mutually
    # exclusive with upsert, which has its own per-key versioning.
    dedup_enabled: bool = False
    replicas: int = 2
    segment_rows_threshold: int = 1000
    # The column the input stream is keyed by (the producer's hash
    # partitioner ran over it).  Declaring it lets the broker prune whole
    # partitions on equality predicates; only declare it when every
    # producer of the topic really keys by this column.  Upsert tables are
    # keyed by their primary key by design, so it defaults there.
    partition_column: str | None = None

    def __post_init__(self) -> None:
        if self.dedup_enabled and self.upsert_enabled:
            raise PinotError(
                f"table {self.name!r}: dedup and upsert are mutually exclusive"
            )
        if self.upsert_enabled and self.partition_column is None:
            self.partition_column = self.primary_key
        if self.partition_column is not None and not self.schema.has_field(
            self.partition_column
        ):
            raise PinotError(
                f"table {self.name!r}: partition column "
                f"{self.partition_column!r} is not a schema field"
            )
        if self.upsert_enabled:
            if self.primary_key is None:
                raise PinotError(
                    f"table {self.name!r}: upsert requires a primary key"
                )
            if self.index_config.sort_column is not None:
                # Sealing re-orders docs, which would break the upsert
                # manager's (segment, doc_id) locations.
                raise PinotError(
                    f"table {self.name!r}: upsert tables cannot use a sort column"
                )
            if self.startree_config is not None:
                raise PinotError(
                    f"table {self.name!r}: star-tree pre-aggregation cannot "
                    "represent upserted (mutable) rows"
                )
        if self.primary_key is not None and not self.schema.has_field(self.primary_key):
            raise PinotError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                "is not a schema field"
            )
        if self.time_column is not None and not self.schema.has_field(self.time_column):
            raise PinotError(
                f"table {self.name!r}: time column {self.time_column!r} "
                "is not a schema field"
            )
