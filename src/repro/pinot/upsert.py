"""Upsert support (Section 4.3.1).

"The key technical challenge for upsert is tracking the locations of the
records with the same primary key."  Uber's shared-nothing solution:
partition the input stream by primary key so all records for a key land on
one node, and track per-partition key locations locally; a partition-aware
routing strategy then keeps each partition's subquery on its owning node.

:class:`UpsertManager` is that per-partition location map: primary key ->
(segment, doc id), plus the valid-doc-id sets the query executor consults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass
class UpsertManager:
    """Primary-key location tracking for one partition of one table."""

    table: str
    partition: int
    _locations: dict[Hashable, tuple[str, int]] = field(default_factory=dict)
    _valid: dict[str, set[int]] = field(default_factory=dict)
    # Every version of every key, in apply order: key -> [(segment, doc)].
    # Retention needs it — when a segment holding a key's *latest* version
    # is dropped, the newest surviving older version becomes visible again
    # instead of the key vanishing from the table.
    _history: dict[Hashable, list[tuple[str, int]]] = field(default_factory=dict)
    upserts: int = 0
    inserts: int = 0

    def apply(self, primary_key: Hashable, segment_name: str, doc_id: int) -> None:
        """Record that ``primary_key``'s latest version is at
        (segment, doc).  Any previous location is invalidated."""
        previous = self._locations.get(primary_key)
        if previous is not None:
            old_segment, old_doc = previous
            valid = self._valid.get(old_segment)
            if valid is not None:
                valid.discard(old_doc)
            self.upserts += 1
        else:
            self.inserts += 1
        self._locations[primary_key] = (segment_name, doc_id)
        self._valid.setdefault(segment_name, set()).add(doc_id)
        self._history.setdefault(primary_key, []).append((segment_name, doc_id))

    def valid_docs(self, segment_name: str) -> set[int]:
        """Doc ids of ``segment_name`` holding a key's latest version."""
        return self._valid.get(segment_name, set())

    def location(self, primary_key: Hashable) -> tuple[str, int] | None:
        return self._locations.get(primary_key)

    def key_count(self) -> int:
        return len(self._locations)

    def drop_segment(self, segment_name: str) -> None:
        """Forget a segment (retention).

        A key whose *only* versions lived there disappears from the table;
        a key whose latest version lived there but which still has an older
        version in a retained segment is *resurrected* at its newest
        surviving version — dropping old data must never hide newer-enough
        data that is still on disk.
        """
        self._valid.pop(segment_name, None)
        for key in list(self._history):
            versions = self._history[key]
            survivors = [loc for loc in versions if loc[0] != segment_name]
            if len(survivors) == len(versions):
                continue  # key untouched by this drop
            if not survivors:
                del self._history[key]
                self._locations.pop(key, None)
                continue
            self._history[key] = survivors
            current = self._locations.get(key)
            if current is not None and current[0] != segment_name:
                continue  # latest version lives elsewhere; nothing to fix
            seg, doc = survivors[-1]  # newest surviving version
            self._locations[key] = (seg, doc)
            self._valid.setdefault(seg, set()).add(doc)

    def rebuild_from_segments(self, segments: list[tuple[str, list[dict[str, Any]]]],
                              primary_key: str) -> None:
        """Bootstrap the location map by replaying segments in seal order
        (server restart path: metadata is reconstructed, not checkpointed,
        matching the shared-nothing design's recovery story)."""
        self._locations.clear()
        self._valid.clear()
        self._history.clear()
        self.upserts = self.inserts = 0
        for segment_name, rows in segments:
            for doc_id, row in enumerate(rows):
                self.apply(row[primary_key], segment_name, doc_id)
