"""OLAP: a Pinot-flavoured realtime columnar store.

Segments with bit-packed forward indexes (segment), inverted/sorted/range
indexes (indexes), star-tree pre-aggregation (startree), realtime Kafka
ingestion with sealing (realtime), shared-nothing upserts (upsert,
Section 4.3.1), scatter-gather-merge brokering with partition-aware
routing (broker), controller-managed assignment and recovery (controller),
and the centralized vs peer-to-peer segment backup strategies of
Section 4.3.4 (recovery).  The broker additionally prunes segments via
commit-time zone maps / bloom filters and serves repeated queries from an
epoch-validated result cache (segment, indexes, broker).
"""

from repro.pinot.broker import BrokerResultCache, PinotBroker, QueryResult
from repro.pinot.controller import PinotController, TableState
from repro.pinot.indexes import BloomFilter, InvertedIndex, RangeIndex, SortedIndex
from repro.pinot.json_support import (
    build_flattener,
    execute_json_query,
    json_extract,
    parse_json_path,
)
from repro.pinot.lookupjoin import (
    DimensionTable,
    DimensionTableRegistry,
    LookupJoinSpec,
    execute_lookup_join,
)
from repro.pinot.query import Aggregation, Filter, PinotQuery, SegmentPlan
from repro.pinot.realtime import RealtimeIngestion, TableEpoch, segment_name
from repro.pinot.recovery import CentralizedBackup, PeerToPeerBackup
from repro.pinot.segment import ImmutableSegment, IndexConfig, MutableSegment, ZoneMap
from repro.pinot.server import PinotServer
from repro.pinot.startree import StarTree, StarTreeConfig
from repro.pinot.table import TableConfig
from repro.pinot.upsert import UpsertManager

__all__ = [
    "BloomFilter",
    "BrokerResultCache",
    "PinotBroker",
    "QueryResult",
    "TableEpoch",
    "ZoneMap",
    "PinotController",
    "TableState",
    "InvertedIndex",
    "RangeIndex",
    "SortedIndex",
    "Aggregation",
    "Filter",
    "PinotQuery",
    "SegmentPlan",
    "RealtimeIngestion",
    "segment_name",
    "CentralizedBackup",
    "PeerToPeerBackup",
    "ImmutableSegment",
    "IndexConfig",
    "MutableSegment",
    "PinotServer",
    "StarTree",
    "StarTreeConfig",
    "TableConfig",
    "UpsertManager",
    "build_flattener",
    "execute_json_query",
    "json_extract",
    "parse_json_path",
    "DimensionTable",
    "DimensionTableRegistry",
    "LookupJoinSpec",
    "execute_lookup_join",
]
