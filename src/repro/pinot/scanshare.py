"""Per-server scan-share cache: memoized filter resolutions, epoch-keyed.

The broker's result cache only pays when an *entire* query repeats; a
surge workload mostly repeats *predicates* — the same ``city = X`` or
``ts BETWEEN lo AND hi`` shows up inside thousands of distinct queries.
Resolving such a filter against a sealed segment is a pure function of
``(segment contents, predicate)``: the decode-heavy part of a scatter.
This cache memoizes exactly that, per server, so a sticky routing layer
that keeps sending a segment's queries to the same server turns repeat
predicates into lookups instead of forward-index decodes.

Invariants:

* **Epoch-keyed freshness** — the cache key folds in the table epoch
  (which advances on every data mutation), so an entry can never be
  served across a data change; stale keys simply age out of the LRU.
  No wall-clock TTLs — those are non-deterministic under the simulated
  clock and stale besides.
* **Equality-canonical keys** — predicate literals are canonicalized
  through :func:`repro.common.serde.encode_key`, the same primitive as
  partition pruning and bloom filters, so ``ts = 5`` and ``ts = 5.0``
  (which the executor's Python ``==`` treats identically) share one
  entry and can never disagree with a fresh scan.  Unencodable
  literals bypass the cache entirely.
* **Expensive paths only** — only resolutions that examined documents
  (forward-index scans, range-boundary refinements) are stored.  Index
  lookups (sorted/inverted) are already cheaper than a cache hit and
  are never cached.
* **Evidence-preserving** — a hit replays the stored access path and
  ``docs_examined`` into the segment plan, so query plans and stats
  read exactly as if the scan had run; only the PERF counters (and the
  saved decode work) reveal the sharing.  Sealed segments only: a
  consuming segment mutates between queries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common import serde
from repro.common.perf import PERF


@dataclass(frozen=True)
class ScanShareEntry:
    """One memoized filter resolution against one sealed segment."""

    docs: tuple[int, ...]
    access_path: str
    docs_examined: int


class ScanShareCache:
    """LRU of per-(segment, predicate, epoch) doc-id resolutions."""

    def __init__(self, capacity: int = 65_536) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[bytes, ScanShareEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.docs_served = 0

    @staticmethod
    def key_for(segment_name: str, epoch: int, flt) -> bytes | None:
        """Canonical cache key; None when a literal is unencodable."""
        try:
            return serde.encode_key(
                [
                    segment_name,
                    epoch,
                    flt.column,
                    flt.op,
                    flt.value,
                    list(flt.values),
                    flt.low,
                    flt.high,
                ]
            )
        except Exception:
            return None

    def get(self, key: bytes, plan) -> list[int] | None:
        """Serve a memoized resolution, replaying its plan evidence."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if PERF.enabled:
                PERF.inc("pinot.scanshare_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.docs_served += len(entry.docs)
        if PERF.enabled:
            PERF.inc("pinot.scanshare_hits")
            PERF.inc("pinot.scanshare_docs_served", len(entry.docs))
        plan.access_paths.append(entry.access_path)
        plan.docs_examined += entry.docs_examined
        return list(entry.docs)

    def put(
        self, key: bytes, docs: list[int], access_path: str, docs_examined: int
    ) -> None:
        self._entries[key] = ScanShareEntry(
            tuple(docs), access_path, docs_examined
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def entry_count(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
