"""Per-column segment indexes: inverted, sorted, range (Section 4.3).

Pinot "supports a number of fast indexing techniques, such as inverted,
range, sorted and startree index, to answer the low-latency OLAP
queries."  These are the three value-level ones; the star-tree lives in
:mod:`repro.pinot.startree`.

All indexes answer with sorted lists of doc ids, which the query executor
intersects.  The Druid-style baseline (C4) runs the same queries with the
indexes disabled.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Sequence

from repro.common.errors import QueryError


def intersect_sorted(a: list[int], b: list[int]) -> list[int]:
    """Intersection of two ascending doc-id lists."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def union_sorted(lists: list[list[int]]) -> list[int]:
    """Union of ascending doc-id lists (deduplicated)."""
    seen: set[int] = set()
    for docs in lists:
        seen.update(docs)
    return sorted(seen)


class InvertedIndex:
    """value -> ascending doc ids.  O(1) point lookups."""

    def __init__(self, values: Sequence[Any]) -> None:
        self._postings: dict[Any, list[int]] = {}
        for doc_id, value in enumerate(values):
            self._postings.setdefault(value, []).append(doc_id)

    def lookup(self, value: Any) -> list[int]:
        return self._postings.get(value, [])

    def lookup_in(self, values: Sequence[Any]) -> list[int]:
        return union_sorted([self.lookup(v) for v in values])

    def cardinality(self) -> int:
        return len(self._postings)

    def posting_entries(self) -> int:
        return sum(len(p) for p in self._postings.values())


class SortedIndex:
    """For a column whose values are sorted within the segment.

    Pinot sorts realtime segments by the configured sorted column at
    sealing time; equality and ranges become binary searches returning
    contiguous doc-id runs.
    """

    def __init__(self, values: Sequence[Any]) -> None:
        self._values = list(values)
        for prev, cur in zip(self._values, self._values[1:]):
            if cur < prev:
                raise QueryError(
                    "sorted index requires ascending values; "
                    "seal the segment with sort_column set"
                )

    def equals(self, value: Any) -> range:
        lo = bisect_left(self._values, value)
        hi = bisect_right(self._values, value)
        return range(lo, hi)

    def between(self, low: Any, high: Any, inclusive: bool = True) -> range:
        lo = bisect_left(self._values, low)
        hi = bisect_right(self._values, high) if inclusive else bisect_left(
            self._values, high
        )
        return range(lo, hi)


class RangeIndex:
    """Bucketed numeric range index.

    Values are bucketed into ``num_buckets`` equal-width ranges; each
    bucket stores its doc ids.  A range predicate touches only candidate
    buckets (edge buckets re-check exact values via the forward index at
    query time — the executor handles that refinement).
    """

    def __init__(self, values: Sequence[float], num_buckets: int = 32) -> None:
        numeric = [v for v in values if v is not None]
        if not numeric:
            self._min = self._max = 0.0
            self._width = 1.0
        else:
            self._min = float(min(numeric))
            self._max = float(max(numeric))
            span = self._max - self._min
            self._width = span / num_buckets if span > 0 else 1.0
        self.num_buckets = num_buckets
        self._buckets: list[list[int]] = [[] for __ in range(num_buckets)]
        for doc_id, value in enumerate(values):
            if value is None:
                continue
            self._buckets[self._bucket_of(float(value))].append(doc_id)

    def _bucket_of(self, value: float) -> int:
        index = int((value - self._min) / self._width)
        return max(0, min(self.num_buckets - 1, index))

    def candidates(self, low: float | None, high: float | None) -> tuple[list[int], list[int]]:
        """Doc ids for a range predicate.

        Returns (certain, boundary): ``certain`` docs definitely satisfy
        the range (interior buckets); ``boundary`` docs need an exact
        re-check (edge buckets).
        """
        lo_bucket = self._bucket_of(low) if low is not None else 0
        hi_bucket = (
            self._bucket_of(high) if high is not None else self.num_buckets - 1
        )
        certain: list[list[int]] = []
        boundary: list[list[int]] = []
        for index in range(lo_bucket, hi_bucket + 1):
            if index in (lo_bucket, hi_bucket):
                boundary.append(self._buckets[index])
            else:
                certain.append(self._buckets[index])
        return union_sorted(certain), union_sorted(boundary)
