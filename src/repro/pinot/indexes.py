"""Per-column segment indexes: inverted, sorted, range, bloom (Section 4.3).

Pinot "supports a number of fast indexing techniques, such as inverted,
range, sorted and startree index, to answer the low-latency OLAP
queries."  These are the value-level ones; the star-tree lives in
:mod:`repro.pinot.startree`.

Doc-level indexes answer with sorted lists of doc ids, which the query
executor intersects.  The Druid-style baseline (C4) runs the same queries
with the indexes disabled.  The :class:`BloomFilter` is segment-level: it
answers "might this segment contain value v at all", which the broker
uses to prune whole segments from the scatter before fanning out.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Sequence

from repro.common import serde
from repro.common.errors import QueryError


def intersect_sorted(a: list[int], b: list[int]) -> list[int]:
    """Intersection of two ascending doc-id lists."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def union_sorted(lists: list[list[int]]) -> list[int]:
    """Union of ascending doc-id lists (deduplicated)."""
    seen: set[int] = set()
    for docs in lists:
        seen.update(docs)
    return sorted(seen)


def _bloom_key(value: Any) -> bytes | None:
    """Canonical bytes for a value, equality-compatible across types.

    ``5 == 5.0 == True`` under Python equality (and ``Decimal(5) == 5``),
    so numerics hash through :func:`serde.encode_key`'s one canonical
    float representation — otherwise a float literal in a query could miss
    an int stored in the column and cause a *false negative*, which for a
    pruning filter means wrong results.  The same function drives the
    producer's hash partitioner, so every pruning structure shares one
    notion of equality.  Collisions only ever add false positives, which
    are safe.  Returns None for values with no stable canonical encoding
    (the filter then refuses to rule the segment out rather than risk
    instability across processes).
    """
    try:
        return serde.encode_key(value)
    except Exception:
        return None


class BloomFilter:
    """Segment-level membership sketch over a column's distinct values.

    Deterministic double hashing (blake2b split into two 64-bit halves)
    over the canonical serde encoding, so the bit pattern — and therefore
    every pruning decision — is byte-identical across runs and machines
    (Python's ``hash()`` is randomized; never use it here).
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int,
        bits: bytes | None = None,
        opaque: bool = False,
    ) -> None:
        if num_bits < 8 or num_hashes < 1:
            raise QueryError(
                f"bloom filter needs >=8 bits and >=1 hash, got "
                f"{num_bits}/{num_hashes}"
            )
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        # A value with no canonical encoding was inserted: the filter can
        # no longer prove absence of anything.
        self.opaque = opaque
        self._bits = bytearray(bits) if bits is not None else bytearray(
            (num_bits + 7) // 8
        )

    @classmethod
    def build(cls, values: Iterable[Any], bits_per_value: int = 10) -> "BloomFilter":
        """Size the filter for the distinct values and insert them all
        (built once, at segment commit time)."""
        distinct = list(values)
        num_bits = max(64, len(distinct) * bits_per_value)
        num_hashes = max(1, (bits_per_value * 7) // 10)  # ~0.7 * bits/value
        bloom = cls(num_bits, num_hashes)
        for value in distinct:
            bloom.add(value)
        return bloom

    def _positions(self, key: bytes) -> list[int]:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full cycle
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    def add(self, value: Any) -> None:
        if value is None:
            return  # NULL never matches a filter, so it never needs a bit
        key = _bloom_key(value)
        if key is None:
            self.opaque = True
            return
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, value: Any) -> bool:
        """False means *definitely absent*; True means "cannot rule out"."""
        if value is None:
            return False
        if self.opaque:
            return True
        key = _bloom_key(value)
        if key is None:
            return True
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    def to_payload(self) -> dict[str, Any]:
        """Serializable form for segment metadata."""
        return {
            "num_bits": self.num_bits,
            "num_hashes": self.num_hashes,
            "bits": bytes(self._bits),
            "opaque": self.opaque,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "BloomFilter":
        return cls(
            payload["num_bits"],
            payload["num_hashes"],
            payload["bits"],
            opaque=payload.get("opaque", False),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomFilter)
            and self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and self.opaque == other.opaque
            and self._bits == other._bits
        )

    def disk_bytes(self) -> int:
        return len(self._bits)


class InvertedIndex:
    """value -> ascending doc ids.  O(1) point lookups."""

    def __init__(self, values: Sequence[Any]) -> None:
        self._postings: dict[Any, list[int]] = {}
        for doc_id, value in enumerate(values):
            self._postings.setdefault(value, []).append(doc_id)

    def lookup(self, value: Any) -> list[int]:
        return self._postings.get(value, [])

    def lookup_in(self, values: Sequence[Any]) -> list[int]:
        return union_sorted([self.lookup(v) for v in values])

    def cardinality(self) -> int:
        return len(self._postings)

    def posting_entries(self) -> int:
        return sum(len(p) for p in self._postings.values())


class SortedIndex:
    """For a column whose values are sorted within the segment.

    Pinot sorts realtime segments by the configured sorted column at
    sealing time; equality and ranges become binary searches returning
    contiguous doc-id runs.
    """

    def __init__(self, values: Sequence[Any]) -> None:
        self._values = list(values)
        for prev, cur in zip(self._values, self._values[1:]):
            if cur < prev:
                raise QueryError(
                    "sorted index requires ascending values; "
                    "seal the segment with sort_column set"
                )

    def equals(self, value: Any) -> range:
        lo = bisect_left(self._values, value)
        hi = bisect_right(self._values, value)
        return range(lo, hi)

    def between(self, low: Any, high: Any, inclusive: bool = True) -> range:
        lo = bisect_left(self._values, low)
        hi = bisect_right(self._values, high) if inclusive else bisect_left(
            self._values, high
        )
        return range(lo, hi)


class RangeIndex:
    """Bucketed numeric range index.

    Values are bucketed into ``num_buckets`` equal-width ranges; each
    bucket stores its doc ids.  A range predicate touches only candidate
    buckets (edge buckets re-check exact values via the forward index at
    query time — the executor handles that refinement).
    """

    def __init__(self, values: Sequence[float], num_buckets: int = 32) -> None:
        numeric = [v for v in values if v is not None]
        if not numeric:
            self._min = self._max = 0.0
            self._width = 1.0
        else:
            self._min = float(min(numeric))
            self._max = float(max(numeric))
            span = self._max - self._min
            self._width = span / num_buckets if span > 0 else 1.0
        self.num_buckets = num_buckets
        self._buckets: list[list[int]] = [[] for __ in range(num_buckets)]
        for doc_id, value in enumerate(values):
            if value is None:
                continue
            self._buckets[self._bucket_of(float(value))].append(doc_id)

    def _bucket_of(self, value: float) -> int:
        index = int((value - self._min) / self._width)
        return max(0, min(self.num_buckets - 1, index))

    def candidates(self, low: float | None, high: float | None) -> tuple[list[int], list[int]]:
        """Doc ids for a range predicate.

        Returns (certain, boundary): ``certain`` docs definitely satisfy
        the range (interior buckets); ``boundary`` docs need an exact
        re-check (edge buckets).
        """
        lo_bucket = self._bucket_of(low) if low is not None else 0
        hi_bucket = (
            self._bucket_of(high) if high is not None else self.num_buckets - 1
        )
        certain: list[list[int]] = []
        boundary: list[list[int]] = []
        for index in range(lo_bucket, hi_bucket + 1):
            if index in (lo_bucket, hi_bucket):
                boundary.append(self._buckets[index])
            else:
                certain.append(self._buckets[index])
        return union_sorted(certain), union_sorted(boundary)
