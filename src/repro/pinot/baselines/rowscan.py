"""Druid-style columnar store without Pinot's specialized indexes (C4).

Section 4.3: "Pinot is similar in architecture to Apache Druid but has
incorporated optimized data structures such as bit compressed forward
indices ... It also uses specialized indices for faster query execution
such as Startree, sorted and range indices, which could result in order of
magnitude difference of query latency."

This baseline is a fair Druid stand-in: columnar like Pinot (so the C4
comparison isolates the *index* contribution, not the storage layout), but
every filter is a full column scan and every aggregation touches all
matching rows — no star-tree, no sorted or range index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.memory import deep_sizeof
from repro.pinot.query import (
    PinotQuery,
    _new_agg_state,
    _update_agg_state,
    finalize_agg_state,
)


@dataclass
class ScanStore:
    """Plain columnar store queried by full scans."""

    name: str = "scanstore"
    _columns: dict[str, list[Any]] = field(default_factory=dict)
    _num_rows: int = 0
    docs_scanned: int = 0  # cumulative work counter for benches

    def load_rows(self, rows: list[dict[str, Any]], column_names: list[str]) -> None:
        for cname in column_names:
            self._columns.setdefault(cname, [])
        for row in rows:
            for cname in column_names:
                self._columns[cname].append(row.get(cname))
        self._num_rows += len(rows)

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def memory_bytes(self) -> int:
        return deep_sizeof(self._columns)

    def execute(self, query: PinotQuery) -> list[dict[str, Any]]:
        matching = []
        for row_id in range(self._num_rows):
            self.docs_scanned += 1
            ok = True
            for flt in query.filters:
                if not flt.matches(self._columns[flt.column][row_id]):
                    ok = False
                    break
            if ok:
                matching.append(row_id)
        if not query.is_aggregation():
            columns = query.select_columns or sorted(self._columns)
            rows = [
                {c: self._columns[c][r] for c in columns} for r in matching
            ]
            return rows[: query.limit] if query.limit else rows
        groups: dict[tuple, list[Any]] = {}
        for row_id in matching:
            key = tuple(self._columns[c][row_id] for c in query.group_by)
            states = groups.get(key)
            if states is None:
                states = [_new_agg_state(a) for a in query.aggregations]
                groups[key] = states
            for i, agg in enumerate(query.aggregations):
                value = (
                    self._columns[agg.column][row_id]
                    if agg.column is not None
                    else None
                )
                states[i] = _update_agg_state(agg, states[i], value)
        rows = []
        for key, states in groups.items():
            row: dict[str, Any] = dict(zip(query.group_by, key))
            for agg, stateval in zip(query.aggregations, states):
                row[agg.alias()] = finalize_agg_state(agg, stateval)
            rows.append(row)
        for name, descending in reversed(query.order_by):
            rows.sort(
                key=lambda r: (r.get(name) is None, r.get(name)), reverse=descending
            )
        return rows[: query.limit] if query.limit else rows
