"""Elasticsearch-style document store baseline (claim C3).

Section 4.3: "With the same amount of data ingested into Elasticsearch and
Pinot, Elasticsearch's memory usage was 4x higher and disk usage was 8x
higher than Pinot.  In addition, Elasticsearch's query latency was 2x-4x
higher than Pinot."

The structural reasons, reproduced here rather than asserted:

* every document is stored as its own JSON object (the ``_source`` field)
  — no columnar layout, no dictionary encoding, no bit packing;
* every field of every document is indexed into per-field postings by
  default (dynamic mapping), so index overhead is paid for columns queries
  never touch;
* aggregations fetch whole documents: a group-by touches every stored
  field of each matching doc instead of two column strips.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.common.memory import deep_sizeof
from repro.pinot.query import (
    Filter,
    PinotQuery,
    _new_agg_state,
    _update_agg_state,
    finalize_agg_state,
)


@dataclass
class DocStore:
    """One "index" of JSON documents with per-field postings."""

    name: str = "docstore"
    _docs: list[dict[str, Any]] = field(default_factory=list)
    _source: list[str] = field(default_factory=list)  # serialized _source
    # field -> value -> doc ids (dynamic mapping indexes everything)
    _postings: dict[str, dict[Any, list[int]]] = field(default_factory=dict)

    def index(self, doc: dict[str, Any]) -> int:
        doc_id = len(self._docs)
        self._docs.append(dict(doc))
        self._source.append(json.dumps(doc, default=str))
        for fname, value in doc.items():
            if isinstance(value, (dict, list)):
                value = json.dumps(value, default=str)
            self._postings.setdefault(fname, {}).setdefault(value, []).append(doc_id)
        return doc_id

    def bulk_index(self, docs: list[dict[str, Any]]) -> int:
        for doc in docs:
            self.index(doc)
        return len(docs)

    @property
    def num_docs(self) -> int:
        return len(self._docs)

    # -- footprints ------------------------------------------------------------

    def disk_bytes(self) -> int:
        """Stored _source plus postings (8 bytes per posting entry:
        Lucene's doc id + position overhead, conservatively)."""
        source = sum(len(s) for s in self._source)
        postings = sum(
            len(doc_ids) * 8 + len(str(value))
            for fields in self._postings.values()
            for value, doc_ids in fields.items()
        )
        return source + postings

    def memory_bytes(self) -> int:
        return deep_sizeof({"docs": self._docs, "postings": self._postings})

    # -- querying (same query objects as Pinot, for the latency comparison) ---

    def execute(self, query: PinotQuery) -> list[dict[str, Any]]:
        matching = self._matching(query.filters)
        if not query.is_aggregation():
            columns = query.select_columns
            rows = []
            for doc_id in matching:
                doc = json.loads(self._source[doc_id])  # _source fetch
                rows.append(
                    {c: doc.get(c) for c in columns} if columns else doc
                )
            return rows[: query.limit] if query.limit else rows
        groups: dict[tuple, list[Any]] = {}
        for doc_id in matching:
            doc = json.loads(self._source[doc_id])  # aggs fetch documents
            key = tuple(doc.get(c) for c in query.group_by)
            states = groups.get(key)
            if states is None:
                states = [_new_agg_state(a) for a in query.aggregations]
                groups[key] = states
            for i, agg in enumerate(query.aggregations):
                value = doc.get(agg.column) if agg.column is not None else None
                states[i] = _update_agg_state(agg, states[i], value)
        rows = []
        for key, states in groups.items():
            row: dict[str, Any] = dict(zip(query.group_by, key))
            for agg, stateval in zip(query.aggregations, states):
                row[agg.alias()] = finalize_agg_state(agg, stateval)
            rows.append(row)
        for name, descending in reversed(query.order_by):
            rows.sort(
                key=lambda r: (r.get(name) is None, r.get(name)), reverse=descending
            )
        return rows[: query.limit] if query.limit else rows

    def _matching(self, filters: list[Filter]) -> list[int]:
        if not filters:
            return list(range(self.num_docs))
        result: set[int] | None = None
        for flt in filters:
            postings = self._postings.get(flt.column, {})
            if flt.op == "=":
                docs = set(postings.get(flt.value, []))
            elif flt.op == "IN":
                docs = set()
                for value in flt.values:
                    docs.update(postings.get(value, []))
            else:
                # Ranges walk the term dictionary (ES numeric ranges are
                # cheaper with BKD trees, but the term-walk keeps the 2x-4x
                # shape; the paper benchmarked filter+agg mixes).
                docs = set()
                for value, doc_ids in postings.items():
                    if flt.matches(value):
                        docs.update(doc_ids)
            result = docs if result is None else (result & docs)
            if not result:
                return []
        return sorted(result or [])
