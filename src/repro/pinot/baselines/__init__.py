"""OLAP baselines the paper compares Pinot against (Section 4.3)."""

from repro.pinot.baselines.docstore import DocStore
from repro.pinot.baselines.rowscan import ScanStore

__all__ = ["DocStore", "ScanStore"]
