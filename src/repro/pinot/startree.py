"""Star-tree index: pre-aggregation with bounded query cost (Section 4.3).

Pinot "uses specialized indices for faster query execution such as
Startree ... which could result in order of magnitude difference of query
latency" versus Druid-style column scans.

A star-tree splits documents by a configured dimension order.  Every node
stores pre-aggregated metrics for its document subset; each dimension
level also has a *star* child aggregating across all values of that
dimension.  Nodes with at most ``max_leaf_records`` documents stop
splitting and keep raw doc ids.  A filter + group-by query then touches
O(tree depth x group cardinality) nodes and at most ``max_leaf_records``
raw docs per path — instead of scanning the whole segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import QueryError
from repro.common.perf import PERF

STAR = "__star__"


@dataclass
class StarTreeConfig:
    """Dimension split order, metrics to pre-aggregate, leaf threshold."""

    dimensions: list[str]
    metrics: list[str]  # columns pre-aggregated as SUM (COUNT is implicit)
    max_leaf_records: int = 64


@dataclass
class _Node:
    count: int = 0
    sums: dict[str, float] = field(default_factory=dict)
    children: dict[Any, "_Node"] | None = None  # value -> child, STAR key too
    doc_ids: list[int] | None = None  # only on leaves


@dataclass
class StarTreeStats:
    """Work counters, the evidence for the latency claim (bench C4)."""

    nodes_visited: int = 0
    docs_scanned: int = 0


class StarTree:
    """Built once per sealed segment.

    Internally the tree holds column arrays, not row dicts: build-time
    grouping and leaf scans are plain list indexing.  Construct from rows
    (``StarTree(rows, config)``) or, on the sealed-segment fast path,
    straight from bulk-decoded forward indexes (:meth:`from_columns`).
    """

    def __init__(
        self,
        rows: Sequence[dict[str, Any]],
        config: StarTreeConfig,
    ) -> None:
        needed = dict.fromkeys(list(config.dimensions) + list(config.metrics))
        columns = {name: [row.get(name) for row in rows] for name in needed}
        self._init_from_columns(columns, len(rows), config)

    @classmethod
    def from_columns(
        cls,
        columns: dict[str, list[Any]],
        num_docs: int,
        config: StarTreeConfig,
    ) -> "StarTree":
        """Build from column arrays (missing columns read as all-NULL)."""
        tree = cls.__new__(cls)
        tree._init_from_columns(dict(columns), num_docs, config)
        return tree

    def _init_from_columns(
        self,
        columns: dict[str, list[Any]],
        num_docs: int,
        config: StarTreeConfig,
    ) -> None:
        self.config = config
        for name in list(config.dimensions) + list(config.metrics):
            columns.setdefault(name, [None] * num_docs)
        self._columns = columns
        self.node_count = 0
        self.root = self._build(list(range(num_docs)), 0)

    def _aggregate(self, doc_ids: list[int]) -> _Node:
        if PERF.enabled:
            PERF.inc("pinot.tree_build_rows", len(doc_ids))
        node = _Node(count=len(doc_ids))
        for metric in self.config.metrics:
            column = self._columns[metric]
            total = 0.0
            for doc_id in doc_ids:
                value = column[doc_id]
                if value is not None:
                    total += value
            node.sums[metric] = total
        self.node_count += 1
        return node

    def _build(self, doc_ids: list[int], dim_index: int) -> _Node:
        node = self._aggregate(doc_ids)
        done = dim_index >= len(self.config.dimensions)
        if done or len(doc_ids) <= self.config.max_leaf_records:
            node.doc_ids = doc_ids
            return node
        column = self._columns[self.config.dimensions[dim_index]]
        groups: dict[Any, list[int]] = {}
        for doc_id in doc_ids:
            groups.setdefault(column[doc_id], []).append(doc_id)
        node.children = {}
        for value, members in groups.items():
            node.children[value] = self._build(members, dim_index + 1)
        # The star child pre-aggregates across every value of this
        # dimension, letting queries that do not constrain it skip the
        # fan-out entirely.
        node.children[STAR] = self._build(doc_ids, dim_index + 1)
        return node

    # -- querying ------------------------------------------------------------

    def query(
        self,
        filters: dict[str, Any] | None = None,
        group_by: list[str] | None = None,
        sum_metric: str | None = None,
    ) -> tuple[dict[tuple, dict[str, float]], StarTreeStats]:
        """Aggregate with equality filters and group-by over tree dimensions.

        Returns ``{group_key_tuple: {"count": n, "sum": s}}`` plus work
        stats.  Raises :class:`QueryError` if the query references a
        dimension or metric the tree was not built for (the caller then
        falls back to a scan).
        """
        filters = filters or {}
        group_by = group_by or []
        for column in list(filters) + group_by:
            if column not in self.config.dimensions:
                raise QueryError(
                    f"star-tree does not cover dimension {column!r}"
                )
        if sum_metric is not None and sum_metric not in self.config.metrics:
            raise QueryError(f"star-tree does not pre-aggregate {sum_metric!r}")
        # Group keys are always assembled in tree-dimension order so the
        # tree levels and leaf scans agree; remap to the caller's order last.
        ordered_group = [d for d in self.config.dimensions if d in group_by]
        results: dict[tuple, dict[str, float]] = {}
        stats = StarTreeStats()
        self._visit(
            self.root, 0, filters, ordered_group, (), sum_metric, results, stats
        )
        if ordered_group != group_by:
            positions = [ordered_group.index(d) for d in group_by]
            results = {
                tuple(key[p] for p in positions): value
                for key, value in results.items()
            }
        return results, stats

    def _visit(
        self,
        node: _Node,
        dim_index: int,
        filters: dict[str, Any],
        group_by: list[str],
        group_key: tuple,
        sum_metric: str | None,
        results: dict[tuple, dict[str, float]],
        stats: StarTreeStats,
    ) -> None:
        stats.nodes_visited += 1
        if PERF.enabled:
            PERF.inc("pinot.tree_nodes")
        if node.children is None:
            # Leaf: resolve remaining filters/groups by scanning its docs.
            remaining_dims = self.config.dimensions[dim_index:]
            live_filters = {d: v for d, v in filters.items() if d in remaining_dims}
            live_groups = [d for d in group_by if d in remaining_dims]
            if not live_filters and not live_groups:
                self._accumulate(results, group_key, node.count, node.sums, sum_metric)
                return
            assert node.doc_ids is not None
            if PERF.enabled:
                PERF.inc("pinot.tree_docs", len(node.doc_ids))
            filter_columns = [
                (self._columns[d], v) for d, v in live_filters.items()
            ]
            group_columns = [self._columns[d] for d in live_groups]
            metric_column = (
                self._columns[sum_metric] if sum_metric is not None else None
            )
            for doc_id in node.doc_ids:
                stats.docs_scanned += 1
                if any(col[doc_id] != v for col, v in filter_columns):
                    continue
                key = group_key + tuple(col[doc_id] for col in group_columns)
                value = (
                    metric_column[doc_id] if metric_column is not None else None
                )
                self._accumulate(
                    results,
                    key,
                    1,
                    {sum_metric: value or 0.0} if sum_metric else {},
                    sum_metric,
                )
            return
        dimension = self.config.dimensions[dim_index]
        if dimension in filters:
            child = node.children.get(filters[dimension])
            if child is not None:
                self._visit(
                    child, dim_index + 1, filters, group_by, group_key,
                    sum_metric, results, stats,
                )
        elif dimension in group_by:
            for value, child in node.children.items():
                if value == STAR:
                    continue
                self._visit(
                    child, dim_index + 1, filters, group_by, group_key + (value,),
                    sum_metric, results, stats,
                )
        else:
            self._visit(
                node.children[STAR], dim_index + 1, filters, group_by, group_key,
                sum_metric, results, stats,
            )

    @staticmethod
    def _accumulate(
        results: dict[tuple, dict[str, float]],
        key: tuple,
        count: int,
        sums: dict[str, float],
        sum_metric: str | None,
    ) -> None:
        entry = results.setdefault(key, {"count": 0.0, "sum": 0.0})
        entry["count"] += count
        if sum_metric is not None:
            entry["sum"] += sums.get(sum_metric, 0.0)
