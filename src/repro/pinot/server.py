"""Pinot servers: segment hosts and per-segment query execution.

A server hosts immutable (sealed) and mutable (consuming) segments and
executes subqueries against them; brokers scatter subqueries and merge the
partials (Section 4.3's scatter-gather-merge).  Servers also keep the
per-partition :class:`~repro.pinot.upsert.UpsertManager` for the upsert
partitions they own — shared-nothing, no central coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SegmentError
from repro.common.metrics import MetricsRegistry
from repro.pinot.query import PartialResult, PinotQuery, execute_on_segment
from repro.pinot.scanshare import ScanShareCache
from repro.pinot.segment import ImmutableSegment, MutableSegment
from repro.pinot.upsert import UpsertManager


@dataclass
class PinotServer:
    name: str
    alive: bool = True
    # segment name -> segment object (per table namespacing via names)
    segments: dict[str, ImmutableSegment | MutableSegment] = field(
        default_factory=dict
    )
    upsert_managers: dict[tuple[str, int], UpsertManager] = field(
        default_factory=dict
    )
    metrics: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry("pinot.server")
    )
    # Memoized filter resolutions (see repro.pinot.scanshare); consulted
    # only when the broker passes a table epoch alongside the subquery.
    scan_cache: ScanShareCache = field(default_factory=ScanShareCache)

    def host_segment(self, segment: ImmutableSegment | MutableSegment) -> None:
        self.segments[segment.name] = segment

    def drop_segment(self, name: str) -> None:
        self.segments.pop(name, None)

    def has_segment(self, name: str) -> bool:
        return name in self.segments

    def upsert_manager(self, table: str, partition: int) -> UpsertManager:
        key = (table, partition)
        if key not in self.upsert_managers:
            self.upsert_managers[key] = UpsertManager(table, partition)
        return self.upsert_managers[key]

    def execute(
        self,
        query: PinotQuery,
        segment_names: list[str],
        upsert_partition: int | None = None,
        columnar: bool = False,
        scan_epoch: int | None = None,
    ) -> list[PartialResult]:
        """Run a subquery over the named hosted segments.

        For upsert tables the broker routes all of one partition's segments
        here and passes ``upsert_partition`` so execution honours the local
        valid-doc-id sets.  ``columnar`` requests ColumnBatch pages for
        selection queries (the vectorized scan path).  ``scan_epoch`` (the
        table epoch at routing time) enables the per-server scan-share
        cache for this subquery; None keeps every resolution fresh.
        """
        if not self.alive:
            raise SegmentError(f"server {self.name} is down")
        partials = []
        manager = (
            self.upsert_managers.get((query.table, upsert_partition))
            if upsert_partition is not None
            else None
        )
        scan_cache = self.scan_cache if scan_epoch is not None else None
        for name in segment_names:
            segment = self.segments.get(name)
            if segment is None:
                raise SegmentError(f"server {self.name} does not host {name!r}")
            valid = manager.valid_docs(name) if manager is not None else None
            partials.append(
                execute_on_segment(
                    segment,
                    query,
                    valid,
                    columnar=columnar,
                    scan_cache=scan_cache,
                    scan_epoch=scan_epoch,
                )
            )
            self.metrics.counter("subqueries").inc()
        return partials

    def hosted_disk_bytes(self) -> int:
        return sum(
            s.disk_bytes()
            for s in self.segments.values()
            if isinstance(s, ImmutableSegment)
        )
