"""Pinot query model and the per-segment execution engine.

The query shape matches what the paper says the OLAP layer must serve:
"filtering, aggregations with group by, order by in a high throughput,
low latency manner" (Section 3).  Queries here are typed objects; the SQL
text layers (Presto connector, FlinkSQL) compile down to these.

``execute_on_segment`` picks the best access path per filter — sorted
index, inverted index, range index, star-tree, or forward-index scan — and
reports the chosen plan, which the index benchmarks (C4) assert on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import QueryError
from repro.common.perf import PERF
from repro.pinot.indexes import intersect_sorted, union_sorted
from repro.pinot.segment import ImmutableSegment, MutableSegment


@dataclass(frozen=True)
class Filter:
    """One predicate.  op in {=, !=, >, >=, <, <=, IN, BETWEEN}."""

    column: str
    op: str
    value: Any = None
    values: tuple = ()  # for IN
    low: Any = None  # for BETWEEN
    high: Any = None

    def matches(self, cell: Any) -> bool:
        if PERF.enabled:
            PERF.inc("pinot.filter_evals")
        if cell is None:
            return False
        if self.op == "=":
            return cell == self.value
        if self.op == "!=":
            return cell != self.value
        if self.op == ">":
            return cell > self.value
        if self.op == ">=":
            return cell >= self.value
        if self.op == "<":
            return cell < self.value
        if self.op == "<=":
            return cell <= self.value
        if self.op == "IN":
            return cell in self.values
        if self.op == "BETWEEN":
            return self.low <= cell <= self.high
        raise QueryError(f"unknown filter op {self.op!r}")


@dataclass(frozen=True)
class Aggregation:
    """COUNT / SUM / AVG / MIN / MAX / DISTINCTCOUNT over a column."""

    func: str
    column: str | None = None

    def alias(self) -> str:
        return f"{self.func.lower()}({self.column or '*'})"


@dataclass
class PinotQuery:
    table: str
    select_columns: list[str] = field(default_factory=list)
    aggregations: list[Aggregation] = field(default_factory=list)
    filters: list[Filter] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)  # (name, desc)
    limit: int = 10

    def is_aggregation(self) -> bool:
        return bool(self.aggregations)


@dataclass
class SegmentPlan:
    """How one segment was accessed (for tests and benches)."""

    segment: str
    access_paths: list[str] = field(default_factory=list)  # per filter
    used_startree: bool = False
    docs_examined: int = 0


# -- partial aggregation states (mergeable at the broker) ---------------------


def _new_agg_state(agg: Aggregation) -> Any:
    if agg.func == "COUNT":
        return 0
    if agg.func == "SUM":
        return 0.0
    if agg.func == "AVG":
        return [0.0, 0]
    if agg.func == "MIN":
        return math.inf
    if agg.func == "MAX":
        return -math.inf
    if agg.func == "DISTINCTCOUNT":
        return set()
    raise QueryError(f"unknown aggregation {agg.func!r}")


def _update_agg_state(agg: Aggregation, state: Any, value: Any) -> Any:
    if agg.func == "COUNT":
        return state + 1
    if value is None:
        return state
    if agg.func == "SUM":
        return state + value
    if agg.func == "AVG":
        state[0] += value
        state[1] += 1
        return state
    if agg.func == "MIN":
        return min(state, value)
    if agg.func == "MAX":
        return max(state, value)
    if agg.func == "DISTINCTCOUNT":
        state.add(value)
        return state
    raise QueryError(f"unknown aggregation {agg.func!r}")


def merge_agg_states(agg: Aggregation, a: Any, b: Any) -> Any:
    if agg.func in ("COUNT", "SUM"):
        return a + b
    if agg.func == "AVG":
        return [a[0] + b[0], a[1] + b[1]]
    if agg.func == "MIN":
        return min(a, b)
    if agg.func == "MAX":
        return max(a, b)
    if agg.func == "DISTINCTCOUNT":
        return a | b
    raise QueryError(f"unknown aggregation {agg.func!r}")


def finalize_agg_state(agg: Aggregation, state: Any) -> Any:
    if agg.func == "AVG":
        return state[0] / state[1] if state[1] else math.nan
    if agg.func == "DISTINCTCOUNT":
        return len(state)
    if agg.func in ("MIN", "MAX") and state in (math.inf, -math.inf):
        return None
    return state


@dataclass
class PartialResult:
    """Per-segment result, merged by the broker."""

    # group key tuple -> [agg states]; () key for global aggregations
    groups: dict[tuple, list[Any]] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)  # selection queries
    # Columnar selection results: ColumnBatch pages instead of ``rows``
    # (the vectorized scan path; mutually exclusive with ``rows``).
    pages: list = field(default_factory=list)
    plan: SegmentPlan | None = None


# -- doc-id resolution using indexes -------------------------------------------


def _resolve_filter(
    segment: ImmutableSegment, flt: Filter, plan: SegmentPlan
) -> list[int]:
    """Doc ids matching one filter, via the best available access path."""
    sort_column = segment.index_config.sort_column
    if (
        segment.sorted_index is not None
        and flt.column == sort_column
        and flt.op in ("=", ">", ">=", "<", "<=", "BETWEEN")
    ):
        plan.access_paths.append(f"sorted:{flt.column}")
        idx = segment.sorted_index
        if flt.op == "=":
            return list(idx.equals(flt.value))
        if flt.op == "BETWEEN":
            return list(idx.between(flt.low, flt.high))
        if flt.op in (">", ">="):
            lo = flt.value
            run = idx.between(lo, float("inf"))
            docs = list(run)
            if flt.op == ">":
                docs = [d for d in docs if segment.value(flt.column, d) > lo]
            return docs
        # <, <=
        run = idx.between(float("-inf"), flt.value)
        docs = list(run)
        if flt.op == "<":
            docs = [d for d in docs if segment.value(flt.column, d) < flt.value]
        return docs
    if flt.column in segment.inverted and flt.op in ("=", "IN"):
        plan.access_paths.append(f"inverted:{flt.column}")
        inv = segment.inverted[flt.column]
        if flt.op == "=":
            return inv.lookup(flt.value)
        return inv.lookup_in(list(flt.values))
    if flt.column in segment.ranges and flt.op in (">", ">=", "<", "<=", "BETWEEN"):
        plan.access_paths.append(f"range:{flt.column}")
        rng = segment.ranges[flt.column]
        if flt.op == "BETWEEN":
            low, high = flt.low, flt.high
        elif flt.op in (">", ">="):
            low, high = flt.value, None
        else:
            low, high = None, flt.value
        certain, boundary = rng.candidates(low, high)
        refined = [
            d for d in boundary if flt.matches(segment.value(flt.column, d))
        ]
        plan.docs_examined += len(boundary)
        return union_sorted([certain, refined])
    # Fallback: forward-index scan, evaluated in code space.  The predicate
    # runs once per distinct dictionary value; each doc is then a bulk-decoded
    # code lookup instead of a random-access cell read plus a predicate call.
    plan.access_paths.append(f"scan:{flt.column}")
    fwd = segment.forward.get(flt.column)
    if fwd is None:
        raise QueryError(f"unknown column {flt.column!r} in segment {segment.name}")
    plan.docs_examined += len(fwd)
    mask = fwd.match_mask(flt.matches)
    codes = fwd.codes()
    if PERF.enabled:
        PERF.inc("pinot.code_filter_evals", len(codes))
    return [d for d, code in enumerate(codes) if mask[code]]


def _scan_shareable(segment: ImmutableSegment, flt: Filter) -> bool:
    """Whether :func:`_resolve_filter` would take a doc-examining path.

    Mirrors its dispatch order: sorted and inverted resolutions are pure
    index lookups, already cheaper than a scan-share cache hit, so only
    range-boundary refinements and forward-index scans are worth
    memoizing.
    """
    if (
        segment.sorted_index is not None
        and flt.column == segment.index_config.sort_column
        and flt.op in ("=", ">", ">=", "<", "<=", "BETWEEN")
    ):
        return False
    if flt.column in segment.inverted and flt.op in ("=", "IN"):
        return False
    return True


def _try_startree(
    segment: ImmutableSegment, query: PinotQuery, plan: SegmentPlan
) -> PartialResult | None:
    """Use the segment's star-tree when the query fits its shape."""
    tree = getattr(segment, "startree", None)
    if tree is None:
        return None
    if len(query.aggregations) != 1 or not all(
        f.op == "=" for f in query.filters
    ):
        return None
    agg = query.aggregations[0]
    if agg.func not in ("COUNT", "SUM"):
        return None
    filters = {f.column: f.value for f in query.filters}
    try:
        tree_result, stats = tree.query(
            filters=filters,
            group_by=query.group_by,
            sum_metric=agg.column if agg.func == "SUM" else None,
        )
    except QueryError:
        return None
    plan.used_startree = True
    plan.docs_examined += stats.docs_scanned
    partial = PartialResult(plan=plan)
    for key, entry in tree_result.items():
        value = entry["count"] if agg.func == "COUNT" else entry["sum"]
        partial.groups[key] = [value]
    return partial


def _column_reader(
    segment: ImmutableSegment | MutableSegment, column: str, docs_needed: int
):
    """Per-doc value accessor for one column.

    On sealed segments, when enough docs are touched to amortize it, the
    whole column is bulk-decoded once and reads become plain list indexing;
    selective queries keep random-access reads.  Unknown columns still fail
    on first read, exactly like ``segment.value`` does.
    """
    if isinstance(segment, ImmutableSegment):
        fwd = segment.forward.get(column)
        # Bulk decode costs ~1/5th of a random cell read, so it pays off
        # once a fifth of the column is needed.
        if fwd is not None and docs_needed * 5 >= len(fwd):
            return fwd.values_list().__getitem__
        if fwd is not None:
            return fwd.get
    return lambda doc_id: segment.value(column, doc_id)


def _columnar_page(
    segment: ImmutableSegment | MutableSegment,
    columns: list[str],
    matching: list[int],
):
    """Build one ColumnBatch page of the matching docs.

    Sealed segments gather forward-index *codes* over the shared sorted
    dictionary (zero-copy adoption, no value materialization); consuming
    segments — which have no packed form — encode their cells.
    """
    from repro.columnar import Bitmap, ColumnBatch, ColumnVector

    vectors = {}
    for column in columns:
        if isinstance(segment, ImmutableSegment):
            fwd = segment.forward.get(column)
            if fwd is None:
                raise QueryError(
                    f"unknown column {column!r} in segment {segment.name}"
                )
            codes = fwd.codes()
            null_code = fwd._null_code
            gathered = [codes[d] for d in matching]
            if PERF.enabled:
                PERF.inc("columnar.cells_gathered", len(gathered))
            validity = None
            if any(code == null_code for code in gathered):
                validity = Bitmap.from_bools(
                    [code != null_code for code in gathered]
                )
                gathered = [
                    0 if code == null_code else code for code in gathered
                ]
            vectors[column] = ColumnVector.from_codes(
                tuple(fwd._dictionary), gathered, validity
            )
        else:
            vectors[column] = ColumnVector.from_values(
                [segment.value(column, d) for d in matching]
            )
    return ColumnBatch(vectors, num_rows=len(matching))


def execute_on_segment(
    segment: ImmutableSegment | MutableSegment,
    query: PinotQuery,
    valid_doc_ids: set[int] | None = None,
    columnar: bool = False,
    scan_cache=None,
    scan_epoch: int | None = None,
) -> PartialResult:
    """Run a query against one segment, returning mergeable partials.

    ``valid_doc_ids`` restricts evaluation to the still-valid documents of
    an upsert table (Section 4.3.1); ``None`` means all docs are valid.
    ``columnar`` makes selection queries return :class:`ColumnBatch`
    pages (``PartialResult.pages``) instead of row dicts — same logical
    rows, no materialization.  ``scan_cache`` (a per-server
    :class:`~repro.pinot.scanshare.ScanShareCache`) with ``scan_epoch``
    (the table epoch) memoizes doc-examining filter resolutions across
    queries; memoization happens *before* ``valid_doc_ids`` filtering,
    so upsert validity is always applied fresh.
    """
    plan = SegmentPlan(segment=segment.name)
    if isinstance(segment, ImmutableSegment) and valid_doc_ids is None:
        startree_result = _try_startree(segment, query, plan)
        if startree_result is not None:
            return startree_result
    matching = _matching_docs(segment, query, plan, scan_cache, scan_epoch)
    if valid_doc_ids is not None:
        matching = [d for d in matching if d in valid_doc_ids]
    partial = PartialResult(plan=plan)
    if query.is_aggregation():
        group_readers = [
            _column_reader(segment, c, len(matching)) for c in query.group_by
        ]
        agg_readers = [
            _column_reader(segment, a.column, len(matching))
            if a.column is not None
            else None
            for a in query.aggregations
        ]
        for doc_id in matching:
            key = tuple(read(doc_id) for read in group_readers)
            states = partial.groups.get(key)
            if states is None:
                states = [_new_agg_state(a) for a in query.aggregations]
                partial.groups[key] = states
            for i, agg in enumerate(query.aggregations):
                reader = agg_readers[i]
                value = reader(doc_id) if reader is not None else None
                states[i] = _update_agg_state(agg, states[i], value)
    elif columnar:
        columns = query.select_columns or _column_names(segment)
        if matching:
            partial.pages.append(_columnar_page(segment, columns, matching))
    else:
        columns = query.select_columns or _column_names(segment)
        readers = [
            (c, _column_reader(segment, c, len(matching))) for c in columns
        ]
        for doc_id in matching:
            partial.rows.append({c: read(doc_id) for c, read in readers})
    return partial


def _column_names(segment: ImmutableSegment | MutableSegment) -> list[str]:
    if isinstance(segment, ImmutableSegment):
        return segment.column_names()
    names: set[str] = set()
    for row in segment.rows:
        names.update(row)
    for batch in segment.chunks:
        names.update(batch.columns)
    return sorted(names)


def _matching_docs(
    segment: ImmutableSegment | MutableSegment,
    query: PinotQuery,
    plan: SegmentPlan,
    scan_cache=None,
    scan_epoch: int | None = None,
) -> list[int]:
    if isinstance(segment, MutableSegment):
        # Consuming segments have no indexes; always scan.  They also
        # mutate between queries, so they are never scan-share cached.
        plan.access_paths.extend(f"scan:{f.column}" for f in query.filters)
        plan.docs_examined += segment.num_docs
        return [
            d
            for d in range(segment.num_docs)
            if all(f.matches(segment.value(f.column, d)) for f in query.filters)
        ]
    if not query.filters:
        plan.access_paths.append("full")
        plan.docs_examined += segment.num_docs
        return list(range(segment.num_docs))
    docs: list[int] | None = None
    for flt in query.filters:
        selected = None
        share_key = None
        if (
            scan_cache is not None
            and scan_epoch is not None
            and _scan_shareable(segment, flt)
        ):
            share_key = scan_cache.key_for(segment.name, scan_epoch, flt)
            if share_key is not None:
                selected = scan_cache.get(share_key, plan)
        if selected is None:
            examined_before = plan.docs_examined
            selected = _resolve_filter(segment, flt, plan)
            if share_key is not None:
                scan_cache.put(
                    share_key,
                    selected,
                    plan.access_paths[-1],
                    plan.docs_examined - examined_before,
                )
        docs = selected if docs is None else intersect_sorted(docs, selected)
        if not docs:
            return []
    return docs or []
