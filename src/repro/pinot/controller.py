"""The Pinot controller: table lifecycle, assignment, failure recovery.

Assigns Kafka partitions to owning servers (round-robin) with ``replicas``
additional copies, creates the realtime ingestion pipeline, and recovers
failed servers — from live peers under the peer-to-peer strategy of
Section 4.3.4, or from the central segment store under the original
design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import PinotError, TableNotFoundError
from repro.kafka.cluster import KafkaCluster
from repro.pinot.realtime import RealtimeIngestion
from repro.pinot.recovery import SegmentBackupStrategy, recover_segment_p2p
from repro.pinot.segment import ImmutableSegment
from repro.pinot.server import PinotServer
from repro.pinot.table import TableConfig


@dataclass
class TableState:
    config: TableConfig
    topic: str
    ingestion: RealtimeIngestion
    owners: dict[int, PinotServer]
    replicas: dict[int, list[PinotServer]]
    # Offline (batch-loaded) segments, lambda-architecture style: the
    # segment plus the servers currently hosting it.
    offline_segments: dict[str, list[PinotServer]] = field(default_factory=dict)

    @property
    def epoch(self) -> int:
        """Data version of the table; the broker cache's freshness key."""
        return self.ingestion.epoch.value


class PinotController:
    def __init__(
        self,
        servers: list[PinotServer],
        backup: SegmentBackupStrategy,
        tracer=None,
    ) -> None:
        if not servers:
            raise PinotError("need at least one Pinot server")
        self.servers = list(servers)
        self.backup = backup
        self.tracer = tracer
        self.tables: dict[str, TableState] = {}

    def create_realtime_table(
        self, config: TableConfig, kafka: KafkaCluster, topic: str
    ) -> TableState:
        if config.name in self.tables:
            raise PinotError(f"table {config.name!r} already exists")
        partitions = kafka.partition_count(topic)
        live = [s for s in self.servers if s.alive]
        if len(live) < config.replicas:
            raise PinotError(
                f"{len(live)} live servers cannot satisfy {config.replicas} replicas"
            )
        owners: dict[int, PinotServer] = {}
        replicas: dict[int, list[PinotServer]] = {}
        for partition in range(partitions):
            owner_index = partition % len(live)
            owners[partition] = live[owner_index]
            replicas[partition] = [
                live[(owner_index + r) % len(live)]
                for r in range(1, config.replicas)
            ]
        ingestion = RealtimeIngestion(
            config, kafka, topic, owners, replicas, self.backup,
            tracer=self.tracer,
        )
        state = TableState(config, topic, ingestion, owners, replicas)
        self.tables[config.name] = state
        return state

    def table(self, name: str) -> TableState:
        if name not in self.tables:
            raise TableNotFoundError(f"Pinot table {name!r} does not exist")
        return self.tables[name]

    def add_offline_segment(
        self, table: str, segment: ImmutableSegment, copies: int | None = None
    ) -> None:
        """Load a batch-built segment (the Hive->Pinot path, Section 4.3.3)."""
        state = self.table(table)
        live = [s for s in self.servers if s.alive]
        copies = copies if copies is not None else state.config.replicas
        hosts = live[: max(1, copies)]
        for server in hosts:
            server.host_segment(segment)
        state.offline_segments[segment.name] = hosts
        self.backup.request_backup(table, segment)
        state.ingestion.epoch.bump()

    def drop_segment(self, table: str, name: str) -> None:
        """Drop a sealed or offline segment (retention): unhost it, forget
        its upsert locations, and bump the epoch so cached results die."""
        state = self.table(table)
        if name in state.offline_segments:
            for server in state.offline_segments.pop(name):
                server.drop_segment(name)
            state.ingestion.epoch.bump()
            return
        for partition, pstate in state.ingestion.partitions.items():
            if name not in pstate.sealed_segments:
                continue
            pstate.sealed_segments.remove(name)
            for server in [state.owners[partition]] + state.replicas[partition]:
                server.drop_segment(name)
            if state.config.upsert_enabled:
                manager = state.owners[partition].upsert_managers.get(
                    (table, partition)
                )
                if manager is not None:
                    manager.drop_segment(name)
            state.ingestion.epoch.bump()
            return
        raise PinotError(f"table {table!r} has no segment {name!r}")

    # -- elasticity -----------------------------------------------------------

    def add_server(self, server: PinotServer) -> PinotServer:
        """Join a new server to the pool (control-plane scale-up).

        The server immediately widens the assignment pool for new tables
        and offline-segment hosting, and pre-hosts replica copies of every
        sealed segment (from peers or the backup store) so a later owner
        failure recovers from it instantly.  Partition *ownership* — and
        therefore query scatter, row order and results — is deliberately
        left untouched: rebalancing consuming partitions would drop
        in-flight rows and make results depend on scaler timing.
        """
        if server in self.servers:
            raise PinotError(f"server {server.name!r} already joined")
        if any(s.name == server.name for s in self.servers):
            raise PinotError(f"server name {server.name!r} already in use")
        self.servers.append(server)
        for state in self.tables.values():
            for partition, pstate in state.ingestion.partitions.items():
                peers = [state.owners[partition]] + state.replicas[partition]
                for seg_name in pstate.sealed_segments:
                    if server.has_segment(seg_name):
                        continue
                    segment = recover_segment_p2p(
                        seg_name, state.config.name, peers, self.backup
                    )
                    server.host_segment(segment)
        return server

    # -- failure handling -----------------------------------------------------

    def kill_server(self, name: str) -> None:
        self._server(name).alive = False

    def _server(self, name: str) -> PinotServer:
        for server in self.servers:
            if server.name == name:
                return server
        raise PinotError(f"unknown server {name!r}")

    def recover_server(self, failed_name: str, replacement: PinotServer) -> int:
        """Re-host a dead server's sealed segments on a replacement.

        Uses peer replicas when possible (P2P), falling back to the
        segment store; raises :class:`StorageError` if a segment is in
        neither place.  Returns segments recovered.  Consuming segments are
        not recovered — their rows are re-consumed from Kafka by the new
        owner (at-least-once, like real Pinot).
        """
        failed = self._server(failed_name)
        if failed.alive:
            raise PinotError(f"server {failed_name} is still alive")
        if replacement not in self.servers:
            self.servers.append(replacement)
        recovered = 0
        for state in self.tables.values():
            for partition, owner in state.owners.items():
                involved = owner is failed or failed in state.replicas[partition]
                if not involved:
                    continue
                peers = [state.owners[partition]] + state.replicas[partition]
                peers = [p for p in peers if p is not failed]
                for seg_name in state.ingestion.partitions[partition].sealed_segments:
                    if replacement.has_segment(seg_name):
                        continue
                    segment = recover_segment_p2p(
                        seg_name, state.config.name, peers, self.backup
                    )
                    replacement.host_segment(segment)
                    recovered += 1
                if owner is failed:
                    state.owners[partition] = replacement
                    self._restart_consuming(state, partition, replacement)
                else:
                    state.replicas[partition] = [
                        replacement if p is failed else p
                        for p in state.replicas[partition]
                    ]
        return recovered

    def _restart_consuming(
        self, state: TableState, partition: int, new_owner: PinotServer
    ) -> None:
        """The replacement owner re-consumes the in-flight segment's rows
        from Kafka (they were never sealed)."""
        from repro.pinot.realtime import MutableSegment, segment_name

        pstate = state.ingestion.partitions[partition]
        pstate.owner = new_owner
        # The old consuming rows vanish until re-consumed from Kafka:
        # results cached before the failure are no longer reproducible.
        state.ingestion.epoch.bump()
        pstate.consuming = MutableSegment(
            segment_name(state.config.name, partition, pstate.sequence),
            partition,
            column_names=state.config.schema.field_names(),
        )
        new_owner.host_segment(pstate.consuming)
        # Rewind to the first un-sealed offset: sealed rows stay sealed;
        # consuming rows are re-read.
        consumed_rows = sum(
            state.config.segment_rows_threshold for __ in pstate.sealed_segments
        )
        pstate.position = self.tables[state.config.name].ingestion.kafka.start_offset(
            state.topic, partition
        ) + consumed_rows
        if state.config.dedup_enabled:
            # Rebuild the replay-dedup set from sealed segments only: rows
            # replayed into the new consuming segment that already live in
            # a sealed segment are duplicates; the dead consuming segment's
            # rows are gone and must be re-ingested.
            from repro.audit.lineage import lineage_digest

            pstate.seen_digests = {
                lineage_digest(new_owner.segments[seg_name].row(doc_id))
                for seg_name in pstate.sealed_segments
                for doc_id in range(new_owner.segments[seg_name].num_docs)
            }
        if state.config.upsert_enabled:
            # Shared-nothing upsert metadata is rebuilt locally by replaying
            # the partition's sealed segments in order.
            manager = new_owner.upsert_manager(state.config.name, partition)
            ordered = []
            for seg_name in pstate.sealed_segments:
                segment = new_owner.segments[seg_name]
                rows = [segment.row(d) for d in range(segment.num_docs)]
                ordered.append((seg_name, rows))
            manager.rebuild_from_segments(ordered, state.config.primary_key)
