"""Segment backup and recovery strategies (Section 4.3.4).

Original Pinot design ("centralized"): completed realtime segments are
*synchronously* backed up to an external segment store through *one*
controller.  Consequences the paper calls out, all reproduced here: the
single-node upload bottleneck delays segment completion (data-freshness
violation), and a segment-store outage halts all ingestion.

Uber's replacement ("peer-to-peer"): segment completion is immediate;
uploads happen asynchronously; failed servers recover segments from live
replica peers, falling back to the store only when no peer has the data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from repro.common.errors import StorageError, StorageUnavailableError
from repro.pinot.segment import ImmutableSegment
from repro.storage.blobstore import BlobStore


@dataclass
class BackupHandle:
    """Tracks one segment's backup; ``done`` gates ingestion in the
    centralized design."""

    segment_name: str
    done: bool = False


class SegmentBackupStrategy(Protocol):
    blocking: bool

    def request_backup(self, table: str, segment: ImmutableSegment) -> BackupHandle: ...

    def run_step(self) -> int:
        """Perform pending uploads; returns segments uploaded."""
        ...

    def fetch(self, table: str, segment_name: str) -> ImmutableSegment: ...


def _store_key(table: str, segment_name: str) -> str:
    return f"pinot-segments/{table}/{segment_name}"


@dataclass
class CentralizedBackup:
    """Synchronous backup through the single controller."""

    store: BlobStore
    uploads_per_step: int = 1
    blocking: bool = True
    _queue: deque = field(default_factory=deque)  # (table, segment, handle)
    uploaded: int = 0

    def request_backup(self, table: str, segment: ImmutableSegment) -> BackupHandle:
        handle = BackupHandle(segment.name)
        self._queue.append((table, segment, handle))
        return handle

    def run_step(self) -> int:
        """The controller uploads up to its capacity.  A store outage means
        nothing completes — and ingestion stays blocked."""
        completed = 0
        for __ in range(min(self.uploads_per_step, len(self._queue))):
            table, segment, handle = self._queue[0]
            try:
                self.store.put(_store_key(table, segment.name), segment.to_bytes())
            except StorageUnavailableError:
                return completed
            self._queue.popleft()
            handle.done = True
            self.uploaded += 1
            completed += 1
        return completed

    def pending(self) -> int:
        return len(self._queue)

    def fetch(self, table: str, segment_name: str) -> ImmutableSegment:
        return ImmutableSegment.from_bytes(
            self.store.get(_store_key(table, segment_name))
        )


@dataclass
class PeerToPeerBackup:
    """Asynchronous upload; recovery prefers live replica peers."""

    store: BlobStore
    uploads_per_step: int = 1
    blocking: bool = False
    _queue: deque = field(default_factory=deque)
    uploaded: int = 0

    def request_backup(self, table: str, segment: ImmutableSegment) -> BackupHandle:
        # Completion is immediate: replicas already serve the segment.
        handle = BackupHandle(segment.name, done=True)
        self._queue.append((table, segment))
        return handle

    def run_step(self) -> int:
        completed = 0
        for __ in range(min(self.uploads_per_step, len(self._queue))):
            table, segment = self._queue[0]
            try:
                self.store.put(_store_key(table, segment.name), segment.to_bytes())
            except StorageUnavailableError:
                # Try again later; nothing is blocked meanwhile.
                return completed
            self._queue.popleft()
            self.uploaded += 1
            completed += 1
        return completed

    def pending(self) -> int:
        return len(self._queue)

    def fetch(self, table: str, segment_name: str) -> ImmutableSegment:
        return ImmutableSegment.from_bytes(
            self.store.get(_store_key(table, segment_name))
        )


def recover_segment_p2p(
    segment_name: str,
    table: str,
    peers: list,
    strategy: SegmentBackupStrategy,
) -> ImmutableSegment:
    """Fetch a segment for a recovering server: live peers first, then the
    archival store."""
    for peer in peers:
        if peer.alive and peer.has_segment(segment_name):
            hosted = peer.segments[segment_name]
            if isinstance(hosted, ImmutableSegment):
                return hosted
    try:
        return strategy.fetch(table, segment_name)
    except StorageError as exc:
        raise StorageError(
            f"segment {segment_name!r} unrecoverable: no live peer and "
            f"store fetch failed ({exc})"
        ) from exc
