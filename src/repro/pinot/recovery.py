"""Segment backup and recovery strategies (Section 4.3.4).

Original Pinot design ("centralized"): completed realtime segments are
*synchronously* backed up to an external segment store through *one*
controller.  Consequences the paper calls out, all reproduced here: the
single-node upload bottleneck delays segment completion (data-freshness
violation), and a segment-store outage halts all ingestion.

Uber's replacement ("peer-to-peer"): segment completion is immediate;
uploads happen asynchronously; failed servers recover segments from live
replica peers, falling back to the store only when no peer has the data.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.common.errors import (
    RetryExhaustedError,
    StorageError,
    StorageUnavailableError,
)
from repro.common.retry import RetryPolicy
from repro.pinot.segment import ImmutableSegment
from repro.storage.blobstore import BlobStore


@dataclass
class BackupHandle:
    """Tracks one segment's backup; ``done`` gates ingestion in the
    centralized design."""

    segment_name: str
    done: bool = False


class SegmentBackupStrategy(Protocol):
    blocking: bool

    def request_backup(self, table: str, segment: ImmutableSegment) -> BackupHandle: ...

    def run_step(self) -> int:
        """Perform pending uploads; returns segments uploaded."""
        ...

    def fetch(self, table: str, segment_name: str) -> ImmutableSegment: ...


def _store_key(table: str, segment_name: str) -> str:
    return f"pinot-segments/{table}/{segment_name}"


def _put_with_policy(
    store: BlobStore,
    key: str,
    data: bytes,
    policy: RetryPolicy | None,
    clock: Any,
    rng: random.Random | None,
) -> None:
    """Upload one blob, retrying transient store outages under ``policy``.

    With no policy this is a single attempt (the queue is the retry: an
    outage re-queues the segment for the next ``run_step``).  Raises
    :class:`StorageUnavailableError` when the outage outlasts the policy.
    """
    if policy is None:
        store.put(key, data)
        return
    try:
        policy.call(
            lambda: store.put(key, data),
            retry_on=(StorageUnavailableError,),
            clock=clock,
            rng=rng,
        )
    except RetryExhaustedError as exc:
        raise StorageUnavailableError(str(exc.__cause__)) from exc


@dataclass
class CentralizedBackup:
    """Synchronous backup through the single controller."""

    store: BlobStore
    uploads_per_step: int = 1
    blocking: bool = True
    retry_policy: RetryPolicy | None = None
    clock: Any = None
    rng: random.Random | None = None
    _queue: deque = field(default_factory=deque)  # (table, segment, handle)
    uploaded: int = 0

    def request_backup(self, table: str, segment: ImmutableSegment) -> BackupHandle:
        handle = BackupHandle(segment.name)
        self._queue.append((table, segment, handle))
        return handle

    def run_step(self) -> int:
        """The controller uploads up to its capacity.  A store outage means
        nothing completes — and ingestion stays blocked."""
        completed = 0
        for __ in range(min(self.uploads_per_step, len(self._queue))):
            table, segment, handle = self._queue[0]
            try:
                _put_with_policy(
                    self.store,
                    _store_key(table, segment.name),
                    segment.to_bytes(),
                    self.retry_policy,
                    self.clock,
                    self.rng,
                )
            except StorageUnavailableError:
                return completed
            self._queue.popleft()
            handle.done = True
            self.uploaded += 1
            completed += 1
        return completed

    def pending(self) -> int:
        return len(self._queue)

    def fetch(self, table: str, segment_name: str) -> ImmutableSegment:
        return ImmutableSegment.from_bytes(
            self.store.get(_store_key(table, segment_name))
        )


@dataclass
class PeerToPeerBackup:
    """Asynchronous upload; recovery prefers live replica peers."""

    store: BlobStore
    uploads_per_step: int = 1
    blocking: bool = False
    retry_policy: RetryPolicy | None = None
    clock: Any = None
    rng: random.Random | None = None
    _queue: deque = field(default_factory=deque)
    uploaded: int = 0

    def request_backup(self, table: str, segment: ImmutableSegment) -> BackupHandle:
        # Completion is immediate: replicas already serve the segment.
        handle = BackupHandle(segment.name, done=True)
        self._queue.append((table, segment))
        return handle

    def run_step(self) -> int:
        completed = 0
        for __ in range(min(self.uploads_per_step, len(self._queue))):
            table, segment = self._queue[0]
            try:
                _put_with_policy(
                    self.store,
                    _store_key(table, segment.name),
                    segment.to_bytes(),
                    self.retry_policy,
                    self.clock,
                    self.rng,
                )
            except StorageUnavailableError:
                # Try again later; nothing is blocked meanwhile.
                return completed
            self._queue.popleft()
            self.uploaded += 1
            completed += 1
        return completed

    def pending(self) -> int:
        return len(self._queue)

    def fetch(self, table: str, segment_name: str) -> ImmutableSegment:
        return ImmutableSegment.from_bytes(
            self.store.get(_store_key(table, segment_name))
        )


def recover_segment_p2p(
    segment_name: str,
    table: str,
    peers: list,
    strategy: SegmentBackupStrategy,
    retry_policy: RetryPolicy | None = None,
    clock: Any = None,
    rng: random.Random | None = None,
) -> ImmutableSegment:
    """Fetch a segment for a recovering server: live peers first, then the
    archival store.  The store fallback optionally retries transient
    outages under ``retry_policy`` (backoff charged to ``clock``) before
    declaring the segment unrecoverable."""
    for peer in peers:
        if peer.alive and peer.has_segment(segment_name):
            hosted = peer.segments[segment_name]
            if isinstance(hosted, ImmutableSegment):
                return hosted
    try:
        if retry_policy is None:
            return strategy.fetch(table, segment_name)
        return retry_policy.call(
            lambda: strategy.fetch(table, segment_name),
            retry_on=(StorageUnavailableError,),
            clock=clock,
            rng=rng,
        )
    except (StorageError, RetryExhaustedError) as exc:
        raise StorageError(
            f"segment {segment_name!r} unrecoverable: no live peer and "
            f"store fetch failed ({exc})"
        ) from exc
