"""The Pinot broker: scatter-gather-merge query execution (Section 4.3).

"The query is first decomposed into sub-plans which execute on the
distributed segments in parallel, and then the plan results are aggregated
and merged into a final one."

For upsert tables the broker applies the Section 4.3.1 routing strategy:
all segments of one input partition go to the partition's owning server in
a single subquery, so the server's local valid-doc-id sets keep the result
consistent (a key's stale versions are skipped wherever they live).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import Clock, SystemClock
from repro.common.errors import PinotError, QueryError
from repro.common.metrics import MetricsRegistry
from repro.observability.trace import SpanCollector
from repro.pinot.controller import PinotController, TableState
from repro.pinot.query import (
    PartialResult,
    PinotQuery,
    SegmentPlan,
    finalize_agg_state,
    merge_agg_states,
)
from repro.pinot.server import PinotServer


@dataclass
class QueryResult:
    rows: list[dict[str, Any]]
    plans: list[SegmentPlan] = field(default_factory=list)
    servers_queried: int = 0

    def docs_examined(self) -> int:
        return sum(p.docs_examined for p in self.plans)


class PinotBroker:
    def __init__(
        self,
        controller: PinotController,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: SpanCollector | None = None,
    ) -> None:
        self.controller = controller
        self.clock = clock or SystemClock()
        self.tracer = tracer
        self.metrics = metrics or MetricsRegistry("pinot.broker")

    def execute(self, query: PinotQuery) -> QueryResult:
        start = self.clock.now() if self.tracer is not None else 0.0
        state = self.controller.table(query.table)
        subqueries = self._route(state)
        partials: list[PartialResult] = []
        servers = 0
        for server, segment_names, upsert_partition in subqueries:
            if not segment_names:
                continue
            servers += 1
            partials.extend(
                server.execute(query, segment_names, upsert_partition)
            )
        self.metrics.counter("queries").inc()
        result = self._merge(query, partials)
        result.servers_queried = servers
        if self.tracer is not None:
            self.tracer.record_table_query(
                query.table,
                "pinot",
                start=start,
                end=self.clock.now(),
                servers=servers,
            )
        return result

    # -- routing -------------------------------------------------------------

    def _route(
        self, state: TableState
    ) -> list[tuple[PinotServer, list[str], int | None]]:
        """Subqueries as (server, segments, upsert_partition?)."""
        out: list[tuple[PinotServer, list[str], int | None]] = []
        upsert = state.config.upsert_enabled
        for partition, pstate in state.ingestion.partitions.items():
            segment_names = state.ingestion.segments_of_partition(partition)
            if upsert:
                owner = state.owners[partition]
                if not owner.alive:
                    raise PinotError(
                        f"upsert partition {partition} owner {owner.name} is down"
                    )
                out.append((owner, segment_names, partition))
                continue
            # Non-upsert: sealed segments may be served by any live replica;
            # the consuming segment only lives on the owner.
            candidates = [state.owners[partition]] + state.replicas[partition]
            per_server: dict[str, list[str]] = {}
            for name in pstate.sealed_segments:
                host = next(
                    (s for s in candidates if s.alive and s.has_segment(name)), None
                )
                if host is None:
                    raise PinotError(f"no live replica hosts segment {name!r}")
                per_server.setdefault(host.name, []).append(name)
            if state.owners[partition].alive:
                per_server.setdefault(state.owners[partition].name, []).append(
                    pstate.consuming.name
                )
            for server_name, names in per_server.items():
                server = next(s for s in self.controller.servers if s.name == server_name)
                out.append((server, names, None))
        for segment_name, hosts in state.offline_segments.items():
            host = next((s for s in hosts if s.alive), None)
            if host is None:
                raise PinotError(f"no live host for offline segment {segment_name!r}")
            out.append((host, [segment_name], None))
        return out

    # -- merging -----------------------------------------------------------------

    def _merge(self, query: PinotQuery, partials: list[PartialResult]) -> QueryResult:
        plans = [p.plan for p in partials if p.plan is not None]
        if query.is_aggregation():
            merged: dict[tuple, list[Any]] = {}
            for partial in partials:
                for key, states in partial.groups.items():
                    if key not in merged:
                        merged[key] = states
                    else:
                        merged[key] = [
                            merge_agg_states(agg, a, b)
                            for agg, a, b in zip(
                                query.aggregations, merged[key], states
                            )
                        ]
            rows = []
            for key, states in merged.items():
                row: dict[str, Any] = dict(zip(query.group_by, key))
                for agg, stateval in zip(query.aggregations, states):
                    row[agg.alias()] = finalize_agg_state(agg, stateval)
                rows.append(row)
        else:
            rows = [row for partial in partials for row in partial.rows]
        rows = self._order_and_limit(query, rows)
        return QueryResult(rows=rows, plans=plans)

    @staticmethod
    def _order_and_limit(query: PinotQuery, rows: list[dict[str, Any]]) -> list:
        for name, descending in reversed(query.order_by):
            if rows and name not in rows[0]:
                raise QueryError(f"cannot ORDER BY unknown column {name!r}")
            rows.sort(
                key=lambda r: (r.get(name) is None, r.get(name)), reverse=descending
            )
        if not query.order_by and query.group_by and query.is_aggregation():
            # Deterministic default order for group-by results.
            rows.sort(key=lambda r: tuple(str(r.get(c)) for c in query.group_by))
        return rows[: query.limit] if query.limit else rows
