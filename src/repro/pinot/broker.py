"""The Pinot broker: scatter-gather-merge query execution (Section 4.3).

"The query is first decomposed into sub-plans which execute on the
distributed segments in parallel, and then the plan results are aggregated
and merged into a final one."

Two query-side optimizations ride on the scatter (the paper's Table 1
latency/cost edge: touch as little irrelevant data as possible):

* **Cross-segment pruning** — before fanning out, segments whose commit-time
  zone maps / bloom filters prove they cannot match the query's filters are
  dropped from the scatter, and an equality predicate on the table's
  partition column restricts the scatter to the partitions the producer's
  hash partitioner could have placed the value on.  Pruning is order
  preserving: surviving segments keep exactly the subquery grouping and
  ordering an unpruned scatter would give them, so results are
  byte-identical to an unpruned run.

* **Result caching** — keyed on (normalized query, table segment epoch).
  The epoch advances on every data mutation (row ingested, segment
  sealed/loaded/dropped, upsert applied), so a hit is provably fresh and
  invalidation never depends on wall-clock TTLs (which would be
  non-deterministic under the simulated clock, and stale besides).

* **Sticky replica routing + scan sharing** (``sticky=True``, the
  default) — a replica-eligible sealed segment is routed by weighted
  rendezvous hash over its live hosts (:mod:`repro.common.hashring`),
  so the same segment's subqueries keep landing on the same server and
  that server's :class:`~repro.pinot.scanshare.ScanShareCache` —
  epoch-keyed memoized filter resolutions — actually pays.  The
  ablation (``sticky=False``) load-balances the classic way instead,
  rotating replicas per query, and disables scan sharing.  Both
  policies pick from the *full* segment list (never from pruning
  decisions) and results are merged in canonical segment order, so
  routing policy is invisible in results, byte for byte.

For upsert tables the broker applies the Section 4.3.1 routing strategy:
all *surviving* segments of one input partition still go to the partition's
owning server in a single subquery, so the server's local valid-doc-id sets
keep the result consistent (a key's stale versions are skipped wherever
they live).  Pruning a whole segment is safe there too: a segment none of
whose docs can match the filters contributes nothing whether its docs are
valid or not.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.common import hashring
from repro.common.clock import Clock, SystemClock
from repro.common.errors import PinotError, QueryError
from repro.common.metrics import MetricsRegistry
from repro.common.perf import PERF
from repro.kafka.producer import hash_partitioner
from repro.observability.trace import SpanCollector
from repro.pinot.controller import PinotController, TableState
from repro.pinot.query import (
    PartialResult,
    PinotQuery,
    SegmentPlan,
    finalize_agg_state,
    merge_agg_states,
)
from repro.pinot.segment import ImmutableSegment
from repro.pinot.server import PinotServer


@dataclass
class QueryResult:
    rows: list[dict[str, Any]]
    plans: list[SegmentPlan] = field(default_factory=list)
    servers_queried: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    cache_hit: bool = False
    # Columnar selection results: ColumnBatch pages in place of ``rows``
    # (set only for ``execute(..., columnar=True)`` selection queries
    # without ORDER BY / LIMIT; ``rows`` is then empty).
    pages: list | None = None

    def docs_examined(self) -> int:
        return sum(p.docs_examined for p in self.plans)

    def num_rows(self) -> int:
        if self.pages is not None:
            return sum(len(page) for page in self.pages)
        return len(self.rows)


_SCALAR_CELL_TYPES = (str, int, float, bool, bytes, type(None))


def _copy_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Rows crossing the cache boundary, isolated from caller mutation.

    A shallow ``dict(row)`` shares cell objects; that is only safe when
    every cell is an immutable scalar.  Rows with mutable cells (a
    list-valued selection column, say) fall back to deepcopy so a caller
    mutating a returned cell can never poison the cached entry.
    """
    return [
        dict(row)
        if all(isinstance(v, _SCALAR_CELL_TYPES) for v in row.values())
        else copy.deepcopy(row)
        for row in rows
    ]


def normalize_query(query: PinotQuery) -> tuple | None:
    """Canonical, hashable cache key for a query; None when the query
    holds unhashable literals (those queries simply bypass the cache).

    Filters are order-normalized — they are conjunctive, so any order
    denotes the same query.
    """
    try:
        key = (
            query.table,
            tuple(query.select_columns),
            tuple((a.func, a.column) for a in query.aggregations),
            tuple(
                sorted(
                    (
                        (f.column, f.op, f.value, f.values, f.low, f.high)
                        for f in query.filters
                    ),
                    key=repr,
                )
            ),
            tuple(query.group_by),
            tuple(query.order_by),
            query.limit,
        )
        hash(key)
    except TypeError:
        return None
    return key


class BrokerResultCache:
    """Per-table LRU of finished query results, validated by epoch.

    An entry is served only while the table's epoch still equals the epoch
    it was computed at; the first read after any mutation discards it.
    """

    def __init__(self, capacity_per_table: int = 128) -> None:
        self.capacity_per_table = capacity_per_table
        self._tables: dict[str, OrderedDict[tuple, tuple[int, list[dict]]]] = {}
        self.invalidations = 0

    def get(self, table: str, key: tuple, epoch: int) -> list[dict] | None:
        entries = self._tables.get(table)
        if entries is None:
            return None
        entry = entries.get(key)
        if entry is None:
            return None
        cached_epoch, rows = entry
        if cached_epoch != epoch:
            del entries[key]
            self.invalidations += 1
            return None
        entries.move_to_end(key)
        return rows

    def put(self, table: str, key: tuple, epoch: int, rows: list[dict]) -> None:
        entries = self._tables.setdefault(table, OrderedDict())
        entries[key] = (epoch, rows)
        entries.move_to_end(key)
        while len(entries) > self.capacity_per_table:
            entries.popitem(last=False)

    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._tables.values())


class PinotBroker:
    def __init__(
        self,
        controller: PinotController,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: SpanCollector | None = None,
        enable_pruning: bool = True,
        enable_cache: bool = True,
        cache_capacity_per_table: int = 128,
        sticky: bool = True,
    ) -> None:
        self.controller = controller
        self.clock = clock or SystemClock()
        self.tracer = tracer
        self.metrics = metrics or MetricsRegistry("pinot.broker")
        self.enable_pruning = enable_pruning
        self.enable_cache = enable_cache
        self.sticky = sticky
        self.cache = BrokerResultCache(cache_capacity_per_table)
        # Scatter-ablation rotation state: advances once per routed query
        # (never per segment), so replica choice is pruning-invariant.
        self._route_seq = 0

    def execute(self, query: PinotQuery, columnar: bool = False) -> QueryResult:
        start = self.clock.now() if self.tracer is not None else 0.0
        state = self.controller.table(query.table)
        epoch = state.epoch
        cache_key = normalize_query(query) if self.enable_cache else None
        if cache_key is not None and columnar:
            # Pages and rows are distinct result shapes; never serve one
            # form of a query to a caller expecting the other.
            cache_key = cache_key + ("columnar",)
        if cache_key is not None:
            cached = self.cache.get(query.table, cache_key, epoch)
            if cached is not None:
                return self._serve_cached(query, cached, start)
            self.metrics.counter("cache_misses").inc()
            if PERF.enabled:
                PERF.inc("pinot.cache_misses")
        self._route_seq += 1
        subqueries, pruned = self._route(state, query)
        scan_epoch = epoch if self.sticky else None
        partials: list[PartialResult] = []
        servers = 0
        scanned = 0
        for server, segment_names, upsert_partition in subqueries:
            if not segment_names:
                continue
            servers += 1
            scanned += len(segment_names)
            partials.extend(
                server.execute(
                    query,
                    segment_names,
                    upsert_partition,
                    columnar=columnar,
                    scan_epoch=scan_epoch,
                )
            )
        self.metrics.counter("queries").inc()
        self.metrics.counter("segments_scanned").inc(scanned)
        self.metrics.counter("segments_pruned").inc(pruned)
        if PERF.enabled:
            PERF.inc("pinot.segments_scanned", scanned)
            if pruned:
                PERF.inc("pinot.segments_pruned", pruned)
        result = self._merge(query, partials)
        result.servers_queried = servers
        result.segments_scanned = scanned
        result.segments_pruned = pruned
        if cache_key is not None:
            if result.pages is not None:
                # Pages are immutable views: cache (and later serve) them
                # zero-copy, no row isolation needed.
                self.cache.put(
                    query.table, cache_key, epoch, ("pages", tuple(result.pages))
                )
            else:
                # Store a private copy: callers may mutate the returned rows.
                self.cache.put(
                    query.table, cache_key, epoch, _copy_rows(result.rows)
                )
        if self.tracer is not None:
            self.tracer.record_table_query(
                query.table,
                "pinot",
                start=start,
                end=self.clock.now(),
                servers=servers,
                segments_scanned=scanned,
                segments_pruned=pruned,
                cache_hit=False,
            )
        return result

    def estimate_rows(self, table: str, filters=()) -> tuple[int, bool]:
        """Planning-time cardinality bound for the Presto planner.

        Routes the hypothetical scan through the same ZoneMap / partition
        pruning as a real scatter and sums ``num_docs`` of the surviving
        segments — an upper bound on matching rows that costs no data
        access.  Returns ``(docs, exact)``; ``exact`` is True only for an
        unfiltered scan, where the bound *is* the row count.  Estimation
        must never fail planning: on a degraded cluster it degrades to the
        consuming segments' counts with ``exact=False``.
        """
        state = self.controller.table(table)
        query = PinotQuery(table=table, filters=list(filters))
        try:
            subqueries, __ = self._route(state, query)
        except PinotError:
            docs = sum(
                pstate.consuming.num_docs
                for pstate in state.ingestion.partitions.values()
            )
            return docs, False
        docs = 0
        for server, segment_names, __ in subqueries:
            for name in segment_names:
                segment = server.segments.get(name)
                if segment is not None:
                    docs += segment.num_docs
        return docs, not filters

    def _serve_cached(
        self, query: PinotQuery, cached, start: float
    ) -> QueryResult:
        self.metrics.counter("queries").inc()
        self.metrics.counter("cache_hits").inc()
        if (
            isinstance(cached, tuple)
            and len(cached) == 2
            and cached[0] == "pages"
        ):
            pages = list(cached[1])
            if PERF.enabled:
                PERF.inc("pinot.cache_hits")
                PERF.inc("columnar.batch_serves", len(pages))
            result = QueryResult(rows=[], pages=pages, cache_hit=True)
        else:
            if PERF.enabled:
                PERF.inc("pinot.cache_hits")
                PERF.inc("pinot.cache_row_copies", len(cached))
            result = QueryResult(rows=_copy_rows(cached), cache_hit=True)
        if self.tracer is not None:
            self.tracer.record_table_query(
                query.table,
                "pinot",
                start=start,
                end=self.clock.now(),
                servers=0,
                segments_scanned=0,
                segments_pruned=0,
                cache_hit=True,
            )
        return result

    # -- routing -------------------------------------------------------------

    def _route(
        self, state: TableState, query: PinotQuery
    ) -> tuple[list[tuple[PinotServer, list[str], int | None]], int]:
        """Subqueries as (server, segments, upsert_partition?) plus the
        number of segments pruned from the scatter.

        Pruning preserves subquery grouping and ordering exactly: the
        server order is derived from the *full* segment list, and pruned
        segments (which contribute zero rows by proof) are only omitted
        from the per-server name lists.  A force-unpruned run therefore
        returns byte-identical rows.
        """
        out: list[tuple[PinotServer, list[str], int | None]] = []
        pruned = 0
        filters = query.filters if self.enable_pruning else []
        allowed_partitions = self._partition_candidates(state, filters)
        upsert = state.config.upsert_enabled
        # One name->server map per route call, instead of an O(servers)
        # linear scan per emitted subquery.
        by_name = {s.name: s for s in self.controller.servers}
        for partition, pstate in state.ingestion.partitions.items():
            segment_names = state.ingestion.segments_of_partition(partition)
            if (
                allowed_partitions is not None
                and partition not in allowed_partitions
            ):
                # The partition key cannot hash here: no segment of this
                # partition (consuming included) can hold a matching row.
                pruned += len(segment_names)
                continue
            if upsert:
                owner = state.owners[partition]
                if not owner.alive:
                    raise PinotError(
                        f"upsert partition {partition} owner {owner.name} is down"
                    )
                names = []
                for name in segment_names:
                    if self._prunable(owner.segments.get(name), filters):
                        pruned += 1
                        continue
                    names.append(name)
                if names:
                    out.append((owner, names, partition))
                continue
            # Non-upsert: sealed segments may be served by any live replica;
            # the consuming segment only lives on the owner.
            candidates = [state.owners[partition]] + state.replicas[partition]
            per_server: dict[str, list[str]] = {}
            for name in pstate.sealed_segments:
                hosts = [
                    s for s in candidates if s.alive and s.has_segment(name)
                ]
                if not hosts:
                    raise PinotError(f"no live replica hosts segment {name!r}")
                host = self._pick_host(query.table, name, hosts)
                # Establish the server's slot even when the segment prunes,
                # so subquery order never depends on pruning decisions.
                names = per_server.setdefault(host.name, [])
                if self._prunable(host.segments.get(name), filters):
                    pruned += 1
                    continue
                names.append(name)
            if state.owners[partition].alive:
                per_server.setdefault(state.owners[partition].name, []).append(
                    pstate.consuming.name
                )
            for server_name, names in per_server.items():
                if not names:
                    continue
                out.append((by_name[server_name], names, None))
        for segment_name, hosts in state.offline_segments.items():
            live = [s for s in hosts if s.alive]
            if not live:
                raise PinotError(f"no live host for offline segment {segment_name!r}")
            host = self._pick_host(query.table, segment_name, live)
            segment = host.segments.get(segment_name)
            if (
                allowed_partitions is not None
                and isinstance(segment, ImmutableSegment)
                and segment.partition_id is not None
                and segment.partition_id not in allowed_partitions
            ) or self._prunable(segment, filters):
                pruned += 1
                continue
            out.append((host, [segment_name], None))
        return out, pruned

    def _pick_host(
        self, table: str, segment_name: str, hosts: list[PinotServer]
    ) -> PinotServer:
        """The replica that serves this segment's subquery.

        Sticky: weighted rendezvous on (table, segment) over the live
        hosts — the same segment keeps hitting the same server while it
        stays alive, so that server's scan-share cache pays; membership
        change moves only the affected segment's keys.  Scatter
        ablation: rotate the live replica list per routed query.  Both
        depend only on the segment's identity and replica liveness —
        never on pruning decisions — so routing policy cannot perturb
        which segments are scanned.
        """
        if len(hosts) == 1:
            return hosts[0]
        if self.sticky:
            name = hashring.pick((table, segment_name), [s.name for s in hosts])
            return next(s for s in hosts if s.name == name)
        return hosts[self._route_seq % len(hosts)]

    @staticmethod
    def _prunable(segment, filters) -> bool:
        """Sealed segments prune on zone maps / blooms; consuming
        (mutable) segments have no commit-time metadata and always scan."""
        return (
            bool(filters)
            and isinstance(segment, ImmutableSegment)
            and not segment.may_match(filters)
        )

    def _partition_candidates(
        self, state: TableState, filters
    ) -> set[int] | None:
        """Partitions an equality/IN predicate on the partition column can
        reach, via the same hash the producer partitioned the stream with.
        None means "no partition constraint".

        Soundness rests on ``hash_partitioner`` being equality-canonical
        (it hashes ``serde.encode_key``): the executor matches rows with
        Python ``==``, so a literal ``5.0`` must map to the partition the
        producer chose for an equal key of any type (``5``, ``True``).
        Hashing the raw literal's type-sensitive encoding here would
        silently prune the partition holding the matching rows."""
        column = state.config.partition_column
        if column is None or not filters:
            return None
        num_partitions = len(state.ingestion.partitions)
        allowed: set[int] | None = None
        for flt in filters:
            if flt.column != column:
                continue
            if flt.op == "=":
                literals = (flt.value,)
            elif flt.op == "IN":
                literals = flt.values
            else:
                continue
            try:
                reachable = {
                    hash_partitioner(v, num_partitions)
                    for v in literals
                    if v is not None
                }
            except Exception:
                continue  # unencodable literal: no partition constraint
            allowed = reachable if allowed is None else (allowed & reachable)
        return allowed

    # -- merging -----------------------------------------------------------------

    def _merge(self, query: PinotQuery, partials: list[PartialResult]) -> QueryResult:
        # Canonical merge order: fold partials in segment-name order, not
        # scatter order.  Float aggregation is order-sensitive bit for
        # bit, and scatter order depends on routing policy; segment names
        # do not, so sticky on/off stays byte-identical.
        partials = sorted(
            partials, key=lambda p: p.plan.segment if p.plan is not None else ""
        )
        plans = [p.plan for p in partials if p.plan is not None]
        if query.is_aggregation():
            merged: dict[tuple, list[Any]] = {}
            for partial in partials:
                for key, states in partial.groups.items():
                    if key not in merged:
                        merged[key] = states
                    else:
                        merged[key] = [
                            merge_agg_states(agg, a, b)
                            for agg, a, b in zip(
                                query.aggregations, merged[key], states
                            )
                        ]
            rows = []
            for key, states in merged.items():
                row: dict[str, Any] = dict(zip(query.group_by, key))
                for agg, stateval in zip(query.aggregations, states):
                    row[agg.alias()] = finalize_agg_state(agg, stateval)
                rows.append(row)
        else:
            rows = [row for partial in partials for row in partial.rows]
            pages = [page for partial in partials for page in partial.pages]
            if pages:
                if rows or query.order_by or query.limit:
                    # Ordering/limits (and mixed partial shapes) need rows:
                    # materialize at this boundary and fall through.
                    from repro.columnar import pages_to_rows

                    rows.extend(pages_to_rows(pages))
                else:
                    return QueryResult(rows=[], pages=pages, plans=plans)
        rows = self._order_and_limit(query, rows)
        return QueryResult(rows=rows, plans=plans)

    @staticmethod
    def _order_and_limit(query: PinotQuery, rows: list[dict[str, Any]]) -> list:
        for name, descending in reversed(query.order_by):
            if rows and name not in rows[0]:
                raise QueryError(f"cannot ORDER BY unknown column {name!r}")
            rows.sort(
                key=lambda r: (r.get(name) is None, r.get(name)), reverse=descending
            )
        if not query.order_by and query.group_by and query.is_aggregation():
            # Deterministic default order for group-by results.
            rows.sort(key=lambda r: tuple(str(r.get(c)) for c in query.group_by))
        return rows[: query.limit] if query.limit else rows
