"""Columnar segments: Pinot's storage unit (Section 4.3).

"Data is chunked by time boundary and grouped into segments."  An
:class:`ImmutableSegment` stores each column as a dictionary-encoded,
bit-packed forward index ("optimized data structures such as bit
compressed forward indices, for lowering the data footprint" — the Druid
comparison) plus the per-column indexes configured for the table.

A :class:`MutableSegment` is the realtime, row-appendable form; sealing
sorts by the configured sort column, builds the packed forward indexes and
the query indexes, and yields the immutable form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.common import serde
from repro.common.errors import SegmentError
from repro.common.memory import deep_sizeof
from repro.common.perf import PERF
from repro.pinot.indexes import BloomFilter, InvertedIndex, RangeIndex, SortedIndex


@dataclass(frozen=True)
class IndexConfig:
    """Which indexes each column of a table carries."""

    inverted: frozenset[str] = frozenset()
    range_indexed: frozenset[str] = frozenset()
    sort_column: str | None = None
    # Columns carrying a segment-level bloom filter (equality pruning on
    # high-cardinality columns; zone maps are built for every column).
    bloom_filtered: frozenset[str] = frozenset()


def _value_class(value: Any) -> str:
    """Comparability class: values of one class mutually order."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    return type(value).__name__


@dataclass(frozen=True)
class ZoneMap:
    """Per-column min/max summary for cross-segment pruning.

    ``comparable`` is False for mixed-type columns, whose min/max is not
    meaningful; ``all_null`` columns match no predicate at all (filters
    never match NULL), so the segment is always prunable on them.
    """

    min_value: Any = None
    max_value: Any = None
    has_null: bool = False
    all_null: bool = False
    comparable: bool = False

    def may_match(self, op: str, value: Any = None,
                  values: tuple = (), low: Any = None, high: Any = None) -> bool:
        """Could *any* doc in the zone satisfy the predicate?  False is a
        proof of absence; any doubt (types, unknown op) returns True."""
        if self.all_null:
            return False
        if not self.comparable:
            return True
        lo, hi = self.min_value, self.max_value
        try:
            if op == "=":
                return lo <= value <= hi
            if op == "!=":
                # Every non-null doc equals the zone's single value: no
                # doc can differ (NULL docs never match != either).
                return not (lo == hi == value)
            if op == ">":
                return hi > value
            if op == ">=":
                return hi >= value
            if op == "<":
                return lo < value
            if op == "<=":
                return lo <= value
            if op == "BETWEEN":
                return not (high < lo or low > hi)
            if op == "IN":
                return any(lo <= v <= hi for v in values)
        except TypeError:
            return True  # incomparable literal: cannot rule the zone out
        return True  # unknown op: never prune

    def to_payload(self) -> list[Any]:
        return [self.min_value, self.max_value, self.has_null,
                self.all_null, self.comparable]

    @classmethod
    def from_payload(cls, payload: list[Any]) -> "ZoneMap":
        return cls(*payload)


class BitPackedArray:
    """Fixed-width bit packing of small non-negative ints into a bytearray.

    This is the "bit compressed forward index": with a dictionary of
    cardinality C, each value costs ceil(log2(C)) bits instead of a Python
    object reference.
    """

    def __init__(self, values: Iterable[int], bit_width: int) -> None:
        if not 1 <= bit_width <= 32:
            raise SegmentError(f"bit width must be in [1, 32], got {bit_width}")
        self.bit_width = bit_width
        values = list(values)
        self.length = len(values)
        self._data = bytearray((self.length * bit_width + 7) // 8)
        for index, value in enumerate(values):
            if value < 0 or value >= (1 << bit_width):
                raise SegmentError(
                    f"value {value} does not fit in {bit_width} bits"
                )
            self._set(index, value)

    def _set(self, index: int, value: int) -> None:
        bit_pos = index * self.bit_width
        for offset in range(self.bit_width):
            if value & (1 << offset):
                pos = bit_pos + offset
                self._data[pos >> 3] |= 1 << (pos & 7)

    def get(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(index)
        bit_pos = index * self.bit_width
        byte_pos = bit_pos >> 3
        # A 5-byte little-endian window always covers bit offset (<=7) plus
        # up to 32 value bits.
        chunk = int.from_bytes(self._data[byte_pos : byte_pos + 5], "little")
        return (chunk >> (bit_pos & 7)) & ((1 << self.bit_width) - 1)

    def decode_all(self) -> list[int]:
        """Decode every value in one chunked pass.

        One big-int conversion covers a run of values, so per-value work is
        a shift + mask instead of a bounds check and a fresh 5-byte window.
        Chunks stay small (~512 bytes) to keep the big-int shifts cheap.
        """
        width = self.bit_width
        mask = (1 << width) - 1
        out: list[int] = []
        values_per_chunk = max(1, 4096 // width)
        for start in range(0, self.length, values_per_chunk):
            stop = min(start + values_per_chunk, self.length)
            bit_lo = start * width
            chunk = int.from_bytes(
                self._data[bit_lo >> 3 : (stop * width + 7) >> 3], "little"
            )
            chunk >>= bit_lo & 7
            for __ in range(stop - start):
                out.append(chunk & mask)
                chunk >>= width
        return out

    def __len__(self) -> int:
        return self.length

    def packed_bytes(self) -> int:
        return len(self._data)


class ForwardIndex:
    """Dictionary-encoded column: sorted dictionary + bit-packed codes.

    ``values()`` materializes Python objects lazily per doc id; scans use
    :meth:`get` in a tight loop.
    """

    def __init__(self, raw_values: list[Any]) -> None:
        dictionary = sorted({v for v in raw_values if v is not None}, key=_sort_key)
        self._dictionary: list[Any] = list(dictionary)
        index = {v: i for i, v in enumerate(self._dictionary)}
        null_code = len(self._dictionary)  # one extra code for NULL
        cardinality = null_code + 1
        bit_width = max(1, (cardinality - 1).bit_length())
        codes = [null_code if v is None else index[v] for v in raw_values]
        self._codes = BitPackedArray(codes, bit_width)
        self._null_code = null_code

    def get(self, doc_id: int) -> Any:
        if PERF.enabled:
            PERF.inc("pinot.cell_reads")
        code = self._codes.get(doc_id)
        if code == self._null_code:
            return None
        return self._dictionary[code]

    def codes(self) -> list[int]:
        """Bulk-decode the packed code array (the columnar fast path)."""
        out = self._codes.decode_all()
        if PERF.enabled:
            PERF.inc("pinot.cells_decoded", len(out))
        return out

    def values_list(self) -> list[Any]:
        """The whole column as a Python list via one bulk decode.

        Nothing is cached — the decoded list is the caller's — so the
        segment's measured memory footprint stays that of the packed form.
        """
        table = self._dictionary + [None]  # the null code decodes to None
        return [table[code] for code in self.codes()]

    def match_mask(self, predicate) -> list[bool]:
        """Evaluate a predicate once per distinct value (plus NULL),
        yielding a code -> matches table for code-space filtering."""
        mask = [predicate(v) for v in self._dictionary]
        mask.append(False)  # NULL never matches a filter
        return mask

    def materialize(self) -> list[Any]:
        return self.values_list()

    def cardinality(self) -> int:
        return len(self._dictionary)

    def __len__(self) -> int:
        return len(self._codes)

    def disk_bytes(self) -> int:
        """Serialized size: dictionary + packed codes."""
        return serde.encoded_size(self._dictionary) + self._codes.packed_bytes()


def _sort_key(value: Any):
    # Mixed-type columns sort by (type name, repr) to stay deterministic.
    if isinstance(value, bool):
        return ("bool", str(value))
    if isinstance(value, (int, float)):
        return ("num", value)
    return (type(value).__name__, str(value))


class ImmutableSegment:
    """Sealed columnar segment with forward + query indexes."""

    def __init__(
        self,
        name: str,
        columns: dict[str, list[Any]],
        index_config: IndexConfig | None = None,
        time_column: str | None = None,
        partition_id: int | None = None,
    ) -> None:
        if not columns:
            raise SegmentError("segment needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise SegmentError("column lengths differ")
        self.name = name
        self.num_docs = lengths.pop()
        self.index_config = index_config or IndexConfig()
        self.time_column = time_column
        self.partition_id = partition_id
        raw = columns
        # Sort rows by the sort column so the SortedIndex applies.
        sort_column = self.index_config.sort_column
        if sort_column is not None and sort_column in raw and self.num_docs:
            order = sorted(
                range(self.num_docs), key=lambda i: _sort_key(raw[sort_column][i])
            )
            raw = {name: [vals[i] for i in order] for name, vals in raw.items()}
        self.forward: dict[str, ForwardIndex] = {
            name: ForwardIndex(vals) for name, vals in raw.items()
        }
        self.inverted: dict[str, InvertedIndex] = {
            name: InvertedIndex(raw[name])
            for name in self.index_config.inverted
            if name in raw
        }
        self.ranges: dict[str, RangeIndex] = {
            name: RangeIndex(raw[name])
            for name in self.index_config.range_indexed
            if name in raw
        }
        self.sorted_index: SortedIndex | None = (
            SortedIndex(raw[sort_column])
            if sort_column is not None and sort_column in raw
            else None
        )
        if time_column is not None and time_column in raw and self.num_docs:
            times = [t for t in raw[time_column] if t is not None]
            self.min_time = min(times) if times else None
            self.max_time = max(times) if times else None
        else:
            self.min_time = self.max_time = None
        # Commit-time pruning metadata: a zone map per column (cheap — the
        # forward dictionary is already sorted) plus blooms where configured.
        self.zone_maps: dict[str, ZoneMap] = {
            name: self._build_zone_map(name, raw[name]) for name in raw
        }
        self.blooms: dict[str, BloomFilter] = {
            name: BloomFilter.build(self.forward[name]._dictionary)
            for name in self.index_config.bloom_filtered
            if name in raw
        }

    def _build_zone_map(self, name: str, raw_values: list[Any]) -> ZoneMap:
        dictionary = self.forward[name]._dictionary
        has_null = any(v is None for v in raw_values)
        if not dictionary:
            return ZoneMap(has_null=has_null, all_null=True)
        classes = {_value_class(v) for v in dictionary}
        if len(classes) != 1:
            return ZoneMap(has_null=has_null)  # mixed types: not comparable
        # The dictionary is sorted (numerics by value), so min/max are free.
        return ZoneMap(
            min_value=dictionary[0],
            max_value=dictionary[-1],
            has_null=has_null,
            comparable=True,
        )

    # -- cross-segment pruning (broker-side) --------------------------------

    def may_match(self, filters) -> bool:
        """Could this segment hold any doc satisfying *all* filters?

        Consulted by the broker before fan-out; a False verdict proves the
        segment contributes nothing to the query, so skipping it cannot
        change results.  Unknown columns are left to the executor (which
        raises a proper error on scan).
        """
        counting = PERF.enabled
        for flt in filters:
            zone = self.zone_maps.get(flt.column)
            if zone is not None:
                if counting:
                    PERF.inc("pinot.zonemap_checks")
                if not zone.may_match(
                    flt.op, flt.value, flt.values, flt.low, flt.high
                ):
                    return False
            bloom = self.blooms.get(flt.column)
            if bloom is not None and flt.op in ("=", "IN"):
                if counting:
                    PERF.inc("pinot.bloom_checks")
                candidates = flt.values if flt.op == "IN" else (flt.value,)
                if not any(bloom.might_contain(v) for v in candidates):
                    return False
        return True

    def column_names(self) -> list[str]:
        return list(self.forward)

    def value(self, column: str, doc_id: int) -> Any:
        fwd = self.forward.get(column)
        if fwd is None:
            raise SegmentError(f"segment {self.name} has no column {column!r}")
        return fwd.get(doc_id)

    def row(self, doc_id: int) -> dict[str, Any]:
        if PERF.enabled:
            PERF.inc("pinot.row_allocs")
        return {name: fwd.get(doc_id) for name, fwd in self.forward.items()}

    # -- size accounting (C3 footprint comparisons) -------------------------

    def disk_bytes(self) -> int:
        total = sum(fwd.disk_bytes() for fwd in self.forward.values())
        # Inverted postings and range buckets also live on disk.
        for inv in self.inverted.values():
            total += inv.posting_entries() * 4  # 4-byte doc ids
        for rng in self.ranges.values():
            total += sum(len(b) for b in rng._buckets) * 4
        for bloom in self.blooms.values():
            total += bloom.disk_bytes()
        return total

    def memory_bytes(self) -> int:
        return deep_sizeof(
            {"forward": self.forward, "inverted": self.inverted, "ranges": self.ranges}
        )

    def to_bytes(self) -> bytes:
        """Serialize for archival (segment store / peer transfer).

        Pruning metadata (zone maps, blooms) travels with the segment so a
        recovered or peer-transferred copy prunes identically without a
        rebuild.
        """
        payload = {
            "name": self.name,
            "time_column": self.time_column,
            "partition_id": self.partition_id,
            "sort_column": self.index_config.sort_column,
            "inverted": sorted(self.index_config.inverted),
            "range_indexed": sorted(self.index_config.range_indexed),
            "bloom_filtered": sorted(self.index_config.bloom_filtered),
            "columns": {
                name: fwd.materialize() for name, fwd in self.forward.items()
            },
            "zone_maps": {
                name: zone.to_payload() for name, zone in self.zone_maps.items()
            },
            "blooms": {
                name: bloom.to_payload() for name, bloom in self.blooms.items()
            },
        }
        return serde.encode(payload)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ImmutableSegment":
        payload = serde.decode(data)
        segment = cls(
            name=payload["name"],
            columns=payload["columns"],
            index_config=IndexConfig(
                inverted=frozenset(payload["inverted"]),
                range_indexed=frozenset(payload["range_indexed"]),
                sort_column=payload["sort_column"],
                bloom_filtered=frozenset(payload.get("bloom_filtered", ())),
            ),
            time_column=payload["time_column"],
            partition_id=payload["partition_id"],
        )
        # Adopt the persisted pruning metadata (identical to the rebuild by
        # construction; adopting it exercises the serialized form).
        if "zone_maps" in payload:
            segment.zone_maps = {
                name: ZoneMap.from_payload(p)
                for name, p in payload["zone_maps"].items()
            }
        if "blooms" in payload:
            segment.blooms = {
                name: BloomFilter.from_payload(p)
                for name, p in payload["blooms"].items()
            }
        return segment


@dataclass
class MutableSegment:
    """Realtime segment (the "consuming" segment).

    Accepts rows one at a time (:meth:`append`) or whole column batches
    (:meth:`append_chunk`, the vectorized ingest path).  Doc ids follow
    append order across both forms; appending a row while chunks are
    pending materializes the chunks first so ordering stays exact.
    """

    name: str
    partition_id: int | None = None
    rows: list[dict[str, Any]] = field(default_factory=list)
    # When set (realtime tables pass the schema's columns), references to
    # unknown columns fail loudly instead of reading as NULL.
    column_names: list[str] | None = None
    # Column batches appended after ``rows`` (doc order: rows, then chunks).
    chunks: list[Any] = field(default_factory=list)
    _chunk_docs: int = field(default=0, init=False, repr=False)

    def append(self, row: dict[str, Any]) -> int:
        """Append a row; returns its doc id within this segment."""
        if PERF.enabled:
            PERF.inc("pinot.rows_ingested")
        if self.chunks:
            self._materialize_chunks()
        self.rows.append(row)
        return len(self.rows) - 1

    def append_chunk(self, batch: Any) -> int:
        """Append a :class:`~repro.columnar.ColumnBatch`; returns the doc id
        of its first row.  Cells stay columnar until seal or access."""
        if PERF.enabled:
            PERF.inc("pinot.chunk_rows_ingested", len(batch))
        base = self.num_docs
        self.chunks.append(batch)
        self._chunk_docs += len(batch)
        return base

    def _materialize_chunks(self) -> None:
        """Degrade pending chunks to rows (mixed row/chunk appends)."""
        for batch in self.chunks:
            self.rows.extend(batch.to_rows())
        self.chunks.clear()
        self._chunk_docs = 0

    @property
    def num_docs(self) -> int:
        return len(self.rows) + self._chunk_docs

    def _chunk_cell(self, column: str | None, doc_id: int) -> Any:
        """Cell (or row dict, when ``column`` is None) from the chunk tail."""
        i = doc_id - len(self.rows)
        for batch in self.chunks:
            if i < len(batch):
                if column is None:
                    return batch.row(i)
                vector = batch.columns.get(column)
                return vector.get(i) if vector is not None else None
            i -= len(batch)
        raise IndexError(doc_id)

    def value(self, column: str, doc_id: int) -> Any:
        if self.column_names is not None and column not in self.column_names:
            raise SegmentError(
                f"segment {self.name} has no column {column!r}"
            )
        if doc_id < len(self.rows):
            return self.rows[doc_id].get(column)
        return self._chunk_cell(column, doc_id)

    def row(self, doc_id: int) -> dict[str, Any]:
        if doc_id < len(self.rows):
            return self.rows[doc_id]
        return self._chunk_cell(None, doc_id)

    def seal(
        self,
        index_config: IndexConfig | None = None,
        time_column: str | None = None,
        column_names: list[str] | None = None,
    ) -> ImmutableSegment:
        """Convert to the sealed columnar form with all indexes built."""
        if not self.num_docs:
            raise SegmentError(f"cannot seal empty segment {self.name}")
        names = column_names or sorted(
            {k for row in self.rows for k in row}
            | {name for batch in self.chunks for name in batch.columns}
        )
        columns = {name: [row.get(name) for row in self.rows] for name in names}
        for batch in self.chunks:
            for name in names:
                vector = batch.columns.get(name)
                if vector is None:
                    columns[name].extend([None] * len(batch))
                else:
                    columns[name].extend(vector.values_list())
        return ImmutableSegment(
            self.name,
            columns,
            index_config=index_config,
            time_column=time_column,
            partition_id=self.partition_id,
        )
