"""Realtime ingestion: Kafka partitions -> consuming segments -> sealed
segments (Section 4.3).

Each Kafka partition is consumed into a mutable "consuming" segment on the
partition's owning server.  When the segment reaches the configured row
threshold it is sealed: columnar forward indexes, the configured query
indexes and (if configured) the star-tree are built; replicas receive a
copy; and the backup strategy is invoked — synchronously blocking the
partition under the centralized design, asynchronously under peer-to-peer.

For upsert tables (Section 4.3.1) the input stream must be partitioned by
the primary key (our Kafka producer's hash partitioner guarantees this
when records are keyed by it), and every ingested row updates the owning
server's per-partition UpsertManager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audit.lineage import lineage_digest
from repro.columnar import ColumnChunk
from repro.common.errors import BrokerUnavailableError, PinotError, SchemaError
from repro.common.metrics import MetricsRegistry
from repro.kafka.cluster import KafkaCluster
from repro.observability.trace import SpanCollector, TraceContext
from repro.pinot.recovery import BackupHandle, SegmentBackupStrategy
from repro.pinot.segment import MutableSegment
from repro.pinot.server import PinotServer
from repro.pinot.startree import StarTree
from repro.pinot.table import TableConfig


def segment_name(table: str, partition: int, sequence: int) -> str:
    return f"{table}__{partition}__{sequence}"


class TableEpoch:
    """Monotonic per-table data-version counter.

    Bumped on every mutation that can change query results: a row landing
    in a consuming segment (which also covers upserts — they ride in on
    rows), a segment sealing, an offline segment load, a segment drop, a
    consuming segment being restarted on recovery.  The broker's result
    cache is keyed on it, so cached results are invalidated exactly when
    freshness demands — never by wall-clock TTL, which would be both wrong
    (stale until expiry) and non-deterministic under the simulated clock.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class _PartitionState:
    partition: int
    owner: PinotServer
    replicas: list[PinotServer]
    position: int  # next Kafka offset to consume
    consuming: MutableSegment
    sequence: int = 0
    sealed_segments: list[str] = field(default_factory=list)
    pending_backup: BackupHandle | None = None
    # Content digests already ingested into this partition (dedup tables
    # only).  On a consuming-segment restart this is rebuilt from *sealed*
    # segments alone: the dead consuming segment's rows were lost, so their
    # replay from Kafka is a legitimate re-ingest, not a duplicate.
    seen_digests: set[str] = field(default_factory=set)

    def blocked(self) -> bool:
        return self.pending_backup is not None and not self.pending_backup.done


class RealtimeIngestion:
    """Drives one table's ingestion from one Kafka topic."""

    def __init__(
        self,
        config: TableConfig,
        kafka: KafkaCluster,
        topic: str,
        owners: dict[int, PinotServer],
        replicas: dict[int, list[PinotServer]],
        backup: SegmentBackupStrategy,
        metrics: MetricsRegistry | None = None,
        tracer: SpanCollector | None = None,
    ) -> None:
        self.config = config
        self.kafka = kafka
        self.topic = topic
        self.backup = backup
        self.tracer = tracer
        self.metrics = metrics or MetricsRegistry(f"pinot.ingest.{config.name}")
        self.epoch = TableEpoch()
        self.partitions: dict[int, _PartitionState] = {}
        for partition in range(kafka.partition_count(topic)):
            if partition not in owners:
                raise PinotError(f"partition {partition} has no owning server")
            state = _PartitionState(
                partition=partition,
                owner=owners[partition],
                replicas=replicas.get(partition, []),
                position=kafka.start_offset(topic, partition),
                consuming=MutableSegment(
                    segment_name(config.name, partition, 0),
                    partition,
                    column_names=config.schema.field_names(),
                ),
            )
            state.owner.host_segment(state.consuming)
            self.partitions[partition] = state

    # -- consumption ----------------------------------------------------------

    def run_step(self, max_records_per_partition: int = 500) -> int:
        """Consume one round across partitions; returns rows ingested.

        A partition whose sealed segment still awaits synchronous backup
        (centralized design) is skipped — that is the freshness violation
        of Section 4.3.4.
        """
        ingested = 0
        for state in self.partitions.values():
            if state.blocked():
                self.metrics.counter("blocked_polls").inc()
                continue
            if state.pending_backup is not None and state.pending_backup.done:
                state.pending_backup = None
            try:
                entries = self.kafka.fetch(
                    self.topic, state.partition, state.position,
                    max_records_per_partition,
                )
            except BrokerUnavailableError:
                # Every replica of the source partition is down.  Hold
                # position (no data is skipped) and resume next round once
                # a broker restart restores a leader.
                self.metrics.counter("unavailable_polls").inc()
                continue
            for entry in entries:
                if isinstance(entry.record.value, ColumnChunk):
                    # Vectorized path: the whole chunk is one ingest unit.
                    ingested += self._ingest_chunk(state, entry)
                    state.position = entry.offset + 1
                    if state.blocked():
                        break
                    continue
                row = dict(entry.record.value)
                self.config.schema.validate(row)
                if self.config.dedup_enabled:
                    digest = lineage_digest(row)
                    if digest in state.seen_digests:
                        # Upstream replay (at-least-once producer); the row
                        # is already queryable — consume past it.
                        state.position = entry.offset + 1
                        self.metrics.counter("rows_deduped").inc()
                        continue
                    state.seen_digests.add(digest)
                doc_id = state.consuming.append(row)
                state.position = entry.offset + 1
                ingested += 1
                # The row is queryable from this instant: cached results
                # for this table are stale now.
                self.epoch.bump()
                if self.tracer is not None:
                    ctx = TraceContext.from_record(entry.record)
                    if ctx is not None:
                        # Ingest = log dwell + append; the row is queryable
                        # in the consuming segment from this instant (the
                        # paper's freshness boundary).  Timestamps come from
                        # the shared Kafka-cluster clock so the span can
                        # never end before the produce span did.
                        self.tracer.record_span(
                            ctx.trace_id,
                            "ingest",
                            "pinot",
                            start=entry.append_time,
                            end=self.kafka.clock.now(),
                            table=self.config.name,
                            partition=state.partition,
                            segment=state.consuming.name,
                        )
                if self.config.upsert_enabled:
                    manager = state.owner.upsert_manager(
                        self.config.name, state.partition
                    )
                    manager.apply(
                        row[self.config.primary_key],
                        state.consuming.name,
                        doc_id,
                    )
                if state.consuming.num_docs >= self.config.segment_rows_threshold:
                    self._seal(state)
                    if state.blocked():
                        break
        self.metrics.counter("rows_ingested").inc(ingested)
        return ingested

    def _ingest_chunk(self, state: _PartitionState, entry) -> int:
        """Ingest one columnar chunk; returns the rows it added.

        The fast path validates once per column (per distinct value for
        dictionary-coded columns) and appends zero-copy batch slices to
        the consuming segment, sealing exactly on the same row-count
        boundaries as the row path.  Dedup and upsert tables — and traced
        pipelines — need per-row semantics (content digests, primary-key
        updates, spans), so they degrade to materialized rows.

        A chunk is one Kafka record and therefore one atomic ingest unit:
        if a seal mid-chunk blocks the partition (centralized backup), the
        remaining rows still land before the block takes effect at the
        next fetch.
        """
        chunk: ColumnChunk = entry.record.value
        config = self.config
        if config.dedup_enabled or config.upsert_enabled:
            ingested = self._ingest_chunk_rows(state, chunk)
        else:
            batch = chunk.batch
            self._validate_chunk_columns(batch)
            ingested = 0
            position = 0
            total = len(chunk)
            while position < total:
                room = config.segment_rows_threshold - state.consuming.num_docs
                take = min(room, total - position)
                piece = (
                    batch
                    if position == 0 and take == total
                    else batch.slice(position, take)
                )
                state.consuming.append_chunk(piece)
                position += take
                ingested += take
                self.epoch.bump(take)
                if state.consuming.num_docs >= config.segment_rows_threshold:
                    self._seal(state)
        if self.tracer is not None and ingested:
            ctx = TraceContext.from_record(entry.record)
            if ctx is not None:
                # One ingest span per chunk (the record granularity).
                self.tracer.record_span(
                    ctx.trace_id,
                    "ingest",
                    "pinot",
                    start=entry.append_time,
                    end=self.kafka.clock.now(),
                    table=config.name,
                    partition=state.partition,
                    segment=state.consuming.name,
                    rows=ingested,
                )
        return ingested

    def _ingest_chunk_rows(self, state: _PartitionState, chunk: ColumnChunk) -> int:
        """Row-at-a-time fallback for chunks on dedup/upsert tables."""
        config = self.config
        ingested = 0
        for row in chunk.batch.to_rows():
            config.schema.validate(row)
            if config.dedup_enabled:
                digest = lineage_digest(row)
                if digest in state.seen_digests:
                    self.metrics.counter("rows_deduped").inc()
                    continue
                state.seen_digests.add(digest)
            doc_id = state.consuming.append(row)
            ingested += 1
            self.epoch.bump()
            if config.upsert_enabled:
                manager = state.owner.upsert_manager(
                    config.name, state.partition
                )
                manager.apply(
                    row[config.primary_key], state.consuming.name, doc_id
                )
            if state.consuming.num_docs >= config.segment_rows_threshold:
                self._seal(state)
        return ingested

    def _validate_chunk_columns(self, batch) -> None:
        """Schema-validate a column batch without materializing rows.

        Mirrors :meth:`Schema.validate` semantics column-wise: nullability
        from the validity bitmap, type checks once per distinct value for
        dictionary-coded columns (a shared dictionary may carry values
        from sibling partitions' rows — same column, same checks).
        """
        schema = self.config.schema
        for f in schema.fields:
            vector = batch.columns.get(f.name)
            missing = vector is None or vector.null_count() > 0
            if missing and not f.nullable and f.default is None:
                raise SchemaError(
                    f"row missing non-nullable field {f.name!r} "
                    f"(schema {schema.name} v{schema.version})"
                )
            if vector is None:
                continue
            if vector.is_dict:
                candidates = vector.dictionary
            else:
                candidates = [
                    v for v in vector.values_list() if v is not None
                ]
            for value in candidates:
                if not f.type.accepts(value):
                    raise SchemaError(
                        f"field {f.name!r} expects {f.type.value}, got "
                        f"{type(value).__name__} (schema {schema.name})"
                    )

    def _seal(self, state: _PartitionState) -> None:
        sealed = state.consuming.seal(
            index_config=self.config.index_config,
            time_column=self.config.time_column,
            column_names=self.config.schema.field_names(),
        )
        if self.config.startree_config is not None:
            # Feed the tree column arrays straight off the forward indexes
            # (one bulk decode per column) instead of materializing a row
            # dict per doc.
            tree_config = self.config.startree_config
            columns = {
                name: sealed.forward[name].values_list()
                for name in dict.fromkeys(
                    list(tree_config.dimensions) + list(tree_config.metrics)
                )
                if name in sealed.forward
            }
            sealed.startree = StarTree.from_columns(
                columns, sealed.num_docs, tree_config
            )
        # Owner replaces its consuming copy with the sealed one; replicas
        # receive copies so they can serve (and later provide peer recovery).
        state.owner.host_segment(sealed)
        for replica in state.replicas:
            if replica.alive:
                replica.host_segment(sealed)
        state.sealed_segments.append(sealed.name)
        state.pending_backup = self.backup.request_backup(self.config.name, sealed)
        state.sequence += 1
        state.consuming = MutableSegment(
            segment_name(self.config.name, state.partition, state.sequence),
            state.partition,
            column_names=self.config.schema.field_names(),
        )
        state.owner.host_segment(state.consuming)
        self.metrics.counter("segments_sealed").inc()
        # Sealing changes the segment set (and builds new pruning
        # metadata); routing/pruning decisions cached against the old
        # epoch must not survive it.
        self.epoch.bump()

    # -- introspection -----------------------------------------------------------

    def lag(self) -> int:
        """Rows in Kafka not yet queryable (the freshness proxy).

        A partition with no live leader contributes its last known lag of
        zero — its true lag is unknowable until a broker returns.
        """
        total = 0
        for state in self.partitions.values():
            try:
                end = self.kafka.end_offset(self.topic, state.partition)
            except BrokerUnavailableError:
                continue
            total += end - state.position
        return total

    def total_rows_ingested(self) -> int:
        return self.metrics.counter("rows_ingested").value

    def segments_of_partition(self, partition: int) -> list[str]:
        """All segment names of a partition, consuming segment last."""
        state = self.partitions[partition]
        return state.sealed_segments + [state.consuming.name]

    def run_until_caught_up(self, max_steps: int = 10_000,
                            backup_steps_per_round: int = 1) -> int:
        """Ingest (driving backup uploads too) until lag reaches zero."""
        total = 0
        for __ in range(max_steps):
            total += self.run_step()
            for __ in range(backup_steps_per_round):
                self.backup.run_step()
            if self.lag() == 0 and not any(
                s.blocked() for s in self.partitions.values()
            ):
                return total
        raise PinotError(f"ingestion did not catch up in {max_steps} steps")
