"""Lookup joins against dimension tables (Section 4.3, current work).

"Currently joins are performed by Presto, which federates query execution
across Pinot and Hive.  However, this is done entirely in-memory in the
Presto worker and cannot be used for critical use cases.  We are
contributing the ability to perform lookup joins to Pinot to support
joining tables with commonly used dimension tables."

A :class:`DimensionTable` is a small, fully-replicated key -> row map
(restaurant metadata, city names, model owners).  ``execute_lookup_join``
runs a normal Pinot query and enriches each result row *inside the OLAP
layer*, so no fact rows ever cross into a federating engine — the
property the C-ablation bench measures against the Presto join path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.common.errors import PinotError, QueryError
from repro.pinot.broker import PinotBroker, QueryResult
from repro.pinot.query import PinotQuery


@dataclass
class DimensionTable:
    """A replicated key->attributes table (the 'commonly used dimension
    tables' of the paper)."""

    name: str
    primary_key: str
    _rows: dict[Hashable, dict[str, Any]] = field(default_factory=dict)

    def upsert_row(self, row: dict[str, Any]) -> None:
        if self.primary_key not in row:
            raise PinotError(
                f"dimension row missing key column {self.primary_key!r}"
            )
        self._rows[row[self.primary_key]] = dict(row)

    def load(self, rows: list[dict[str, Any]]) -> int:
        for row in rows:
            self.upsert_row(row)
        return len(rows)

    def lookup(self, key: Hashable) -> dict[str, Any] | None:
        return self._rows.get(key)

    def __len__(self) -> int:
        return len(self._rows)

    def column_names(self) -> list[str]:
        names: set[str] = set()
        for row in self._rows.values():
            names.update(row)
        return sorted(names)


@dataclass
class LookupJoinSpec:
    """LOOKUP JOIN fact_query ON fact.join_column = dim.primary_key."""

    dimension: DimensionTable
    join_column: str  # column of the fact result rows
    select: list[str] | None = None  # dim columns to attach (None = all)
    prefix: str | None = None  # attached-column prefix (default: dim name)


def execute_lookup_join(
    broker: PinotBroker,
    query: PinotQuery,
    spec: LookupJoinSpec,
) -> QueryResult:
    """Run ``query`` and enrich each result row from the dimension table.

    The join column must appear in the result rows (a selected column or a
    group-by column).  Rows without a dimension match keep NULL attributes
    (left join), matching Pinot's lookup-join semantics.
    """
    result = broker.execute(query)
    prefix = spec.prefix if spec.prefix is not None else spec.dimension.name
    attach = spec.select or [
        c for c in spec.dimension.column_names()
        if c != spec.dimension.primary_key
    ]
    for row in result.rows:
        if spec.join_column not in row:
            raise QueryError(
                f"lookup join column {spec.join_column!r} is not in the "
                f"query result; add it to select/group-by"
            )
        match = spec.dimension.lookup(row[spec.join_column])
        for column in attach:
            row[f"{prefix}.{column}"] = (
                match.get(column) if match is not None else None
            )
    return result


class DimensionTableRegistry:
    """Cluster-wide dimension tables, loadable from Hive (the batch path
    of §4.3.3) or row lists."""

    def __init__(self) -> None:
        self._tables: dict[str, DimensionTable] = {}

    def create(self, name: str, primary_key: str) -> DimensionTable:
        if name in self._tables:
            raise PinotError(f"dimension table {name!r} already exists")
        table = DimensionTable(name, primary_key)
        self._tables[name] = table
        return table

    def get(self, name: str) -> DimensionTable:
        if name not in self._tables:
            raise PinotError(f"no dimension table {name!r}")
        return self._tables[name]

    def load_from_hive(self, name: str, primary_key: str, hive_table) -> DimensionTable:
        table = self.create(name, primary_key)
        table.load(list(hive_table.scan()))
        return table
