"""Cross-layer tracing: trace contexts, spans and the span collector.

The paper's operational story (Section 8's seconds-level freshness for
surge and Eats dashboards, Section 9.3's per-use-case monitoring) depends
on following one record across *every* layer of the Figure 3 data path —
produce into Kafka, replicate between brokers, process through Flink,
ingest into Pinot, serve through the broker and Presto.  Related work
(arXiv:2410.15533, arXiv:2512.16146) makes the same point: latency is only
trustworthy when measured at system boundaries, not inside one component.

The model here is deliberately small:

* A :class:`TraceContext` rides in the record's audit headers (Section 9.4
  already stamps a ``uid``; tracing reuses it as the trace id) and is
  propagated by every hop that understands it.
* Each hop emits a :class:`Span` — ``produce``, ``replicate``, ``consume``,
  ``process``, ``ingest``, ``query`` — into one shared
  :class:`SpanCollector`.
* The collector shares its export path with the existing
  :class:`~repro.common.metrics.MetricsRegistry`: every finished span also
  observes a ``span.<layer>.<name>`` histogram, so dashboards read spans
  and counters from one snapshot.

Tracing is strictly opt-in: components take ``tracer=None`` and stamp the
``trace_id`` header only when a collector is attached, so benchmarks that
do not trace pay nothing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.common.metrics import MetricsRegistry

# Canonical boundary order of the Figure 3 data path.  Spans of one trace,
# grouped by hop, must start in this order — an inversion means a clock or
# propagation bug (see SpanCollector.anomalies).
HOP_ORDER = ("produce", "replicate", "consume", "process", "ingest", "query")

TRACE_HEADER = "trace_id"
ORIGIN_HEADER = "origin_event_time"


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Identity of one traced record, carried in record headers.

    ``origin_event_time`` is the event time of the *root* record of the
    trace: derived records (e.g. window results re-produced to Kafka) keep
    the origin so end-to-end freshness stays boundary-to-boundary.
    """

    trace_id: str
    origin_event_time: float | None = None

    def to_headers(self) -> dict[str, Any]:
        headers: dict[str, Any] = {TRACE_HEADER: self.trace_id}
        if self.origin_event_time is not None:
            headers[ORIGIN_HEADER] = self.origin_event_time
        return headers

    @staticmethod
    def from_headers(headers: Mapping[str, Any]) -> "TraceContext | None":
        """Extract a context; ``None`` when the record is untraced.

        Only records explicitly stamped with a ``trace_id`` header are
        traced — a bare audit ``uid`` does not opt a record in, keeping
        untraced pipelines free of tracking state.
        """
        trace_id = headers.get(TRACE_HEADER)
        if trace_id is None:
            return None
        return TraceContext(trace_id, headers.get(ORIGIN_HEADER))

    @staticmethod
    def from_record(record: Any) -> "TraceContext | None":
        return TraceContext.from_headers(record.headers)


@dataclass(slots=True)
class Span:
    """One hop of one trace: a named interval on the shared clock."""

    trace_id: str
    name: str  # one of HOP_ORDER (free-form names are allowed too)
    layer: str  # kafka | flink | pinot | presto | ...
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name} of {self.trace_id} is still open")
        return self.end - self.start


class SpanCollector:
    """In-memory sink for spans emitted by every instrumented layer.

    One collector instance is shared across the whole stack (the
    :class:`~repro.platform.Platform` facade wires it); spans land here and
    their durations are exported through the attached
    :class:`MetricsRegistry` so spans and counters share one export path.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        max_open_spans: int = 100_000,
    ) -> None:
        self.metrics = metrics
        self.max_open_spans = max_open_spans
        self._finished: list[Span] = []
        self._open: OrderedDict[tuple[str, str], Span] = OrderedDict()
        # Ingest-side index: Pinot table -> trace ids whose records landed
        # in it.  Lets query-layer spans attach to the traces a query could
        # have served (the "queryable" boundary of the freshness story).
        self._table_traces: dict[str, set[str]] = {}

    # -- recording ----------------------------------------------------------

    def record_span(
        self,
        trace_id: str,
        name: str,
        layer: str,
        start: float,
        end: float,
        **attrs: Any,
    ) -> Span:
        """Record a completed span in one shot."""
        span = Span(trace_id, name, layer, start, end, attrs)
        self._finish(span)
        return span

    def begin_span(
        self, trace_id: str, name: str, layer: str, start: float, **attrs: Any
    ) -> Span:
        """Open a span whose end is reported later by a different hop.

        Re-beginning an open (trace_id, name) pair restarts it; spans left
        open past ``max_open_spans`` are evicted oldest-first (records
        aggregated away inside Flink never reach a sink, so their process
        spans can never finish).
        """
        span = Span(trace_id, name, layer, start, None, attrs)
        self._open[(trace_id, name)] = span
        while len(self._open) > self.max_open_spans:
            self._open.popitem(last=False)
        return span

    def end_span(
        self, trace_id: str, name: str, end: float, **attrs: Any
    ) -> Span | None:
        """Finish a previously begun span; no-op when none is open."""
        span = self._open.pop((trace_id, name), None)
        if span is None:
            return None
        span.end = end
        span.attrs.update(attrs)
        self._finish(span)
        return span

    def record_table_query(
        self, table: str, layer: str, start: float, end: float, **attrs: Any
    ) -> int:
        """Attach a ``query`` span to every trace ingested into ``table``.

        The query layer does not see per-row headers, but it does know the
        table it served; lineage-wise, each trace whose record is queryable
        in the table was covered by the query.  Returns the number of
        traces the span was attached to.  The query latency is observed in
        metrics exactly once, not once per trace.
        """
        traces = self._table_traces.get(table, ())
        for i, trace_id in enumerate(sorted(traces)):
            span = Span(
                trace_id, "query", layer, start, end, dict(attrs, table=table)
            )
            self._finish(span, observe_metrics=(i == 0))
        if not traces and self.metrics is not None:
            self.metrics.histogram(f"span.{layer}.query").observe(end - start)
        return len(traces)

    def _finish(self, span: Span, observe_metrics: bool = True) -> None:
        if span.end is not None and span.end < span.start:
            if self.metrics is not None:
                self.metrics.counter("spans_inverted").inc()
        self._finished.append(span)
        if span.name == "ingest" and "table" in span.attrs:
            self._table_traces.setdefault(span.attrs["table"], set()).add(
                span.trace_id
            )
        if self.metrics is not None and observe_metrics:
            self.metrics.counter("spans_finished").inc()
            self.metrics.histogram(f"span.{span.layer}.{span.name}").observe(
                span.duration
            )

    # -- introspection ------------------------------------------------------

    def spans(self, name: str | None = None, layer: str | None = None) -> list[Span]:
        return [
            s
            for s in self._finished
            if (name is None or s.name == name)
            and (layer is None or s.layer == layer)
        ]

    def trace(self, trace_id: str) -> list[Span]:
        """Finished spans of one trace, ordered start-then-hop."""
        spans = [s for s in self._finished if s.trace_id == trace_id]
        return sorted(spans, key=lambda s: (s.start, _hop_rank(s.name)))

    def trace_ids(self) -> list[str]:
        return sorted({s.trace_id for s in self._finished})

    def traces_for_table(self, table: str) -> set[str]:
        return set(self._table_traces.get(table, ()))

    def open_span_count(self) -> int:
        return len(self._open)

    def trace_latency(
        self, trace_id: str, first_hop: str = "produce", last_hop: str = "ingest"
    ) -> float | None:
        """Boundary-to-boundary latency of one trace, or ``None`` when the
        trace does not cover both hops."""
        spans = self.trace(trace_id)
        starts = [s.start for s in spans if s.name == first_hop]
        ends = [s.end for s in spans if s.name == last_hop and s.end is not None]
        if not starts or not ends:
            return None
        return max(ends) - min(starts)

    def anomalies(self) -> list[str]:
        """Consistency violations the tracer surfaced.

        * a span ending before it starts (two hops read different clocks);
        * a trace whose hop starts run backwards against :data:`HOP_ORDER`
          (e.g. an ``ingest`` span starting before its ``produce`` span).

        A trace may cross a layer more than once (a window result produced
        back into Kafka gets a second ``produce``/``replicate`` cycle), so
        hops are compared occurrence-wise: the k-th earliest span of one
        hop against the k-th earliest span of the next hop present.
        """
        problems: list[str] = []
        for span in self._finished:
            if span.end is not None and span.end < span.start:
                problems.append(
                    f"span {span.name}[{span.layer}] of {span.trace_id} ends "
                    f"at {span.end:.6f} before it starts at {span.start:.6f}"
                )
        for trace_id in self.trace_ids():
            starts_by_hop: dict[str, list[float]] = {}
            for span in self.trace(trace_id):
                if span.name in HOP_ORDER:
                    starts_by_hop.setdefault(span.name, []).append(span.start)
            present = [h for h in HOP_ORDER if h in starts_by_hop]
            for earlier, later in zip(present, present[1:]):
                pairs = zip(
                    sorted(starts_by_hop[earlier]), sorted(starts_by_hop[later])
                )
                for a, b in pairs:
                    if b < a - 1e-9:
                        problems.append(
                            f"trace {trace_id}: {later} starts at {b:.6f}, "
                            f"before {earlier} at {a:.6f}"
                        )
        return problems

    def summary(self) -> str:
        """One text block: span counts and duration percentiles per hop."""
        by_hop: dict[tuple[str, str], list[float]] = {}
        for span in self._finished:
            if span.end is None:
                continue
            by_hop.setdefault((span.layer, span.name), []).append(span.duration)
        lines = [f"{'layer':<8} {'span':<10} {'count':>7} {'p50 (s)':>9} {'p99 (s)':>9}"]
        for (layer, name), durations in sorted(by_hop.items()):
            durations.sort()
            p50 = durations[max(0, (len(durations) + 1) // 2 - 1)]
            p99 = durations[max(0, -(-99 * len(durations) // 100) - 1)]
            lines.append(
                f"{layer:<8} {name:<10} {len(durations):>7} {p50:>9.3f} {p99:>9.3f}"
            )
        return "\n".join(lines)


def _hop_rank(name: str) -> int:
    try:
        return HOP_ORDER.index(name)
    except ValueError:
        return len(HOP_ORDER)
