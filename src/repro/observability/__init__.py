"""Cross-layer observability: tracing, freshness probes and SLO monitoring.

Implements the operational half of the paper — Section 8's seconds-level
freshness claims and Section 9.3's per-use-case monitoring — as a small
subsystem every layer of the stack hooks into via an opt-in ``tracer=``
kwarg.  See :mod:`repro.observability.trace` for the data-path model.
"""

from repro.observability.freshness import (
    FreshnessProbe,
    FreshnessReport,
    PinotFreshnessProbe,
)
from repro.observability.slo import (
    TABLE1_SLOS,
    SloEvaluation,
    SloMonitor,
    SloTarget,
)
from repro.observability.trace import (
    HOP_ORDER,
    ORIGIN_HEADER,
    TRACE_HEADER,
    Span,
    SpanCollector,
    TraceContext,
)

__all__ = [
    "HOP_ORDER",
    "ORIGIN_HEADER",
    "TRACE_HEADER",
    "Span",
    "SpanCollector",
    "TraceContext",
    "FreshnessProbe",
    "FreshnessReport",
    "PinotFreshnessProbe",
    "SloEvaluation",
    "SloMonitor",
    "SloTarget",
    "TABLE1_SLOS",
]
