"""Per-use-case SLO targets and evaluation (paper Sections 8 and 9.3).

Table 1 of the paper groups the platform's workloads into representative
use cases — surge pricing needs seconds-level freshness, dashboards need
sub-second query latency at high QPS, ads attribution needs exactly-once
delivery within minutes.  Section 9.3's monitoring/chargeback story turns
those expectations into per-use-case targets evaluated continuously.

:class:`SloMonitor` is that evaluation loop in miniature: register
:class:`SloTarget` objects, feed observed samples (directly, from a
:class:`~repro.observability.freshness.FreshnessReport`, or from trace
latencies in a :class:`~repro.observability.trace.SpanCollector`), and
render a text dashboard of pass/fail per target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.observability.freshness import FreshnessReport
from repro.observability.trace import SpanCollector


@dataclass(frozen=True)
class SloTarget:
    """One use case's target: ``metric`` at ``percentile`` must stay at or
    under ``target_seconds``."""

    use_case: str
    metric: str  # e.g. "freshness", "e2e_latency", "query_latency"
    percentile: float
    target_seconds: float
    description: str = ""

    @property
    def key(self) -> tuple[str, str]:
        return (self.use_case, self.metric)


@dataclass(frozen=True)
class SloEvaluation:
    """Outcome of evaluating one target against its observed samples."""

    target: SloTarget
    observed: float | None  # None = no samples yet
    sample_count: int

    @property
    def met(self) -> bool | None:
        if self.observed is None:
            return None
        return self.observed <= self.target.target_seconds

    @property
    def status(self) -> str:
        if self.met is None:
            return "NO DATA"
        return "OK" if self.met else "VIOLATED"


# Freshness/latency expectations for the paper's Section 5 use cases.
# The paper quotes qualitative bands ("seconds", "sub-second queries",
# "minutes" for ads); the numbers here are the reproduction's concrete
# stand-ins for those bands.
TABLE1_SLOS = (
    SloTarget(
        "surge_pricing",
        "freshness",
        99,
        120.0,
        "surge windows queryable within the 2-minute pricing cycle",
    ),
    SloTarget(
        "eats_dashboard",
        "freshness",
        99,
        30.0,
        "restaurant dashboards read seconds-fresh orders",
    ),
    SloTarget(
        "ads_attribution",
        "e2e_latency",
        99,
        300.0,
        "ad events attributed within minutes, exactly once",
    ),
    SloTarget(
        "exploration",
        "query_latency",
        95,
        5.0,
        "ad-hoc Presto queries return interactively",
    ),
)


class SloMonitor:
    """Evaluates registered targets against observed samples."""

    def __init__(self, targets: tuple[SloTarget, ...] | list[SloTarget] = ()) -> None:
        self._targets: dict[tuple[str, str], SloTarget] = {}
        self._samples: dict[tuple[str, str], list[float]] = {}
        # Trace ids already sampled per (use_case, metric): repeated
        # monitoring sweeps over one collector must not double-count.
        self._seen_traces: dict[tuple[str, str], set[str]] = {}
        for target in targets:
            self.add_target(target)

    @staticmethod
    def with_table1_targets() -> "SloMonitor":
        return SloMonitor(TABLE1_SLOS)

    def add_target(self, target: SloTarget) -> None:
        self._targets[target.key] = target
        self._samples.setdefault(target.key, [])

    def targets(self) -> list[SloTarget]:
        return list(self._targets.values())

    # -- feeding samples ----------------------------------------------------

    def observe(self, use_case: str, metric: str, value: float) -> None:
        self._samples.setdefault((use_case, metric), []).append(value)

    def ingest_report(
        self, use_case: str, report: FreshnessReport, metric: str = "freshness"
    ) -> None:
        self._samples.setdefault((use_case, metric), []).extend(report.samples)

    def observe_trace_latencies(
        self,
        use_case: str,
        collector: SpanCollector,
        metric: str = "e2e_latency",
        first_hop: str = "produce",
        last_hop: str = "ingest",
    ) -> int:
        """Sample boundary-to-boundary latency of every complete trace.

        Idempotent per trace: a trace already sampled into ``(use_case,
        metric)`` is skipped on later sweeps, so a periodic monitoring loop
        never double-counts a trace and skews the percentiles.  A trace
        that is still incomplete (missing either hop) stays unmarked and is
        picked up by the first sweep after it completes.
        """
        added = 0
        seen = self._seen_traces.setdefault((use_case, metric), set())
        for trace_id in collector.trace_ids():
            if trace_id in seen:
                continue
            latency = collector.trace_latency(trace_id, first_hop, last_hop)
            if latency is not None:
                self.observe(use_case, metric, latency)
                seen.add(trace_id)
                added += 1
        return added

    # -- evaluation ---------------------------------------------------------

    def evaluate(self) -> list[SloEvaluation]:
        results = []
        for key, target in self._targets.items():
            samples = sorted(self._samples.get(key, []))
            if samples:
                rank = math.ceil(target.percentile / 100 * len(samples))
                rank = max(1, min(len(samples), rank))
                observed = samples[rank - 1]
            else:
                observed = None
            results.append(SloEvaluation(target, observed, len(samples)))
        return results

    def violations(self) -> list[SloEvaluation]:
        return [e for e in self.evaluate() if e.met is False]

    def render(self) -> str:
        """Text dashboard, one row per target."""
        header = ["use case", "metric", "target", "observed", "n", "status"]
        rows = []
        for ev in self.evaluate():
            t = ev.target
            rows.append(
                [
                    t.use_case,
                    f"p{t.percentile:g} {t.metric}",
                    f"<= {t.target_seconds:g}s",
                    "-" if ev.observed is None else f"{ev.observed:.2f}s",
                    str(ev.sample_count),
                    ev.status,
                ]
            )
        widths = [
            max(len(row[i]) for row in [header] + rows) for i in range(len(header))
        ]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)
