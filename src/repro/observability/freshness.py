"""End-to-end freshness measurement (paper Section 8).

The paper's headline operational claim is *seconds-level* data freshness:
an event produced into Kafka is queryable in Pinot within seconds.  The
probes here measure exactly that boundary-to-boundary interval —
event time at the producer edge to first-queryable at the Pinot broker —
rather than any single component's internal latency (the pitfall
arXiv:2512.16146 warns benchmark suites about).

Two probes:

* :class:`FreshnessProbe` — a passive sampler: any pipeline that knows
  when a record became visible calls :meth:`FreshnessProbe.observe_visible`
  and gets a :class:`FreshnessReport` of percentiles back.
* :class:`PinotFreshnessProbe` — an active prober: it injects sentinel
  records through the real producer path, drives the pipeline forward,
  and polls the Pinot broker until each sentinel is queryable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import Clock, SystemClock


@dataclass(frozen=True)
class FreshnessReport:
    """Percentile summary over event-time → queryable intervals (seconds)."""

    samples: tuple[float, ...]

    @staticmethod
    def from_samples(samples: list[float]) -> "FreshnessReport":
        return FreshnessReport(tuple(sorted(samples)))

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, matching Histogram.percentile."""
        if not self.samples:
            raise ValueError("no freshness samples collected")
        rank = math.ceil(pct / 100 * len(self.samples))
        rank = max(1, min(len(self.samples), rank))
        return self.samples[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no freshness samples collected")
        return sum(self.samples) / len(self.samples)

    @property
    def max(self) -> float:
        if not self.samples:
            raise ValueError("no freshness samples collected")
        return self.samples[-1]

    def render(self) -> str:
        return (
            f"freshness over {self.count} samples: "
            f"p50={self.p50:.2f}s p99={self.p99:.2f}s max={self.max:.2f}s"
        )


class FreshnessProbe:
    """Passive freshness sampler.

    Pipelines call :meth:`observe_visible` at the instant a record (or a
    derived result) becomes queryable, passing the origin event time; the
    probe accumulates ``now - origin_event_time`` samples.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or SystemClock()
        self._samples: list[float] = []

    def observe_visible(
        self, origin_event_time: float, now: float | None = None
    ) -> float:
        """Record that data with the given origin time is now queryable."""
        if now is None:
            now = self.clock.now()
        sample = now - origin_event_time
        self._samples.append(sample)
        return sample

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def report(self) -> FreshnessReport:
        return FreshnessReport.from_samples(self._samples)


@dataclass
class PinotFreshnessProbe:
    """Active end-to-end prober: sentinel in at Kafka, visible out at Pinot.

    Each round produces one sentinel row through the real ``producer``
    (so it crosses the same produce/replicate/process/ingest boundaries as
    user traffic), then alternates ``step(dt)`` — the caller's hook that
    advances the simulated clock and drives Flink/Pinot forward — with a
    COUNT query against the broker filtered on the sentinel's marker,
    until the row is queryable or ``timeout`` simulated seconds elapse.

    ``sentinel_factory(marker)`` must return a value dict that conforms to
    the target table's schema with ``match_column`` set to the marker (the
    :class:`~repro.platform.Platform` facade derives one from the schema
    automatically).
    """

    producer: Any  # kafka Producer
    topic: str
    table: str
    broker: Any  # PinotBroker
    match_column: str
    sentinel_factory: Callable[[str], dict]
    step: Callable[[float], None]
    clock: Clock
    step_interval: float = 1.0
    _probe_seq: int = 0
    _samples: list[float] = field(default_factory=list)

    def run(self, sentinels: int = 5, timeout: float = 120.0) -> FreshnessReport:
        """Inject ``sentinels`` probe rows and measure each to visibility."""
        for _ in range(sentinels):
            self._probe_once(timeout)
        return self.report()

    def _probe_once(self, timeout: float) -> float:
        from repro.pinot.query import Aggregation, Filter, PinotQuery

        self._probe_seq += 1
        marker = f"__probe-{self._probe_seq}"
        event_time = self.clock.now()
        value = self.sentinel_factory(marker)
        self.producer.produce(
            self.topic, value, key=marker, event_time=event_time, tier="critical"
        )
        self.producer.flush()

        query = PinotQuery(
            table=self.table,
            aggregations=[Aggregation("COUNT")],
            filters=[Filter(self.match_column, "=", marker)],
        )
        deadline = event_time + timeout
        while True:
            self.step(self.step_interval)
            result = self.broker.execute(query)
            if result.rows and result.rows[0].get("count(*)", 0) > 0:
                break
            if self.clock.now() >= deadline:
                raise TimeoutError(
                    f"sentinel {marker!r} not queryable in {self.table!r} "
                    f"within {timeout}s"
                )
        sample = self.clock.now() - event_time
        self._samples.append(sample)
        return sample

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def report(self) -> FreshnessReport:
        return FreshnessReport.from_samples(self._samples)
