"""The deterministic integrity report.

One :class:`StageReport` per observed stage (a Kafka topic log, a Pinot
table scan, ...), each reconciled against the same expected ledger.
``render()`` is byte-stable for a given reconciliation: findings are
sorted by display key, so same seed + same fault timeline produces the
identical report — the determinism CI gate diffs it directly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KeyFinding:
    """One key's discrepancy at one stage."""

    key: str  # display form of the record key
    count: int  # how many records are missing/duplicated for this key
    digests: tuple[str, ...]  # the affected lineage digests, sorted


@dataclass(frozen=True)
class StageReport:
    stage: str
    expected_records: int
    observed_records: int
    missing: tuple[KeyFinding, ...]
    duplicated: tuple[KeyFinding, ...]
    # Keys whose record *multiset* matches but whose per-key order differs
    # (a re-delivery that jumped the line).
    reordered: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not (self.missing or self.duplicated or self.reordered)

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.stage}: OK "
                f"({self.observed_records}/{self.expected_records} records)"
            )
        parts = []
        if self.missing:
            parts.append(f"missing {sum(f.count for f in self.missing)}")
        if self.duplicated:
            parts.append(f"duplicated {sum(f.count for f in self.duplicated)}")
        if self.reordered:
            parts.append(f"reordered keys {len(self.reordered)}")
        return f"{self.stage}: FAIL ({', '.join(parts)})"


@dataclass(frozen=True)
class IntegrityReport:
    name: str
    stages: tuple[StageReport, ...]

    @property
    def ok(self) -> bool:
        return all(stage.ok for stage in self.stages)

    def summary(self) -> str:
        verdict = "CLEAN" if self.ok else "VIOLATED"
        return f"integrity[{self.name}]: {verdict}; " + "; ".join(
            stage.summary() for stage in self.stages
        )

    def render(self) -> str:
        lines = [f"=== integrity report: {self.name} ==="]
        for stage in self.stages:
            lines.append(
                f"stage {stage.stage}: expected={stage.expected_records} "
                f"observed={stage.observed_records} "
                f"{'OK' if stage.ok else 'FAIL'}"
            )
            for label, findings in (
                ("missing", stage.missing),
                ("duplicated", stage.duplicated),
            ):
                for finding in findings:
                    lines.append(
                        f"  {label} key={finding.key} x{finding.count} "
                        f"digests={','.join(finding.digests)}"
                    )
            for key in stage.reordered:
                lines.append(f"  reordered key={key}")
        lines.append(f"verdict: {'CLEAN' if self.ok else 'VIOLATED'}")
        return "\n".join(lines)
