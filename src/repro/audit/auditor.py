"""The cross-layer integrity auditor (the Chaperone loop of Section 9.4).

An :class:`IntegrityAuditor` audits ONE logical dataset: the expected
records live in a :class:`LineageLedger` (filled by the workload
generator, or constructed analytically for derived datasets), and each
registered *stage* is a deferred scan of where those records should now
be — a Kafka topic log, a Pinot table.  :meth:`reconcile` runs the scans
and diffs each stage's per-key ordered digest sequences against the
ledger, producing the deterministic :class:`IntegrityReport`.

Scans are deferred (registered as thunks, executed at reconcile time) so
the chaos harness can register the audit as an invariant *before* the
fault timeline runs and evaluate it after recovery settles.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable

from repro.audit.lineage import LineageLedger, lineage_digest
from repro.audit.report import IntegrityReport, KeyFinding, StageReport
from repro.common import serde

#: A stage scan yields (key, value) pairs in observation order.
StageScan = Callable[[], Iterable[tuple[Any, Any]]]

_FETCH_CHUNK = 500


class IntegrityAuditor:
    def __init__(self, name: str, ledger: LineageLedger | None = None) -> None:
        self.name = name
        self.ledger = ledger or LineageLedger()
        self._stages: list[tuple[str, StageScan]] = []
        self.last_report: IntegrityReport | None = None

    # -- expected side ------------------------------------------------------

    def record_expected(self, key: Any, value: Any) -> str:
        """Workload-generator hook: one record that MUST survive."""
        return self.ledger.record(key, value)

    # -- observed side ------------------------------------------------------

    def add_stage(self, stage: str, scan: StageScan) -> "IntegrityAuditor":
        """Register an arbitrary deferred scan for reconciliation."""
        self._stages.append((stage, scan))
        return self

    def add_kafka_stage(
        self,
        cluster: Any,
        topic: str,
        stage: str | None = None,
        key_fn: Callable[[Any], Any] | None = None,
        value_fn: Callable[[Any], Any] | None = None,
        where: Callable[[Any], bool] | None = None,
    ) -> "IntegrityAuditor":
        """Scan a Kafka topic log, partitions in order, offsets in order.

        Per-key observation order is faithful because the hash partitioner
        sends all records of one key to one partition.  ``key_fn`` /
        ``value_fn`` map a log record to the audited key/payload (defaults:
        the record's own key and value); ``where`` keeps only matching
        records (for excluding out-of-ledger traffic like probe sentinels).
        """

        def scan() -> Iterable[tuple[Any, Any]]:
            for partition in range(cluster.partition_count(topic)):
                offset = cluster.start_offset(topic, partition)
                end = cluster.end_offset(topic, partition)
                while offset < end:
                    entries = cluster.fetch(topic, partition, offset, _FETCH_CHUNK)
                    if not entries:
                        break
                    for entry in entries:
                        record = entry.record
                        if where is not None and not where(record):
                            continue
                        yield (
                            record.key if key_fn is None else key_fn(record),
                            record.value if value_fn is None else value_fn(record),
                        )
                    offset = entries[-1].offset + 1

        return self.add_stage(stage or f"kafka:{topic}", scan)

    def add_pinot_stage(
        self,
        controller: Any,
        table: str,
        key_column: str | None = None,
        stage: str | None = None,
        key_fn: Callable[[dict], Any] | None = None,
        value_fn: Callable[[dict], Any] | None = None,
        where: Callable[[dict], bool] | None = None,
    ) -> "IntegrityAuditor":
        """Scan every row of a realtime Pinot table: partitions in order,
        each partition's sealed segments in seal order, then the consuming
        segment — i.e. ingestion order, so per-key order is faithful.

        ``key_column`` names the row column holding the record key
        (defaults to the table's partition column); ``value_fn`` maps a
        row dict to the audited payload (default: the whole row);
        ``where`` keeps only matching rows.
        """

        def scan() -> Iterable[tuple[Any, Any]]:
            state = controller.table(table)
            column = key_column or state.config.partition_column
            if column is None and key_fn is None:
                raise ValueError(
                    f"table {table!r} has no partition column; pass "
                    "key_column= or key_fn="
                )
            for partition in sorted(state.ingestion.partitions):
                pstate = state.ingestion.partitions[partition]
                names = pstate.sealed_segments + [pstate.consuming.name]
                for seg_name in names:
                    segment = pstate.owner.segments.get(seg_name)
                    if segment is None:
                        # Sealed copy lost from the owner: surface it as
                        # missing records rather than crashing the audit.
                        continue
                    for doc_id in range(segment.num_docs):
                        row = segment.row(doc_id)
                        if where is not None and not where(row):
                            continue
                        yield (
                            row[column] if key_fn is None else key_fn(row),
                            row if value_fn is None else value_fn(row),
                        )

        return self.add_stage(stage or f"pinot:{table}", scan)

    # -- reconciliation -----------------------------------------------------

    def reconcile(self) -> IntegrityReport:
        """Run every registered scan and diff it against the ledger."""
        expected = self.ledger.per_key()
        expected_total = self.ledger.records
        stage_reports = []
        for stage, scan in self._stages:
            observed: dict[bytes, list[str]] = {}
            display: dict[bytes, str] = {}
            observed_total = 0
            for key, value in scan():
                canonical = serde.encode_key(key)
                observed.setdefault(canonical, []).append(lineage_digest(value))
                display.setdefault(canonical, repr(key))
                observed_total += 1
            missing: list[KeyFinding] = []
            duplicated: list[KeyFinding] = []
            reordered: list[str] = []
            for canonical in sorted(
                set(expected) | set(observed),
                key=lambda c: (self.ledger.display(c)
                               if c in expected else display[c]),
            ):
                exp = expected.get(canonical, [])
                obs = observed.get(canonical, [])
                if exp == obs:
                    continue
                name = (
                    self.ledger.display(canonical)
                    if canonical in expected
                    else display[canonical]
                )
                lost = Counter(exp) - Counter(obs)
                extra = Counter(obs) - Counter(exp)
                if lost:
                    missing.append(
                        KeyFinding(
                            name,
                            sum(lost.values()),
                            tuple(sorted(lost.elements())),
                        )
                    )
                if extra:
                    duplicated.append(
                        KeyFinding(
                            name,
                            sum(extra.values()),
                            tuple(sorted(extra.elements())),
                        )
                    )
                if not lost and not extra:
                    reordered.append(name)
            stage_reports.append(
                StageReport(
                    stage=stage,
                    expected_records=expected_total,
                    observed_records=observed_total,
                    missing=tuple(missing),
                    duplicated=tuple(duplicated),
                    reordered=tuple(reordered),
                )
            )
        self.last_report = IntegrityReport(self.name, tuple(stage_reports))
        return self.last_report
