"""Cross-layer data-integrity auditing (Section 9.4, "Chaperone").

The paper's auditing system tracks every business event across Kafka,
Flink and Pinot and reports loss and duplication at each stage.  This
package reproduces that loop end to end:

* :mod:`repro.audit.lineage` — content digests and the
  :class:`LineageLedger` of expected records, filled in by workload
  generators as they produce.
* :mod:`repro.audit.auditor` — :class:`IntegrityAuditor` scans Kafka
  topic logs and Pinot tables and reconciles them against the ledger.
* :mod:`repro.audit.report` — the deterministic
  :class:`IntegrityReport` (missing / duplicated / reordered per key)
  the chaos harness asserts on after every fault timeline.
"""

from repro.audit.auditor import IntegrityAuditor
from repro.audit.lineage import LineageLedger, lineage_digest
from repro.audit.report import IntegrityReport, KeyFinding, StageReport

__all__ = [
    "IntegrityAuditor",
    "IntegrityReport",
    "KeyFinding",
    "LineageLedger",
    "StageReport",
    "lineage_digest",
]
