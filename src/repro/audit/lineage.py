"""Lineage digests: content fingerprints assigned at the source.

A record's lineage digest is a short blake2b hash over its
*equality-canonical* serde encoding (:func:`serde.encode_key`), so the
same logical payload produces the same digest wherever it is observed —
in the producer's ledger, in a Kafka log entry, or as a row scanned out
of a Pinot segment — regardless of dict key order or int/float typing
drift across layers.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common import serde


def lineage_digest(value: Any) -> str:
    """Content fingerprint of one record payload (16 hex chars)."""
    return hashlib.blake2b(serde.encode_key(value), digest_size=8).hexdigest()


class LineageLedger:
    """The expected side of the reconciliation: every record a workload
    generator produced, as per-key *ordered* digest sequences.

    Keys are canonicalized with :func:`serde.encode_key` so ``5`` and
    ``5.0`` ledger under the same key (matching partitioner and query
    equality semantics); the original key's ``repr`` is kept for
    reporting.
    """

    def __init__(self) -> None:
        self._per_key: dict[bytes, list[str]] = {}
        self._display: dict[bytes, str] = {}
        self.records = 0

    def record(self, key: Any, value: Any) -> str:
        """Register one expected record; returns its lineage digest."""
        canonical = serde.encode_key(key)
        digest = lineage_digest(value)
        self._per_key.setdefault(canonical, []).append(digest)
        self._display.setdefault(canonical, repr(key))
        self.records += 1
        return digest

    def per_key(self) -> dict[bytes, list[str]]:
        return self._per_key

    def display(self, canonical: bytes) -> str:
        return self._display.get(canonical, canonical.hex())
