"""Brokers, topics and the cluster control plane.

A :class:`KafkaCluster` owns a set of brokers, assigns partition replicas
to them, serves produce/fetch requests and runs follower replication.
The replication model is deliberately explicit so the paper's consistency
trade-offs are observable:

* ``acks=1`` appends to the leader only; followers catch up when
  :meth:`replicate` runs.  If the leader dies first, unreplicated records
  are lost — this is the "higher throughput but not lossless" configuration
  surge pricing uses (Section 5.1).
* ``acks=all`` appends synchronously to every live replica; leader failure
  loses nothing — the financial-data configuration (Section 9.2 "zero data
  loss").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.common.clock import Clock, SystemClock
from repro.common.errors import (
    BrokerUnavailableError,
    KafkaError,
    NotEnoughReplicasError,
    OutOfOrderSequenceError,
    ProducerFencedError,
    TopicExistsError,
    UnknownTopicError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.perf import PERF
from repro.common.records import Record
from repro.kafka.log import LogEntry, PartitionLog, _record_size
from repro.observability.trace import SpanCollector, TraceContext


@dataclass(frozen=True, slots=True)
class ProducerCtx:
    """Idempotent-produce metadata riding with one batch append.

    ``base_seq`` is the sequence number of the batch's first record within
    ``(producer_id, topic, partition)``; the cluster uses it to drop exact
    retries and to fence zombie producer instances (stale ``epoch``).
    """

    transactional_id: str
    producer_id: int
    epoch: int
    base_seq: int


@dataclass
class _ProducerSeqState:
    """Last accepted batch per (producer id, topic, partition)."""

    base_seq: int
    end_seq: int  # sequence of the batch's last record
    base_offset: int


@dataclass
class TopicConfig:
    """Per-topic knobs, mirroring the paper's per-use-case tuning."""

    partitions: int = 4
    replication_factor: int = 2
    retention_seconds: float | None = None
    retention_bytes: int | None = None
    # "lossless" topics force acks=all on every produce regardless of the
    # producer's own setting (financial data, Section 9.2).
    lossless: bool = False


class Broker:
    """One broker node hosting partition replicas."""

    def __init__(self, broker_id: int) -> None:
        self.broker_id = broker_id
        self.alive = True
        # (topic, partition) -> replica log
        self.replicas: dict[tuple[str, int], PartitionLog] = {}

    def hosted_bytes(self) -> int:
        return sum(log.size_bytes for log in self.replicas.values())


@dataclass
class PartitionState:
    """Control-plane view of one partition."""

    topic: str
    partition: int
    replica_brokers: list[int]  # preference order; [0] is preferred leader
    leader: int

    def replica_set(self) -> list[int]:
        return list(self.replica_brokers)


class Topic:
    def __init__(self, name: str, config: TopicConfig) -> None:
        self.name = name
        self.config = config
        self.partitions: list[PartitionState] = []


class KafkaCluster:
    """A single physical Kafka cluster."""

    def __init__(
        self,
        name: str = "kafka",
        num_brokers: int = 3,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: SpanCollector | None = None,
    ) -> None:
        if num_brokers < 1:
            raise KafkaError(f"cluster needs at least one broker, got {num_brokers}")
        self.name = name
        self.clock = clock or SystemClock()
        self.tracer = tracer
        self.brokers: dict[int, Broker] = {i: Broker(i) for i in range(num_brokers)}
        self.topics: dict[str, Topic] = {}
        self._assign_cursor = itertools.count()
        self._replication_paused = False
        self.metrics = metrics or MetricsRegistry(f"kafka.{name}")
        # Transactional-producer control plane (Section 9.2 zero-loss +
        # the 2PC sink's fencing).  Kept at the cluster level — like the
        # real broker's producer-state snapshots, it survives individual
        # broker kills and is rebuilt with the log, so a zombie is fenced
        # even across a leader change.
        self._txn_registry: dict[str, tuple[int, int]] = {}  # id -> (pid, epoch)
        self._next_pid = itertools.count(1)
        self._producer_seqs: dict[tuple[int, str, int], _ProducerSeqState] = {}

    # -- cluster membership ---------------------------------------------------

    @property
    def num_brokers(self) -> int:
        return len(self.brokers)

    def add_broker(self) -> int:
        broker_id = max(self.brokers) + 1 if self.brokers else 0
        self.brokers[broker_id] = Broker(broker_id)
        return broker_id

    def kill_broker(self, broker_id: int) -> None:
        """Fail a broker; partitions it led elect a new live leader."""
        broker = self._broker(broker_id)
        broker.alive = False
        for topic in self.topics.values():
            for pstate in topic.partitions:
                if pstate.leader == broker_id:
                    self._elect_leader(pstate)

    def restart_broker(self, broker_id: int) -> None:
        """Bring a broker back; its replica logs truncate to their common
        prefix with the current leader (a restarted replica discards
        diverged entries, however long its log) and resync.

        When no live leader exists, leadership is re-elected against the
        replica preference order restricted to live brokers — the restarted
        broker does not unconditionally "take over as-is", so a stale
        ``pstate.leader`` pointing at a still-dead broker is repaired and a
        later-restarted preferred replica joins as a follower and resyncs
        instead of silently keeping a diverged log.
        """
        broker = self._broker(broker_id)
        broker.alive = True
        for topic in self.topics.values():
            for pstate in topic.partitions:
                if broker_id not in pstate.replica_brokers:
                    continue
                leader_log = self._leader_log(pstate)
                if leader_log is None:
                    self._elect_leader(pstate)
                    leader_log = self._leader_log(pstate)
                    if leader_log is None:
                        continue  # unreachable: this broker is live
                follower_log = broker.replicas[(pstate.topic, pstate.partition)]
                if follower_log is not leader_log:
                    # Length alone cannot detect divergence: a previous
                    # leader may hold *more* entries, none of them shared
                    # past the divergence point.
                    follower_log.truncate_to(
                        follower_log.common_prefix_end(leader_log)
                    )
        self.replicate()

    def _broker(self, broker_id: int) -> Broker:
        if broker_id not in self.brokers:
            raise KafkaError(f"unknown broker {broker_id}")
        return self.brokers[broker_id]

    def _elect_leader(self, pstate: PartitionState) -> None:
        for candidate in pstate.replica_brokers:
            if self.brokers[candidate].alive:
                pstate.leader = candidate
                return
        # No live replica: leader stays as-is; produce/fetch will fail until
        # a replica broker restarts.

    # -- topics ----------------------------------------------------------------

    def create_topic(self, name: str, config: TopicConfig | None = None) -> Topic:
        if name in self.topics:
            raise TopicExistsError(f"topic {name!r} already exists on {self.name}")
        config = config or TopicConfig()
        if config.replication_factor > len(self.brokers):
            raise KafkaError(
                f"replication factor {config.replication_factor} exceeds "
                f"broker count {len(self.brokers)}"
            )
        topic = Topic(name, config)
        broker_ids = sorted(self.brokers)
        for partition in range(config.partitions):
            start = next(self._assign_cursor)
            replicas = [
                broker_ids[(start + r) % len(broker_ids)]
                for r in range(config.replication_factor)
            ]
            pstate = PartitionState(name, partition, replicas, leader=replicas[0])
            for broker_id in replicas:
                self.brokers[broker_id].replicas[(name, partition)] = PartitionLog()
            self._elect_leader(pstate)
            topic.partitions.append(pstate)
        self.topics[name] = topic
        return topic

    def expand_partitions(self, name: str, additional: int) -> int:
        """Add ``additional`` partitions to a topic (§9.4: topics are
        "automatically expanded" as usage grows).

        Kafka cannot shrink or reshuffle existing partitions: new data
        spreads wider via the producer's hash partitioner, old data stays
        put, and existing consumers of the original partitions are
        unaffected.  New partitions replicate at the topic's configured
        factor over live brokers (preference order continues the creation
        round-robin).  Returns the new partition count.
        """
        if additional <= 0:
            raise KafkaError(f"additional partitions must be positive, got {additional}")
        topic = self._topic(name)
        broker_ids = sorted(self.brokers)
        current = len(topic.partitions)
        for partition in range(current, current + additional):
            start = next(self._assign_cursor)
            replicas = [
                broker_ids[(start + r) % len(broker_ids)]
                for r in range(topic.config.replication_factor)
            ]
            pstate = PartitionState(name, partition, replicas, leader=replicas[0])
            for broker_id in replicas:
                self.brokers[broker_id].replicas[(name, partition)] = PartitionLog()
            self._elect_leader(pstate)
            topic.partitions.append(pstate)
        topic.config.partitions = current + additional
        self.metrics.counter("partitions_expanded").inc(additional)
        return current + additional

    def delete_topic(self, name: str) -> None:
        topic = self._topic(name)
        for pstate in topic.partitions:
            for broker_id in pstate.replica_brokers:
                self.brokers[broker_id].replicas.pop((name, pstate.partition), None)
        del self.topics[name]

    def has_topic(self, name: str) -> bool:
        return name in self.topics

    def _topic(self, name: str) -> Topic:
        if name not in self.topics:
            raise UnknownTopicError(f"topic {name!r} does not exist on {self.name}")
        return self.topics[name]

    def partition_count(self, topic: str) -> int:
        return len(self._topic(topic).partitions)

    def _pstate(self, topic: str, partition: int) -> PartitionState:
        t = self._topic(topic)
        if not 0 <= partition < len(t.partitions):
            raise KafkaError(f"{topic!r} has no partition {partition}")
        return t.partitions[partition]

    def _leader_log(self, pstate: PartitionState) -> PartitionLog | None:
        leader = self.brokers[pstate.leader]
        if not leader.alive:
            return None
        return leader.replicas[(pstate.topic, pstate.partition)]

    # -- transactional producers -----------------------------------------------

    def init_producer(self, transactional_id: str) -> tuple[int, int]:
        """Register (or re-register) a transactional producer.

        First call for an id assigns a fresh producer id at epoch 0; every
        later call keeps the pid and bumps the epoch, **fencing** any
        still-live instance holding the previous epoch (the pre-failure
        zombie of a restarted 2PC sink).  Sequence state restarts with the
        new epoch.
        """
        if transactional_id in self._txn_registry:
            pid, epoch = self._txn_registry[transactional_id]
            epoch += 1
        else:
            pid, epoch = next(self._next_pid), 0
        self._txn_registry[transactional_id] = (pid, epoch)
        for key in [k for k in self._producer_seqs if k[0] == pid]:
            del self._producer_seqs[key]
        self.metrics.counter("producer_inits").inc()
        return pid, epoch

    def _check_producer(
        self, ctx: "ProducerCtx", topic: str, partition: int, batch_len: int
    ) -> int | None:
        """Fence stale epochs; dedup exact batch retries.

        Returns the original base offset when the batch is a duplicate of
        the last accepted one (idempotent retry — nothing is appended), or
        ``None`` when the batch is new and should land.
        """
        registered = self._txn_registry.get(ctx.transactional_id)
        if registered is None:
            raise ProducerFencedError(
                f"producer {ctx.transactional_id!r} never initialized on "
                f"{self.name}; call init_transactions() first"
            )
        pid, epoch = registered
        if ctx.producer_id != pid or ctx.epoch < epoch:
            self.metrics.counter("fenced_produces").inc()
            raise ProducerFencedError(
                f"producer {ctx.transactional_id!r} epoch {ctx.epoch} is "
                f"fenced by epoch {epoch}"
            )
        if ctx.epoch > epoch:
            raise KafkaError(
                f"producer {ctx.transactional_id!r} claims unknown epoch "
                f"{ctx.epoch} (registry has {epoch})"
            )
        state = self._producer_seqs.get((pid, topic, partition))
        expected = 0 if state is None else state.end_seq + 1
        if ctx.base_seq == expected:
            return None
        if (
            state is not None
            and ctx.base_seq == state.base_seq
            and ctx.base_seq + batch_len - 1 == state.end_seq
        ):
            # Exact retry of the last accepted batch: drop it, answer with
            # the original base offset.
            self.metrics.counter("duplicate_batches_dropped").inc()
            return state.base_offset
        raise OutOfOrderSequenceError(
            f"{topic}[{partition}]: pid {pid} sent base seq {ctx.base_seq}, "
            f"expected {expected}"
        )

    def _record_producer_batch(
        self, ctx: "ProducerCtx", topic: str, partition: int,
        batch_len: int, base_offset: int,
    ) -> None:
        self._producer_seqs[(ctx.producer_id, topic, partition)] = (
            _ProducerSeqState(
                ctx.base_seq, ctx.base_seq + batch_len - 1, base_offset
            )
        )

    def producer_epoch(self, transactional_id: str) -> int | None:
        """Current registered epoch for an id (introspection/tests)."""
        registered = self._txn_registry.get(transactional_id)
        return None if registered is None else registered[1]

    # -- data plane --------------------------------------------------------------

    def append(
        self,
        topic: str,
        partition: int,
        record: Record,
        acks: str = "1",
    ) -> int:
        """Append one record to a partition leader; returns the offset."""
        return self.append_batch(topic, partition, (record,), acks)

    def append_batch(
        self,
        topic: str,
        partition: int,
        records: "list[Record] | tuple[Record, ...]",
        acks: str = "1",
        sizes: list[int] | None = None,
        producer_ctx: "ProducerCtx | None" = None,
    ) -> int:
        """Append a whole producer batch in one request; returns the base
        offset (record ``i`` lands at ``base + i``).

        Partition state, leadership and the acks=all replica check are
        resolved once per batch instead of once per record, and each
        record's size is encoded once and shared by every replica.  Under
        ``acks=all`` the replica check happens *before* any record lands,
        so a failed call appends nothing and the whole batch is safe to
        retry.

        With ``producer_ctx`` (idempotent/transactional producers) the
        batch is additionally epoch-fenced — a zombie instance raises
        :class:`ProducerFencedError` before anything lands — and
        sequence-checked: an exact retry of the last accepted batch is
        dropped and answered with its original base offset.
        """
        if PERF.enabled:
            PERF.inc("kafka.partition_resolutions")
        pstate = self._pstate(topic, partition)
        if producer_ctx is not None and records:
            duplicate_base = self._check_producer(
                producer_ctx, topic, partition, len(records)
            )
            if duplicate_base is not None:
                return duplicate_base
        if self._topic(topic).config.lossless:
            acks = "all"
        leader_log = self._leader_log(pstate)
        if leader_log is None:
            self._elect_leader(pstate)
            leader_log = self._leader_log(pstate)
        if leader_log is None:
            raise BrokerUnavailableError(
                f"no live replica for {topic}[{partition}] on {self.name}"
            )
        followers = []
        if acks == "all":
            for broker_id in pstate.replica_brokers:
                if broker_id == pstate.leader:
                    continue
                broker = self.brokers[broker_id]
                if not broker.alive:
                    raise NotEnoughReplicasError(
                        f"acks=all: replica broker {broker_id} of "
                        f"{topic}[{partition}] is down"
                    )
                followers.append(broker.replicas[(topic, partition)])
        if not records:
            return leader_log.end_offset
        now = self.clock.now()
        if sizes is None:
            sizes = [_record_size(record) for record in records]
        base = leader_log.append_batch(records, now, sizes)
        if producer_ctx is not None:
            self._record_producer_batch(
                producer_ctx, topic, partition, len(records), base
            )
        if followers:
            entries = leader_log.read(base, len(records))
            for log in followers:
                if log.end_offset == base:
                    # In-sync replica: share the leader's frozen entries.
                    log.extend_shared(entries, sizes)
                else:
                    log.append_batch(records, now, sizes)
        self.metrics.counter("records_in").inc(len(records))
        return base

    def fetch(
        self,
        topic: str,
        partition: int,
        offset: int,
        max_records: int = 500,
    ) -> list[LogEntry]:
        if PERF.enabled:
            PERF.inc("kafka.partition_resolutions")
            PERF.inc("kafka.fetch_calls")
        pstate = self._pstate(topic, partition)
        leader_log = self._leader_log(pstate)
        if leader_log is None:
            raise BrokerUnavailableError(
                f"no live leader for {topic}[{partition}] on {self.name}"
            )
        entries = leader_log.read(offset, max_records)
        if PERF.enabled and entries:
            PERF.inc("kafka.records_fetched", len(entries))
        self.metrics.counter("records_out").inc(len(entries))
        return entries

    def end_offset(self, topic: str, partition: int) -> int:
        pstate = self._pstate(topic, partition)
        log = self._leader_log(pstate)
        if log is None:
            raise BrokerUnavailableError(f"no live leader for {topic}[{partition}]")
        return log.end_offset

    def start_offset(self, topic: str, partition: int) -> int:
        pstate = self._pstate(topic, partition)
        log = self._leader_log(pstate)
        if log is None:
            raise BrokerUnavailableError(f"no live leader for {topic}[{partition}]")
        return log.start_offset

    def total_lag(self, topic: str, offsets: dict[int, int]) -> int:
        """Sum over partitions of (end offset - consumer position)."""
        return sum(
            self.end_offset(topic, p) - offsets.get(p, 0)
            for p in range(self.partition_count(topic))
        )

    # -- background work --------------------------------------------------------

    def pause_replication(self) -> None:
        """Chaos hook: follower replication stops until resumed, widening
        the acks=1 loss window without killing any broker."""
        self._replication_paused = True

    def resume_replication(self) -> None:
        self._replication_paused = False

    @property
    def replication_paused(self) -> bool:
        return self._replication_paused

    def replicate(self) -> int:
        """Catch followers up to their leaders (async replication step).

        Returns the number of entries copied.  Call this between produce
        and failure injection to control the replication lag window.
        """
        if self._replication_paused:
            return 0
        copied = 0
        for topic in self.topics.values():
            for pstate in topic.partitions:
                leader_log = self._leader_log(pstate)
                if leader_log is None:
                    continue
                for broker_id in pstate.replica_brokers:
                    if broker_id == pstate.leader:
                        continue
                    broker = self.brokers[broker_id]
                    if not broker.alive:
                        continue
                    follower = broker.replicas[(pstate.topic, pstate.partition)]
                    if follower.end_offset > leader_log.end_offset:
                        follower.truncate_to(leader_log.end_offset)
                    if follower.end_offset < leader_log.start_offset:
                        # Leader trimmed its head past this follower (tiered
                        # storage): re-stamp the retained leader entries
                        # under the follower's own offset numbering.
                        for entry in leader_log.iter_from(follower.end_offset):
                            follower.append(entry.record, entry.append_time)
                            copied += 1
                            self._trace_replication(pstate, broker_id, [entry])
                        continue
                    while follower.end_offset < leader_log.end_offset:
                        entries, sizes = leader_log.read_with_sizes(
                            follower.end_offset, 500
                        )
                        if not entries:
                            break
                        follower.extend_shared(entries, sizes)
                        copied += len(entries)
                        self._trace_replication(pstate, broker_id, entries)
        return copied

    def _trace_replication(
        self,
        pstate: PartitionState,
        follower_id: int,
        entries: list[LogEntry],
    ) -> None:
        if self.tracer is None:
            return
        for entry in entries:
            ctx = TraceContext.from_record(entry.record)
            if ctx is not None:
                self.tracer.record_span(
                    ctx.trace_id,
                    "replicate",
                    "kafka",
                    start=entry.append_time,
                    end=self.clock.now(),
                    topic=pstate.topic,
                    partition=pstate.partition,
                    follower=follower_id,
                )

    def apply_retention(self) -> int:
        """Expire old data on every replica per each topic's config."""
        now = self.clock.now()
        expired = 0
        for topic in self.topics.values():
            cfg = topic.config
            if cfg.retention_seconds is None and cfg.retention_bytes is None:
                continue
            for pstate in topic.partitions:
                for broker_id in pstate.replica_brokers:
                    log = self.brokers[broker_id].replicas[(topic.name, pstate.partition)]
                    expired += log.apply_retention(
                        now, cfg.retention_seconds, cfg.retention_bytes
                    )
        return expired

    def total_bytes(self) -> int:
        return sum(b.hosted_bytes() for b in self.brokers.values())
