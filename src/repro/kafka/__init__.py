"""Streaming storage: a Kafka-flavoured log plus Uber's extensions.

Core: partitioned replicated logs, producers, consumer groups.
Extensions from the paper: cluster federation (4.1.1), dead letter queues
(4.1.2), the push-based consumer proxy (4.1.3), uReplicator cross-cluster
replication and Chaperone auditing (4.1.4), self-serve admin (9.4).
"""

from repro.kafka.chaperone import AuditAlert, Chaperone
from repro.kafka.cluster import Broker, KafkaCluster, TopicConfig
from repro.kafka.consumer import ConsumedMessage, Consumer, GroupCoordinator
from repro.kafka.dlq import DlqConsumer, FailurePolicy, dlq_topic_name
from repro.kafka.federation import (
    FederatedConsumer,
    FederatedProducer,
    FederationMetadataServer,
)
from repro.kafka.log import LogEntry, PartitionLog
from repro.kafka.producer import Producer, RecordMetadata, hash_partitioner
from repro.kafka.proxy import (
    ConsumerProxy,
    DrainReport,
    EndpointError,
    UniformEndpoint,
    polling_group_makespan,
)
from repro.kafka.ureplicator import OffsetMapping, OffsetMappingStore, UReplicator
from repro.kafka.admin import SelfServeAdmin, TopicQuota
from repro.kafka.tiered import ChunkMeta, TieredPartition, TieredTopic

__all__ = [
    "AuditAlert",
    "Chaperone",
    "Broker",
    "KafkaCluster",
    "TopicConfig",
    "ConsumedMessage",
    "Consumer",
    "GroupCoordinator",
    "DlqConsumer",
    "FailurePolicy",
    "dlq_topic_name",
    "FederatedConsumer",
    "FederatedProducer",
    "FederationMetadataServer",
    "LogEntry",
    "PartitionLog",
    "Producer",
    "RecordMetadata",
    "hash_partitioner",
    "ConsumerProxy",
    "DrainReport",
    "EndpointError",
    "UniformEndpoint",
    "polling_group_makespan",
    "OffsetMapping",
    "OffsetMappingStore",
    "UReplicator",
    "SelfServeAdmin",
    "TopicQuota",
    "ChunkMeta",
    "TieredPartition",
    "TieredTopic",
]
