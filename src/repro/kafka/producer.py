"""Producer with batching, partitioning and acks semantics.

Mirrors the knobs the paper's use cases tune: surge pricing produces with
``acks=1`` for throughput (Section 5.1); financial topics force
``acks=all`` for zero loss (Section 9.2).  Every record is stamped with the
audit headers of Section 9.4 so Chaperone can track it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common import serde
from repro.common.clock import Clock, SystemClock
from repro.kafka.log import _record_size
from repro.common.errors import (
    BrokerUnavailableError,
    KafkaError,
    NotEnoughReplicasError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.perf import PERF
from repro.common.records import Record, stamp_audit_headers
from repro.common.retry import RetryPolicy
from repro.common.rng import seeded_rng
from repro.columnar import ColumnBatch, ColumnChunk
from repro.kafka.cluster import KafkaCluster, ProducerCtx
from repro.observability.trace import (
    ORIGIN_HEADER,
    TRACE_HEADER,
    SpanCollector,
    TraceContext,
)


@dataclass(frozen=True, slots=True)
class RecordMetadata:
    """Returned for each successfully produced record."""

    topic: str
    partition: int
    offset: int


def hash_partitioner(key: Any, num_partitions: int) -> int:
    """Deterministic key -> partition mapping (FNV-1a over the canonical
    serialized key).

    Stable across processes, unlike ``hash()`` with string randomization —
    the upsert design (Section 4.3.1) relies on the same key always landing
    on the same partition.  Hashing goes through
    :func:`serde.encode_key`, which is *equality*-canonical: keys that
    compare equal under Python ``==`` (``5``, ``5.0``, ``True``) land on
    the same partition.  The Pinot broker prunes partitions by hashing
    query literals with this same function, and the query executor matches
    rows with ``==`` — a type-sensitive encoding here would let a float
    literal prune the partition holding equal int-keyed rows.
    """
    if PERF.enabled:
        PERF.inc("kafka.key_hashes")
    data = serde.encode_key(key)
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc % num_partitions


@dataclass
class _Batch:
    partition: int
    records: list[Record] = field(default_factory=list)
    sent_at: list[float] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)
    bytes: int = 0


class Producer:
    """Batching producer bound to one cluster.

    ``send`` buffers records per partition; batches flush when they reach
    ``batch_size`` bytes, or when :meth:`flush` is called.  ``linger``
    exists in the config for fidelity but flushing is driven explicitly —
    our simulations control time.
    """

    def __init__(
        self,
        cluster: KafkaCluster,
        service_name: str = "producer",
        acks: str = "1",
        batch_size: int = 16_384,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: SpanCollector | None = None,
        retry_policy: RetryPolicy | None = None,
        transactional_id: str | None = None,
    ) -> None:
        if acks not in ("0", "1", "all"):
            raise KafkaError(f"acks must be one of '0', '1', 'all'; got {acks!r}")
        self.cluster = cluster
        self.service_name = service_name
        self.acks = acks
        self.batch_size = batch_size
        self.clock = clock or cluster.clock or SystemClock()
        self.tracer = tracer
        # Optional: retry transient broker failures instead of surfacing
        # them.  Backoff advances the (simulated) broker clock, so a broker
        # restart scheduled during the backoff window lets the retry land.
        self.retry_policy = retry_policy
        self._retry_rng = seeded_rng(0, f"producer.{service_name}")
        self._batches: dict[tuple[str, int], _Batch] = {}
        self._sticky: dict[str, int] = {}
        # Memoized keyed-partition choices: hash_partitioner is pure, so
        # (topic, key, partition count) -> partition never changes.  Dict
        # lookups collide keys that compare equal across types (5, 5.0,
        # True) — harmless, because hash_partitioner is equality-canonical
        # and maps all of them to the same partition anyway.
        self._partition_cache: dict[tuple[str, Any, int], int] = {}
        self._sends = 0
        self._last_flush: list[RecordMetadata] = []
        self.metrics = metrics or MetricsRegistry(f"producer.{service_name}")
        # Idempotent/transactional mode: register with the cluster for a
        # (pid, epoch) identity and number every record per partition, so
        # exact batch retries dedup broker-side and a zombie instance is
        # fenced on its first post-failover write.
        self.transactional_id = transactional_id
        self._pid: int | None = None
        self._epoch: int | None = None
        self._seqs: dict[tuple[str, int], int] = {}
        if transactional_id is not None:
            self.init_transactions()

    def init_transactions(self) -> tuple[int, int]:
        """(Re-)register with the cluster; bumps the epoch, fencing any
        older instance of the same ``transactional_id`` (zombie defense of
        the 2PC sink).  Returns the fresh ``(producer_id, epoch)``."""
        if self.transactional_id is None:
            raise KafkaError("producer has no transactional_id")
        self._pid, self._epoch = self.cluster.init_producer(self.transactional_id)
        self._seqs.clear()
        return self._pid, self._epoch

    @property
    def epoch(self) -> int | None:
        """Registered producer epoch (None when non-transactional)."""
        return self._epoch

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        event_time: float | None = None,
        tier: str = "standard",
        headers: dict[str, Any] | None = None,
    ) -> int:
        """Buffer one record for sending; returns the partition it joined.

        ``headers`` lets re-producers (e.g. a Flink sink writing derived
        results back to Kafka) continue an upstream trace instead of
        starting a new one.
        """
        record = Record(
            key=key,
            value=value,
            event_time=self.clock.now() if event_time is None else event_time,
            headers=dict(headers) if headers else {},
        )
        record = stamp_audit_headers(record, self.service_name, tier)
        if self.tracer is not None and TRACE_HEADER not in record.headers:
            traced = dict(record.headers)
            traced[TRACE_HEADER] = traced["uid"]
            traced.setdefault(ORIGIN_HEADER, record.event_time)
            record = Record(record.key, record.value, record.event_time, traced)
        partition = self._choose_partition(topic, key)
        batch = self._batches.setdefault(
            (topic, partition), _Batch(partition=partition)
        )
        batch.records.append(record)
        # Span timestamps must come from the broker-side clock: a producer
        # constructed with its own clock would otherwise emit produce spans
        # that end (at append, cluster time) before they start.
        batch.sent_at.append(self.cluster.clock.now())
        # Encode the full record envelope exactly once: the size drives
        # batch accounting here and rides along to the broker, which would
        # otherwise re-encode every record for its log byte accounting.
        size = _record_size(record)
        batch.sizes.append(size)
        batch.bytes += size
        self._sends += 1
        if batch.bytes >= self.batch_size:
            self._flush_batch(topic, partition)
        return partition

    def send_columnar(
        self,
        topic: str,
        batch: ColumnBatch,
        key_column: str | None = None,
        event_times: list[float] | None = None,
        tier: str = "standard",
    ) -> list[int]:
        """Buffer a column batch as one :class:`ColumnChunk` per partition.

        The vectorized produce path: rows are routed by the key column in
        code space (one partitioner hash per *distinct* key), each
        partition's rows ride in a single chunk-valued record, and the
        chunk's byte size is encoded once — so entry allocation, size
        encoding and audit stamping amortize over every row in the chunk.
        Returns the partitions that received rows.
        """
        n = batch.num_rows
        if n == 0:
            return []
        times = (
            list(event_times)
            if event_times is not None
            else [self.clock.now()] * n
        )
        if len(times) != n:
            raise KafkaError(f"{len(times)} event times for {n} rows")
        if PERF.enabled:
            PERF.inc("columnar.rows_routed", n)
        selections = self._partition_selections(topic, batch, key_column, n)
        touched: list[int] = []
        for partition in sorted(selections):
            rows = selections[partition]
            if len(rows) == n:
                sub, sub_times = batch, times
            else:
                sub = batch.take(rows)
                sub_times = [times[i] for i in rows]
            chunk = ColumnChunk(sub, sub_times)
            record = Record(
                key=None,
                value=chunk,
                event_time=sub_times[-1],
                headers={},
            )
            record = stamp_audit_headers(record, self.service_name, tier)
            if self.tracer is not None:
                traced = dict(record.headers)
                traced[TRACE_HEADER] = traced["uid"]
                traced.setdefault(ORIGIN_HEADER, record.event_time)
                record = Record(
                    record.key, record.value, record.event_time, traced
                )
            pending = self._batches.setdefault(
                (topic, partition), _Batch(partition=partition)
            )
            pending.records.append(record)
            pending.sent_at.append(self.cluster.clock.now())
            size = chunk.encoded_size()
            pending.sizes.append(size)
            pending.bytes += size
            self._sends += 1
            touched.append(partition)
            if pending.bytes >= self.batch_size:
                self._flush_batch(topic, partition)
        return touched

    def _partition_selections(
        self, topic: str, batch: ColumnBatch, key_column: str | None, n: int
    ) -> dict[int, list[int]]:
        """Row indices per destination partition for a column batch."""
        if key_column is None:
            return {self._choose_partition(topic, None): list(range(n))}
        vector = batch.column(key_column)
        selections: dict[int, list[int]] = {}
        if vector.is_dict:
            # One partitioner hash per distinct key, swept over the codes.
            lut = [
                self._choose_partition(topic, value)
                for value in vector.dictionary
            ]
            null_partition: int | None = None
            for i in range(n):
                code = vector.code_at(i)
                if code is None:
                    if null_partition is None:
                        null_partition = self._choose_partition(topic, None)
                    partition = null_partition
                else:
                    partition = lut[code]
                selections.setdefault(partition, []).append(i)
        else:
            for i in range(n):
                partition = self._choose_partition(topic, vector.get(i))
                selections.setdefault(partition, []).append(i)
        return selections

    def _choose_partition(self, topic: str, key: Any) -> int:
        num_partitions = self.cluster.partition_count(topic)
        if key is not None:
            try:
                cache_key = (topic, key, num_partitions)
                partition = self._partition_cache.get(cache_key)
            except TypeError:  # unhashable key: hash every time
                return hash_partitioner(key, num_partitions)
            if partition is None:
                partition = hash_partitioner(key, num_partitions)
                self._partition_cache[cache_key] = partition
            return partition
        # Sticky partitioner: fill one partition per batch window, rotate.
        current = self._sticky.get(topic, 0)
        self._sticky[topic] = current
        return current

    def _rotate_sticky(self, topic: str) -> None:
        num_partitions = self.cluster.partition_count(topic)
        self._sticky[topic] = (self._sticky.get(topic, 0) + 1) % num_partitions

    def _append_batch(
        self, topic: str, partition: int, records: list[Record], sizes: list[int]
    ) -> int:
        ctx = None
        if self.transactional_id is not None:
            assert self._pid is not None and self._epoch is not None
            ctx = ProducerCtx(
                self.transactional_id,
                self._pid,
                self._epoch,
                self._seqs.get((topic, partition), 0),
            )
        if self.retry_policy is None:
            base = self.cluster.append_batch(
                topic, partition, records, acks=self.acks, sizes=sizes,
                producer_ctx=ctx,
            )
        else:
            # Whole-batch retry is safe: the cluster verifies leadership and
            # (under acks=all) replica liveness before any record lands, so a
            # failed attempt appends nothing; with a ProducerCtx an attempt
            # that did land dedups broker-side by sequence number anyway.
            base = self.retry_policy.call(
                lambda: self.cluster.append_batch(
                    topic, partition, records, acks=self.acks, sizes=sizes,
                    producer_ctx=ctx,
                ),
                retry_on=(BrokerUnavailableError, NotEnoughReplicasError),
                clock=self.cluster.clock,
                rng=self._retry_rng,
            )
        if ctx is not None:
            self._seqs[(topic, partition)] = ctx.base_seq + len(records)
        return base

    def _flush_batch(self, topic: str, partition: int) -> list[RecordMetadata]:
        batch = self._batches.pop((topic, partition), None)
        if batch is None or not batch.records:
            return []
        base = self._append_batch(topic, partition, batch.records, batch.sizes)
        out = [
            RecordMetadata(topic, partition, base + i)
            for i in range(len(batch.records))
        ]
        if self.tracer is not None:
            end = self.cluster.clock.now()
            for i, (record, sent_at) in enumerate(
                zip(batch.records, batch.sent_at)
            ):
                ctx = TraceContext.from_record(record)
                if ctx is not None:
                    self.tracer.record_span(
                        ctx.trace_id,
                        "produce",
                        "kafka",
                        start=sent_at,
                        end=end,
                        topic=topic,
                        partition=partition,
                        offset=base + i,
                    )
        self.metrics.counter("records_sent").inc(len(batch.records))
        self.metrics.counter("batches_sent").inc()
        self.metrics.counter("bytes_sent").inc(batch.bytes)
        self._rotate_sticky(topic)
        self._last_flush = out
        return out

    def flush(self) -> list[RecordMetadata]:
        """Flush every pending batch; returns metadata for flushed records."""
        out: list[RecordMetadata] = []
        for topic, partition in list(self._batches):
            out.extend(self._flush_batch(topic, partition))
        return out

    def produce(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        event_time: float | None = None,
        tier: str = "standard",
        headers: dict[str, Any] | None = None,
    ) -> RecordMetadata:
        """Send one record immediately (no batching); returns its metadata."""
        partition = self.send(
            topic, value, key=key, event_time=event_time, tier=tier, headers=headers
        )
        flushed = self._flush_batch(topic, partition)
        if not flushed:
            # send() already flushed the batch (it filled on this record,
            # rotating the sticky partition); the record's metadata is the
            # tail of that flush.
            flushed = self._last_flush
        return flushed[-1]
