"""Producer with batching, partitioning and acks semantics.

Mirrors the knobs the paper's use cases tune: surge pricing produces with
``acks=1`` for throughput (Section 5.1); financial topics force
``acks=all`` for zero loss (Section 9.2).  Every record is stamped with the
audit headers of Section 9.4 so Chaperone can track it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common import serde
from repro.common.clock import Clock, SystemClock
from repro.common.errors import KafkaError
from repro.common.metrics import MetricsRegistry
from repro.common.records import Record, stamp_audit_headers
from repro.kafka.cluster import KafkaCluster


@dataclass(frozen=True, slots=True)
class RecordMetadata:
    """Returned for each successfully produced record."""

    topic: str
    partition: int
    offset: int


def hash_partitioner(key: Any, num_partitions: int) -> int:
    """Deterministic key -> partition mapping (FNV-1a over the serialized key).

    Stable across processes, unlike ``hash()`` with string randomization —
    the upsert design (Section 4.3.1) relies on the same key always landing
    on the same partition.
    """
    data = serde.encode(key)
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc % num_partitions


@dataclass
class _Batch:
    partition: int
    records: list[Record] = field(default_factory=list)
    bytes: int = 0


class Producer:
    """Batching producer bound to one cluster.

    ``send`` buffers records per partition; batches flush when they reach
    ``batch_size`` bytes, or when :meth:`flush` is called.  ``linger``
    exists in the config for fidelity but flushing is driven explicitly —
    our simulations control time.
    """

    def __init__(
        self,
        cluster: KafkaCluster,
        service_name: str = "producer",
        acks: str = "1",
        batch_size: int = 16_384,
        clock: Clock | None = None,
    ) -> None:
        if acks not in ("0", "1", "all"):
            raise KafkaError(f"acks must be one of '0', '1', 'all'; got {acks!r}")
        self.cluster = cluster
        self.service_name = service_name
        self.acks = acks
        self.batch_size = batch_size
        self.clock = clock or cluster.clock or SystemClock()
        self._batches: dict[tuple[str, int], _Batch] = {}
        self._sticky: dict[str, int] = {}
        self._sends = 0
        self.metrics = MetricsRegistry(f"producer.{service_name}")

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        event_time: float | None = None,
        tier: str = "standard",
    ) -> None:
        """Buffer one record for sending."""
        record = Record(
            key=key,
            value=value,
            event_time=self.clock.now() if event_time is None else event_time,
        )
        record = stamp_audit_headers(record, self.service_name, tier)
        partition = self._choose_partition(topic, key)
        batch = self._batches.setdefault(
            (topic, partition), _Batch(partition=partition)
        )
        batch.records.append(record)
        batch.bytes += serde.encoded_size(value)
        self._sends += 1
        if batch.bytes >= self.batch_size:
            self._flush_batch(topic, partition)

    def _choose_partition(self, topic: str, key: Any) -> int:
        num_partitions = self.cluster.partition_count(topic)
        if key is not None:
            return hash_partitioner(key, num_partitions)
        # Sticky partitioner: fill one partition per batch window, rotate.
        current = self._sticky.get(topic, 0)
        self._sticky[topic] = current
        return current

    def _rotate_sticky(self, topic: str) -> None:
        num_partitions = self.cluster.partition_count(topic)
        self._sticky[topic] = (self._sticky.get(topic, 0) + 1) % num_partitions

    def _flush_batch(self, topic: str, partition: int) -> list[RecordMetadata]:
        batch = self._batches.pop((topic, partition), None)
        if batch is None or not batch.records:
            return []
        out = []
        for record in batch.records:
            offset = self.cluster.append(topic, partition, record, acks=self.acks)
            out.append(RecordMetadata(topic, partition, offset))
        self.metrics.counter("records_sent").inc(len(batch.records))
        self.metrics.counter("batches_sent").inc()
        self.metrics.counter("bytes_sent").inc(batch.bytes)
        self._rotate_sticky(topic)
        return out

    def flush(self) -> list[RecordMetadata]:
        """Flush every pending batch; returns metadata for flushed records."""
        out: list[RecordMetadata] = []
        for topic, partition in list(self._batches):
            out.extend(self._flush_batch(topic, partition))
        return out

    def produce(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        event_time: float | None = None,
        tier: str = "standard",
    ) -> RecordMetadata:
        """Send one record immediately (no batching); returns its metadata."""
        self.send(topic, value, key=key, event_time=event_time, tier=tier)
        partition = self._choose_partition(topic, key)
        flushed = self._flush_batch(topic, partition)
        return flushed[-1]
