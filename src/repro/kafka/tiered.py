"""Tiered storage for the streaming layer (Section 11, "Tiered storage").

"Storage tiering improves both cost efficiency by storing colder data in
a cheaper storage medium as well as elasticity by separating data storage
and serving layers."

:class:`TieredLog` wraps a partition's hot log: closed chunks of the log
older than ``hot_retention_seconds`` are offloaded as immutable chunk
objects to the blob store and trimmed from broker memory/disk.  Reads are
transparent: offsets still resolve, with cold reads fetching (and
charging) chunk downloads.  The cost model exposes hot vs cold bytes so
the ablation bench can show the cost/latency trade.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.common import serde
from repro.common.errors import KafkaError, OffsetOutOfRangeError
from repro.common.records import Record
from repro.kafka.cluster import KafkaCluster
from repro.kafka.log import LogEntry, PartitionLog
from repro.storage.blobstore import BlobStore

DEFAULT_CHUNK_RECORDS = 500

# Relative storage cost per byte (the "cheaper storage medium" ratio;
# object storage is roughly an order of magnitude cheaper than broker
# NVMe when replication is included).
HOT_COST_PER_BYTE = 10.0
COLD_COST_PER_BYTE = 1.0


@dataclass(frozen=True, slots=True)
class ChunkMeta:
    """Catalog entry for one offloaded chunk."""

    base_offset: int
    end_offset: int  # exclusive
    blob_key: str
    size_bytes: int
    max_append_time: float


class TieredPartition:
    """One partition's two-tier view: cold chunk catalog + the hot log."""

    def __init__(
        self,
        cluster: KafkaCluster,
        topic: str,
        partition: int,
        store: BlobStore,
        hot_retention_seconds: float,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> None:
        self.cluster = cluster
        self.topic = topic
        self.partition = partition
        self.store = store
        self.hot_retention_seconds = hot_retention_seconds
        self.chunk_records = chunk_records
        self.chunks: list[ChunkMeta] = []
        self.cold_reads = 0
        self.hot_reads = 0

    # -- offload path -----------------------------------------------------------

    def _hot_log(self) -> PartitionLog:
        pstate = self.cluster._pstate(self.topic, self.partition)
        log = self.cluster._leader_log(pstate)
        if log is None:
            raise KafkaError(
                f"no live leader for {self.topic}[{self.partition}]"
            )
        return log

    def offload_step(self) -> int:
        """Offload every full chunk older than the hot retention; returns
        records moved to the cold tier."""
        log = self._hot_log()
        now = self.cluster.clock.now()
        moved = 0
        while True:
            start = log.start_offset
            available = log.end_offset - start
            if available < self.chunk_records:
                return moved
            entries = log.read(start, self.chunk_records)
            if now - entries[-1].append_time <= self.hot_retention_seconds:
                return moved
            payload = [
                {
                    "offset": e.offset,
                    "key": e.record.key,
                    "value": e.record.value,
                    "event_time": e.record.event_time,
                    "headers": dict(e.record.headers),
                    "append_time": e.append_time,
                }
                for e in entries
            ]
            data = serde.encode(payload)
            blob_key = (
                f"tiered/{self.cluster.name}/{self.topic}/{self.partition}/"
                f"chunk-{start:012d}"
            )
            self.store.put(blob_key, data)
            self.chunks.append(
                ChunkMeta(
                    base_offset=start,
                    end_offset=entries[-1].offset + 1,
                    blob_key=blob_key,
                    size_bytes=len(data),
                    max_append_time=entries[-1].append_time,
                )
            )
            # Trim the hot tier on every replica: the durable copy is the
            # cold chunk now.
            pstate = self.cluster._pstate(self.topic, self.partition)
            for broker_id in pstate.replica_brokers:
                replica = self.cluster.brokers[broker_id].replicas[
                    (self.topic, self.partition)
                ]
                replica.trim_head_to(entries[-1].offset + 1)
            moved += len(entries)

    # -- transparent reads --------------------------------------------------------

    def log_start_offset(self) -> int:
        """The true earliest offset, counting the cold tier."""
        if self.chunks:
            return self.chunks[0].base_offset
        return self._hot_log().start_offset

    def fetch(self, offset: int, max_records: int = 500) -> list[LogEntry]:
        """Read spanning tiers: cold chunks first, then the hot log."""
        log = self._hot_log()
        if offset >= log.start_offset:
            self.hot_reads += 1
            return log.read(offset, max_records)
        index = bisect_right([c.base_offset for c in self.chunks], offset) - 1
        if index < 0 or offset >= self.chunks[index].end_offset:
            raise OffsetOutOfRangeError(
                f"offset {offset} is below the cold tier start"
            )
        chunk = self.chunks[index]
        self.cold_reads += 1
        payload = serde.decode(self.store.get(chunk.blob_key))
        out = []
        for item in payload:
            if item["offset"] < offset:
                continue
            if len(out) >= max_records:
                break
            out.append(
                LogEntry(
                    offset=item["offset"],
                    record=Record(
                        key=item["key"],
                        value=item["value"],
                        event_time=item["event_time"],
                        headers=item["headers"],
                    ),
                    append_time=item["append_time"],
                )
            )
        return out

    # -- cost accounting --------------------------------------------------------------

    def hot_bytes(self) -> int:
        return self._hot_log().size_bytes

    def cold_bytes(self) -> int:
        return sum(c.size_bytes for c in self.chunks)

    def storage_cost(self) -> float:
        """Relative cost: replicated hot bytes at broker prices + single-
        copy cold bytes at object-store prices."""
        pstate = self.cluster._pstate(self.topic, self.partition)
        replication = len(pstate.replica_brokers)
        return (
            self.hot_bytes() * replication * HOT_COST_PER_BYTE
            + self.cold_bytes() * COLD_COST_PER_BYTE
        )


class TieredTopic:
    """Tiering manager for every partition of one topic."""

    def __init__(
        self,
        cluster: KafkaCluster,
        topic: str,
        store: BlobStore,
        hot_retention_seconds: float,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> None:
        if hot_retention_seconds <= 0:
            raise KafkaError("hot retention must be positive")
        self.partitions = [
            TieredPartition(
                cluster, topic, p, store, hot_retention_seconds, chunk_records
            )
            for p in range(cluster.partition_count(topic))
        ]

    def offload_step(self) -> int:
        return sum(p.offload_step() for p in self.partitions)

    def fetch(self, partition: int, offset: int, max_records: int = 500):
        return self.partitions[partition].fetch(offset, max_records)

    def total_hot_bytes(self) -> int:
        return sum(p.hot_bytes() for p in self.partitions)

    def total_cold_bytes(self) -> int:
        return sum(p.cold_bytes() for p in self.partitions)

    def total_cost(self) -> float:
        return sum(p.storage_cost() for p in self.partitions)

    def log_start_offset(self, partition: int) -> int:
        return self.partitions[partition].log_start_offset()
