"""Dead letter queues on top of the Kafka interface (Section 4.1.2).

In plain Kafka a consumer facing a poison message must either drop it
(data loss) or retry forever (head-of-line blocking).  Uber's DLQ strategy
publishes a message that failed several processing attempts to a dead
letter topic, keeping it out of the live path; users can later *purge*
(drop) or *merge* (re-inject for another attempt) the dead letters
(Section 4.1.4's merge-back path).

Design points, post-chaos-hardening:

* The dead letter topic mirrors the source topic's partition count and a
  dead letter lands on the *same partition index* it came from, so the
  DLQ preserves the source's ordering/parallelism instead of collapsing
  everything onto partition 0.
* Every dead letter is stamped with provenance headers (source topic,
  partition, offset, attempt count) so merge-back can route the record to
  exactly where it came from and auditing can trace it.
* Retries run under the shared :class:`~repro.common.retry.RetryPolicy`;
  ``max_retries`` is the *total* number of attempts, matching this
  module's documented "after ``max_retries`` failed attempts" semantics
  (the old code made ``1 + max_retries`` attempts through two duplicated
  loops).

:class:`DlqConsumer` wraps a regular consumer with this policy; it is also
reused by the consumer proxy (Section 4.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.common.errors import KafkaError, RetryExhaustedError
from repro.common.metrics import MetricsRegistry
from repro.common.records import Record
from repro.common.retry import RetryPolicy, immediate
from repro.common.rng import seeded_rng
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.kafka.consumer import ConsumedMessage, Consumer


class FailurePolicy(Enum):
    """The three options Section 4.1.2 contrasts."""

    DROP = "drop"  # lose the message after retries
    BLOCK = "block"  # retry indefinitely, clogging the partition
    DLQ = "dlq"  # divert to the dead letter topic


def dlq_topic_name(topic: str, group: str) -> str:
    return f"{topic}.{group}.dlq"


# Provenance headers stamped on every dead letter (merge-back + auditing).
DLQ_SOURCE_TOPIC = "dlq.source.topic"
DLQ_SOURCE_PARTITION = "dlq.source.partition"
DLQ_SOURCE_OFFSET = "dlq.source.offset"
DLQ_ATTEMPTS = "dlq.attempts"
_DLQ_HEADERS = (DLQ_SOURCE_TOPIC, DLQ_SOURCE_PARTITION, DLQ_SOURCE_OFFSET,
                DLQ_ATTEMPTS)


def make_dead_letter(message: ConsumedMessage, attempts: int) -> Record:
    """The record to publish to the DLQ: original payload + provenance."""
    record = message.entry.record
    headers = dict(record.headers)
    headers[DLQ_SOURCE_TOPIC] = message.topic
    headers[DLQ_SOURCE_PARTITION] = message.partition
    headers[DLQ_SOURCE_OFFSET] = message.offset
    headers[DLQ_ATTEMPTS] = attempts
    return Record(record.key, record.value, record.event_time, headers)


def strip_dlq_headers(record: Record) -> Record:
    """The record to merge back: original payload, provenance removed."""
    headers = {k: v for k, v in record.headers.items() if k not in _DLQ_HEADERS}
    return Record(record.key, record.value, record.event_time, headers)


def create_dlq_topic(cluster: KafkaCluster, source_topic: str, group: str) -> str:
    """Create (if needed) the group's DLQ topic, mirroring the source
    topic's partition count; returns its name."""
    name = dlq_topic_name(source_topic, group)
    if not cluster.has_topic(name):
        cluster.create_topic(
            name,
            TopicConfig(
                partitions=cluster.partition_count(source_topic),
                replication_factor=1,
            ),
        )
    return name


@dataclass
class ProcessingStats:
    processed: int = 0
    failed_attempts: int = 0
    dropped: int = 0
    dead_lettered: int = 0
    blocked_on: ConsumedMessage | None = None


class DlqConsumer:
    """Consumer wrapper that applies a failure policy with bounded retries.

    ``handler(message) -> None`` raising marks the attempt failed.  With
    policy DLQ, after ``max_retries`` failed attempts (total — the retry
    policy's ``max_attempts``) the record is published to the dead letter
    topic and the consumer moves on.
    """

    def __init__(
        self,
        cluster: KafkaCluster,
        consumer: Consumer,
        handler: Callable[[ConsumedMessage], None],
        policy: FailurePolicy = FailurePolicy.DLQ,
        max_retries: int = 3,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if max_retries < 1:
            raise KafkaError(f"max_retries must be >= 1, got {max_retries}")
        self.cluster = cluster
        self.consumer = consumer
        self.handler = handler
        self.policy = policy
        self.retry_policy = retry_policy or immediate(max_retries)
        self.max_retries = self.retry_policy.max_attempts
        self.stats = ProcessingStats()
        self.metrics = MetricsRegistry(f"dlq.{consumer.group}")
        self._retry_rng = seeded_rng(0, f"dlq.{consumer.group}")
        self._dlq_topic = dlq_topic_name(consumer.topic, consumer.group)
        # partition -> how many of its dead letters were merged or purged
        self._merge_positions: dict[int, int] = {}
        if policy is FailurePolicy.DLQ:
            create_dlq_topic(cluster, consumer.topic, consumer.group)

    @property
    def dlq_topic(self) -> str:
        return self._dlq_topic

    def _attempt(self, message: ConsumedMessage) -> None:
        """One handler invocation; raises on failure (for the retry policy)."""
        try:
            self.handler(message)
        except Exception:
            self.stats.failed_attempts += 1
            self.metrics.counter("failed_attempts").inc()
            raise
        self.stats.processed += 1
        self.metrics.counter("processed").inc()

    def _process(self, message: ConsumedMessage) -> bool:
        """Run the handler under the shared retry policy.

        True when some attempt succeeded; False when all ``max_retries``
        attempts failed.  One code path for every failure policy — the old
        implementation duplicated this loop per policy.
        """
        try:
            self.retry_policy.call(
                lambda: self._attempt(message),
                clock=self.cluster.clock,
                rng=self._retry_rng,
            )
        except RetryExhaustedError:
            return False
        return True

    def process_batch(self, max_records: int = 500) -> int:
        """Poll once and process the batch under the failure policy.

        Returns the number of records that left the live path (processed,
        dropped, or dead-lettered).  With policy BLOCK, processing stops at
        the first permanently failing record and the method returns early —
        subsequent records in the partition stay stuck behind it, which is
        exactly the pathology the DLQ eliminates.
        """
        completed = 0
        for message in self.consumer.poll(max_records):
            if self._process(message):
                completed += 1
                continue
            if self.policy is FailurePolicy.BLOCK:
                self.stats.blocked_on = message
                # Rewind so the failed record is re-fetched next poll.
                self.consumer.seek(message.partition, message.offset)
                return completed
            if self.policy is FailurePolicy.DROP:
                self.stats.dropped += 1
                self.metrics.counter("dropped").inc()
            else:  # DLQ: same partition index, provenance stamped
                self.cluster.append(
                    self._dlq_topic,
                    message.partition,
                    make_dead_letter(message, self.max_retries),
                )
                self.stats.dead_lettered += 1
                self.metrics.counter("dead_lettered").inc()
            completed += 1
        self.consumer.commit()
        return completed

    # -- dead letter management (user-driven, Section 4.1.2) -------------------

    def dead_letters(self) -> list[ConsumedMessage]:
        """Peek at the current contents of the dead letter topic (all
        partitions, partition-major order)."""
        out = []
        for partition in range(self.cluster.partition_count(self._dlq_topic)):
            start = self.cluster.start_offset(self._dlq_topic, partition)
            end = self.cluster.end_offset(self._dlq_topic, partition)
            offset = start
            while offset < end:
                for entry in self.cluster.fetch(
                    self._dlq_topic, partition, offset, 1000
                ):
                    out.append(
                        ConsumedMessage(
                            self._dlq_topic, partition, entry.offset, entry
                        )
                    )
                    offset = entry.offset + 1
        return out

    def _pending_by_partition(self) -> dict[int, list[ConsumedMessage]]:
        pending: dict[int, list[ConsumedMessage]] = {}
        for message in self.dead_letters():
            pending.setdefault(message.partition, []).append(message)
        return {
            partition: messages[self._merge_positions.get(partition, 0):]
            for partition, messages in pending.items()
        }

    def merge_dead_letters(self) -> int:
        """Re-inject dead letters into the live topic for another attempt.

        Each record returns to the source partition stamped in its
        provenance headers (the §4.1.4 merge-back path), with the DLQ
        headers stripped so a re-failure re-enters the DLQ cleanly.
        Returns the number merged.  The DLQ itself is not truncated (Kafka
        topics are immutable); a real deployment tracks a merge offset per
        partition, which we do too.
        """
        merged = 0
        for partition, messages in sorted(self._pending_by_partition().items()):
            for message in messages:
                record = message.entry.record
                target_topic = record.headers.get(
                    DLQ_SOURCE_TOPIC, self.consumer.topic
                )
                target = record.headers.get(DLQ_SOURCE_PARTITION, partition)
                self.cluster.append(
                    target_topic, target, strip_dlq_headers(record)
                )
                merged += 1
            self._merge_positions[partition] = (
                self._merge_positions.get(partition, 0) + len(messages)
            )
        return merged

    def purge_dead_letters(self) -> int:
        """Acknowledge-and-forget everything currently in the DLQ."""
        purged = 0
        for partition, messages in self._pending_by_partition().items():
            purged += len(messages)
            self._merge_positions[partition] = (
                self._merge_positions.get(partition, 0) + len(messages)
            )
        return purged
