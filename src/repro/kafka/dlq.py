"""Dead letter queues on top of the Kafka interface (Section 4.1.2).

In plain Kafka a consumer facing a poison message must either drop it
(data loss) or retry forever (head-of-line blocking).  Uber's DLQ strategy
publishes a message that failed several processing attempts to a dead
letter topic, keeping it out of the live path; users can later *purge*
(drop) or *merge* (re-inject for another attempt) the dead letters.

:class:`DlqConsumer` wraps a regular consumer with this policy; it is also
reused by the consumer proxy (Section 4.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.common.errors import KafkaError
from repro.common.metrics import MetricsRegistry
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.kafka.consumer import ConsumedMessage, Consumer


class FailurePolicy(Enum):
    """The three options Section 4.1.2 contrasts."""

    DROP = "drop"  # lose the message after retries
    BLOCK = "block"  # retry indefinitely, clogging the partition
    DLQ = "dlq"  # divert to the dead letter topic


def dlq_topic_name(topic: str, group: str) -> str:
    return f"{topic}.{group}.dlq"


@dataclass
class ProcessingStats:
    processed: int = 0
    failed_attempts: int = 0
    dropped: int = 0
    dead_lettered: int = 0
    blocked_on: ConsumedMessage | None = None


class DlqConsumer:
    """Consumer wrapper that applies a failure policy with bounded retries.

    ``handler(message) -> None`` raising marks the attempt failed.  With
    policy DLQ, after ``max_retries`` failed attempts the record is
    published to the dead letter topic and the consumer moves on.
    """

    def __init__(
        self,
        cluster: KafkaCluster,
        consumer: Consumer,
        handler: Callable[[ConsumedMessage], None],
        policy: FailurePolicy = FailurePolicy.DLQ,
        max_retries: int = 3,
    ) -> None:
        if max_retries < 0:
            raise KafkaError(f"max_retries must be >= 0, got {max_retries}")
        self.cluster = cluster
        self.consumer = consumer
        self.handler = handler
        self.policy = policy
        self.max_retries = max_retries
        self.stats = ProcessingStats()
        self.metrics = MetricsRegistry(f"dlq.{consumer.group}")
        self._dlq_topic = dlq_topic_name(consumer.topic, consumer.group)
        self._merge_position = 0
        if policy is FailurePolicy.DLQ and not cluster.has_topic(self._dlq_topic):
            cluster.create_topic(
                self._dlq_topic,
                TopicConfig(partitions=1, replication_factor=1),
            )

    @property
    def dlq_topic(self) -> str:
        return self._dlq_topic

    def _attempt(self, message: ConsumedMessage) -> bool:
        try:
            self.handler(message)
        except Exception:
            self.stats.failed_attempts += 1
            self.metrics.counter("failed_attempts").inc()
            return False
        self.stats.processed += 1
        self.metrics.counter("processed").inc()
        return True

    def process_batch(self, max_records: int = 500) -> int:
        """Poll once and process the batch under the failure policy.

        Returns the number of records that left the live path (processed,
        dropped, or dead-lettered).  With policy BLOCK, processing stops at
        the first permanently failing record and the method returns early —
        subsequent records in the partition stay stuck behind it, which is
        exactly the pathology the DLQ eliminates.
        """
        completed = 0
        for message in self.consumer.poll(max_records):
            if self._attempt(message):
                completed += 1
                continue
            retried_ok = False
            if self.policy is FailurePolicy.BLOCK:
                # Retry "indefinitely": bounded here to keep simulations
                # finite, but the record never advances on failure.
                for __ in range(self.max_retries):
                    if self._attempt(message):
                        retried_ok = True
                        break
                if not retried_ok:
                    self.stats.blocked_on = message
                    # Rewind so the failed record is re-fetched next poll.
                    self.consumer.seek(message.partition, message.offset)
                    return completed
                completed += 1
                continue
            for __ in range(self.max_retries):
                if self._attempt(message):
                    retried_ok = True
                    break
            if retried_ok:
                completed += 1
            elif self.policy is FailurePolicy.DROP:
                self.stats.dropped += 1
                self.metrics.counter("dropped").inc()
                completed += 1
            else:  # DLQ
                self.cluster.append(self._dlq_topic, 0, message.entry.record)
                self.stats.dead_lettered += 1
                self.metrics.counter("dead_lettered").inc()
                completed += 1
        self.consumer.commit()
        return completed

    # -- dead letter management (user-driven, Section 4.1.2) -------------------

    def dead_letters(self) -> list[ConsumedMessage]:
        """Peek at the current contents of the dead letter topic."""
        out = []
        start = self.cluster.start_offset(self._dlq_topic, 0)
        end = self.cluster.end_offset(self._dlq_topic, 0)
        offset = start
        while offset < end:
            for entry in self.cluster.fetch(self._dlq_topic, 0, offset, 1000):
                out.append(ConsumedMessage(self._dlq_topic, 0, entry.offset, entry))
                offset = entry.offset + 1
        return out

    def merge_dead_letters(self) -> int:
        """Re-inject dead letters into the live topic for another attempt.

        Returns the number merged.  The DLQ itself is not truncated (Kafka
        topics are immutable); a real deployment tracks a merge offset,
        which we do too.
        """
        from repro.kafka.producer import hash_partitioner

        merged = 0
        for message in self.dead_letters()[self._merge_position :]:
            record = message.entry.record
            # Re-publish to the source topic preserving the key-based
            # placement used originally.
            num = self.cluster.partition_count(self.consumer.topic)
            target = (
                hash_partitioner(record.key, num) if record.key is not None else 0
            )
            self.cluster.append(self.consumer.topic, target, record)
            merged += 1
        self._merge_position += merged
        return merged

    def purge_dead_letters(self) -> int:
        """Acknowledge-and-forget everything currently in the DLQ."""
        pending = len(self.dead_letters()) - self._merge_position
        self._merge_position += pending
        return pending
