"""The Kafka consumer proxy (Section 4.1.3, Figure 4).

The proxy consumes from Kafka on behalf of an application and *pushes*
messages to a user-registered gRPC endpoint.  The complexities of the
consumer library live in the proxy; applications hold only a thin,
machine-generated client (here: the :class:`GrpcEndpoint` protocol).

Two properties from the paper are reproduced measurably:

* **Parallelism beyond the partition count.**  Kafka's group model caps
  live members at the number of partitions.  Most Uber pub/sub use cases
  assume no cross-message dependency, so the proxy dispatches each message
  to any free worker — a topic with 8 partitions can be processed by 64
  concurrent workers, which matters enormously for slow consumers.
* **Sophisticated error handling.**  Failed deliveries are retried and
  then routed to the DLQ (Section 4.1.2), so poison messages never block
  the live stream.

Time model: workers are simulated executors.  Each delivery occupies one
worker for the endpoint's reported service time; :meth:`drain` runs the
discrete-event loop until the group lag reaches zero and advances the
simulated clock to the makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Protocol

from repro.common.clock import SimulatedClock
from repro.common.errors import KafkaError, RetryExhaustedError
from repro.common.metrics import MetricsRegistry
from repro.common.retry import RetryPolicy, immediate
from repro.common.rng import seeded_rng
from repro.kafka.cluster import KafkaCluster
from repro.kafka.consumer import ConsumedMessage, Consumer, GroupCoordinator
from repro.kafka.dlq import create_dlq_topic, make_dead_letter


class EndpointError(KafkaError):
    """The downstream service failed to process a delivery."""


class GrpcEndpoint(Protocol):
    """The thin, machine-generated service interface applications expose."""

    def invoke(self, message: ConsumedMessage) -> float:
        """Process one message; returns the service time in seconds.

        Raises :class:`EndpointError` if processing failed.
        """
        ...


@dataclass
class UniformEndpoint:
    """A test/bench endpoint with constant service time and an optional
    failure predicate."""

    service_time: float = 0.01
    fail_when: object = None  # callable(message) -> bool
    invocations: int = 0

    def invoke(self, message: ConsumedMessage) -> float:
        self.invocations += 1
        if self.fail_when is not None and self.fail_when(message):
            raise EndpointError(f"endpoint rejected offset {message.offset}")
        return self.service_time


@dataclass
class DrainReport:
    """Outcome of one :meth:`ConsumerProxy.drain` run."""

    delivered: int = 0
    retries: int = 0
    dead_lettered: int = 0
    makespan: float = 0.0
    peak_parallelism: int = 0
    per_worker_busy: list[float] = field(default_factory=list)


class ConsumerProxy:
    """Push-based dispatch from a topic to a worker pool."""

    def __init__(
        self,
        cluster: KafkaCluster,
        coordinator: GroupCoordinator,
        group: str,
        topic: str,
        endpoint: GrpcEndpoint,
        num_workers: int = 8,
        max_retries: int = 3,
        clock: SimulatedClock | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if num_workers < 1:
            raise KafkaError(f"num_workers must be >= 1, got {num_workers}")
        if max_retries < 1:
            raise KafkaError(f"max_retries must be >= 1, got {max_retries}")
        self.cluster = cluster
        self.topic = topic
        self.group = group
        self.endpoint = endpoint
        self.num_workers = num_workers
        # Same semantics as the DLQ consumer: total attempts per delivery.
        self.retry_policy = retry_policy or immediate(max_retries)
        self.max_retries = self.retry_policy.max_attempts
        self.clock = clock if clock is not None else cluster.clock
        if not isinstance(self.clock, SimulatedClock):
            raise KafkaError("ConsumerProxy requires a SimulatedClock")
        # The proxy itself is one "member" consuming every partition.
        self._consumer = Consumer(cluster, coordinator, group, topic, "proxy")
        self._dlq_topic = create_dlq_topic(cluster, topic, group)
        self._retry_rng = seeded_rng(0, f"proxy.{group}")
        self.metrics = MetricsRegistry(f"proxy.{group}")

    @property
    def dlq_topic(self) -> str:
        return self._dlq_topic

    def drain(self, max_messages: int | None = None) -> DrainReport:
        """Dispatch the current backlog to the worker pool until caught up.

        Advances the simulated clock to the completion time of the last
        delivery.  Per-key ordering is not enforced (the paper notes most
        pub/sub use cases have no cross-message dependencies).
        """
        report = DrainReport(per_worker_busy=[0.0] * self.num_workers)
        start_time = self.clock.now()
        # worker heap: (free_at, worker_index)
        workers = [(start_time, i) for i in range(self.num_workers)]
        heapq.heapify(workers)
        busy = [0.0] * self.num_workers
        last_completion = start_time
        dispatched = 0
        while True:
            batch = self._consumer.poll(max_records=1000)
            if not batch:
                break
            for message in batch:
                free_at, worker = heapq.heappop(workers)
                begin = max(free_at, start_time)
                duration, retries, dead = self._deliver(message)
                report.retries += retries
                if dead:
                    report.dead_lettered += 1
                else:
                    report.delivered += 1
                end = begin + duration
                busy[worker] += duration
                last_completion = max(last_completion, end)
                heapq.heappush(workers, (end, worker))
                dispatched += 1
                if max_messages is not None and dispatched >= max_messages:
                    break
            self._consumer.commit()
            if max_messages is not None and dispatched >= max_messages:
                break
        report.makespan = last_completion - start_time
        report.per_worker_busy = busy
        report.peak_parallelism = min(self.num_workers, dispatched)
        self.clock.run_until(max(last_completion, self.clock.now()))
        self.metrics.counter("delivered").inc(report.delivered)
        self.metrics.counter("dead_lettered").inc(report.dead_lettered)
        return report

    def _deliver(self, message: ConsumedMessage) -> tuple[float, int, bool]:
        """Attempt delivery under the retry policy.

        Returns (total worker time consumed, failed-attempt count,
        dead-lettered?).  Failed attempts still cost service time — the
        endpoint did work before failing.  Backoff, if the policy has any,
        is worker idle time and is not charged to the worker budget.
        """
        total = 0.0
        failures = 0

        def attempt() -> None:
            nonlocal total, failures
            try:
                total += self.endpoint.invoke(message)
            except EndpointError:
                failures += 1
                # Assume a failed call costs a full service time slot.
                total += getattr(self.endpoint, "service_time", 0.01)
                raise

        try:
            self.retry_policy.call(
                attempt, retry_on=(EndpointError,), rng=self._retry_rng
            )
        except RetryExhaustedError:
            # Same routing as DlqConsumer: source partition + provenance.
            self.cluster.append(
                self._dlq_topic,
                message.partition,
                make_dead_letter(message, self.max_retries),
            )
            return total, failures, True
        return total, failures, False


def polling_group_makespan(
    cluster: KafkaCluster,
    topic: str,
    num_consumers: int,
    service_time: float,
) -> float:
    """Baseline: time for a classic polling consumer group to drain the
    current backlog.

    Members are range-assigned partitions; each member processes its
    partitions sequentially, one message at a time.  Effective parallelism
    is therefore ``min(num_consumers, partitions)`` — the cap the proxy
    removes.  Returns the makespan in seconds.
    """
    partitions = cluster.partition_count(topic)
    members = min(num_consumers, partitions)
    if members < 1:
        raise KafkaError("need at least one consumer")
    per_member_messages = [0] * members
    per_partition = [
        cluster.end_offset(topic, p) - cluster.start_offset(topic, p)
        for p in range(partitions)
    ]
    # Range assignment: same arithmetic as GroupCoordinator.assignment.
    per = partitions // members
    extra = partitions % members
    start = 0
    for member in range(members):
        count = per + (1 if member < extra else 0)
        per_member_messages[member] = sum(per_partition[start : start + count])
        start += count
    return max(per_member_messages) * service_time
