"""uReplicator: cross-cluster Kafka replication (Section 4.1.4).

Replicates topic partitions from a source cluster to a destination cluster
(regional -> aggregate in the all-active setup of Section 6).  Reproduced
design points:

* **Minimal-movement rebalancing.**  Partition->worker assignment is
  *sticky*: when workers join or leave, only the partitions that must move
  do.  A naive baseline (full round-robin reassignment) is provided for the
  comparison bench.
* **Elasticity under bursty traffic.**  A pool of standby workers absorbs
  load: when a worker's assigned lag exceeds a threshold, standbys are
  activated and the hottest partitions are redistributed to them.
* **Offset mapping checkpoints.**  While replicating, the worker
  periodically checkpoints the source->destination offset mapping into an
  :class:`OffsetMappingStore` — the input to the active/passive offset sync
  of Section 6 (Figure 7).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.common.errors import (
    BrokerUnavailableError,
    KafkaError,
    NotEnoughReplicasError,
    RetryExhaustedError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.records import Record
from repro.common.retry import RetryPolicy
from repro.common.rng import seeded_rng
from repro.kafka.cluster import KafkaCluster, TopicConfig


@dataclass(frozen=True, slots=True)
class OffsetMapping:
    """One checkpoint: source offset ``src`` replicated to dest offset ``dst``."""

    src: int
    dst: int
    checkpoint_time: float


class OffsetMappingStore:
    """Active-active DB of offset mapping checkpoints (Figure 7)."""

    def __init__(self) -> None:
        self._mappings: dict[tuple[str, str, int], list[OffsetMapping]] = {}

    def record(
        self,
        route: str,
        topic: str,
        partition: int,
        src: int,
        dst: int,
        when: float,
    ) -> None:
        """Append a checkpoint for a replication route (e.g. "regionA->aggB")."""
        history = self._mappings.setdefault((route, topic, partition), [])
        if history and src < history[-1].src:
            raise KafkaError(
                f"offset mapping checkpoints must be monotonic; "
                f"{src} < {history[-1].src}"
            )
        history.append(OffsetMapping(src, dst, when))

    def translate(self, route: str, topic: str, partition: int, src: int) -> int | None:
        """Largest checkpointed destination offset whose source offset is
        <= ``src``; None if nothing is checkpointed yet.

        This is the conservative translation an active/passive consumer
        uses at failover: it may re-read a little (between checkpoints) but
        never skips data.
        """
        history = self._mappings.get((route, topic, partition))
        if not history:
            return None
        index = bisect_right([m.src for m in history], src)
        if index == 0:
            return None
        return history[index - 1].dst

    def latest(self, route: str, topic: str, partition: int) -> OffsetMapping | None:
        history = self._mappings.get((route, topic, partition))
        return history[-1] if history else None


@dataclass
class _Worker:
    name: str
    standby: bool = False
    active: bool = True
    assigned: set[int] = field(default_factory=set)  # partition ids
    replicated: int = 0


class UReplicator:
    """Replicates one topic between two clusters with a worker fleet."""

    def __init__(
        self,
        source: KafkaCluster,
        destination: KafkaCluster,
        topic: str,
        num_workers: int = 2,
        num_standby: int = 1,
        worker_throughput: int = 1000,
        checkpoint_store: OffsetMappingStore | None = None,
        checkpoint_interval: int = 100,
        burst_lag_threshold: int = 5000,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if num_workers < 1:
            raise KafkaError("uReplicator needs at least one active worker")
        self.source = source
        self.destination = destination
        self.topic = topic
        self.worker_throughput = worker_throughput
        self.checkpoint_store = checkpoint_store
        self.checkpoint_interval = checkpoint_interval
        self.burst_lag_threshold = burst_lag_threshold
        # Broker blips on either side retry under this policy before the
        # worker gives the partition up for the round.
        self.retry_policy = retry_policy
        self.route = f"{source.name}->{destination.name}"
        self._retry_rng = seeded_rng(0, f"ureplicator.{self.route}")
        if not destination.has_topic(topic):
            src_cfg = source.topics[topic].config
            destination.create_topic(
                topic,
                TopicConfig(
                    partitions=src_cfg.partitions,
                    replication_factor=min(
                        src_cfg.replication_factor, destination.num_brokers
                    ),
                ),
            )
        self._positions: dict[int, int] = {
            p: source.start_offset(topic, p)
            for p in range(source.partition_count(topic))
        }
        self._since_checkpoint: dict[int, int] = {p: 0 for p in self._positions}
        self.workers: list[_Worker] = [
            _Worker(f"worker-{i}") for i in range(num_workers)
        ]
        self.workers.extend(
            _Worker(f"standby-{i}", standby=True, active=False)
            for i in range(num_standby)
        )
        self.metrics = MetricsRegistry(f"ureplicator.{self.route}")
        self.rebalance(sticky=True)

    # -- assignment -------------------------------------------------------------

    def _active_workers(self) -> list[_Worker]:
        return [w for w in self.workers if w.active]

    def rebalance(self, sticky: bool = True) -> int:
        """(Re)assign partitions to active workers.

        With ``sticky=True`` (uReplicator's algorithm) existing placements
        are kept wherever possible and only the excess moves.  With
        ``sticky=False`` (naive baseline) everything is reassigned
        round-robin.  Returns the number of partition movements.
        """
        partitions = set(self._positions)
        active = self._active_workers()
        if not active:
            raise KafkaError("no active uReplicator workers")
        before = {p: w.name for w in self.workers for p in w.assigned}
        if not sticky:
            for worker in self.workers:
                worker.assigned.clear()
            for index, partition in enumerate(sorted(partitions)):
                active[index % len(active)].assigned.add(partition)
        else:
            # Drop assignments on inactive workers; collect orphans.
            for worker in self.workers:
                if not worker.active:
                    worker.assigned.clear()
            assigned_now = {p for w in active for p in w.assigned}
            orphans = sorted(partitions - assigned_now)
            target = len(partitions) // len(active)
            ceiling = target + (1 if len(partitions) % len(active) else 0)
            # Shed from overloaded workers first.
            for worker in active:
                while len(worker.assigned) > ceiling:
                    orphans.append(worker.assigned.pop())
            # Give orphans to the least-loaded workers.
            for partition in sorted(orphans):
                least = min(active, key=lambda w: len(w.assigned))
                least.assigned.add(partition)
        after = {p: w.name for w in self.workers for p in w.assigned}
        moved = sum(
            1 for p in partitions if before.get(p) is not None and before.get(p) != after.get(p)
        )
        self.metrics.counter("partitions_moved").inc(moved)
        return moved

    def add_worker(self, sticky: bool = True) -> int:
        self.workers.append(_Worker(f"worker-{len(self.workers)}"))
        return self.rebalance(sticky=sticky)

    def remove_worker(self, name: str, sticky: bool = True) -> int:
        for worker in self.workers:
            if worker.name == name:
                worker.active = False
                worker.assigned.clear()
                return self.rebalance(sticky=sticky)
        raise KafkaError(f"no worker named {name!r}")

    def activate_standbys_if_bursty(self) -> int:
        """Bring standby workers online when lag crosses the threshold.

        Returns the number of standbys activated.  This is the "adaptive to
        the workload ... dynamically redistribute the load to the standby
        workers" behaviour.
        """
        if self.total_lag() < self.burst_lag_threshold:
            return 0
        activated = 0
        for worker in self.workers:
            if worker.standby and not worker.active:
                worker.active = True
                activated += 1
        if activated:
            self.rebalance(sticky=True)
        return activated

    def deactivate_standbys_if_idle(self) -> int:
        """Release standbys once the burst has drained."""
        if self.total_lag() >= self.burst_lag_threshold // 10:
            return 0
        released = 0
        for worker in self.workers:
            if worker.standby and worker.active:
                worker.active = False
                released += 1
        if released:
            self.rebalance(sticky=True)
        return released

    # -- data movement ------------------------------------------------------------

    def total_lag(self) -> int:
        lag = 0
        for partition, position in self._positions.items():
            try:
                lag += self.source.end_offset(self.topic, partition) - position
            except BrokerUnavailableError:
                continue
        return lag

    def _fetch(self, partition: int, position: int, budget: int) -> list:
        fetch = lambda: self.source.fetch(self.topic, partition, position, budget)
        if self.retry_policy is None:
            return fetch()
        return self.retry_policy.call(
            fetch,
            retry_on=(BrokerUnavailableError,),
            clock=self.source.clock,
            rng=self._retry_rng,
        )

    def _append(self, partition: int, record: Record) -> None:
        append = lambda: self.destination.append(self.topic, partition, record)
        if self.retry_policy is None:
            append()
            return
        self.retry_policy.call(
            append,
            retry_on=(BrokerUnavailableError, NotEnoughReplicasError),
            clock=self.destination.clock,
            rng=self._retry_rng,
        )

    def run_step(self) -> int:
        """One replication round: every active worker copies up to its
        throughput from its partitions.  Returns records replicated.

        A partition whose source leader (or destination) stays down through
        the retry policy is skipped for the round without advancing its
        position — replication there resumes, loss-free, once the broker is
        back.
        """
        copied = 0
        for worker in self._active_workers():
            budget = self.worker_throughput
            for partition in sorted(worker.assigned):
                if budget <= 0:
                    break
                position = self._positions[partition]
                try:
                    entries = self._fetch(partition, position, budget)
                except (BrokerUnavailableError, RetryExhaustedError):
                    self.metrics.counter("fetch_skips").inc()
                    continue
                for entry in entries:
                    try:
                        self._append(partition, entry.record)
                    except (BrokerUnavailableError, RetryExhaustedError,
                            NotEnoughReplicasError):
                        self.metrics.counter("append_skips").inc()
                        break
                    self._positions[partition] = entry.offset + 1
                    self._since_checkpoint[partition] += 1
                    worker.replicated += 1
                    copied += 1
                    budget -= 1
                    if (
                        self.checkpoint_store is not None
                        and self._since_checkpoint[partition]
                        >= self.checkpoint_interval
                    ):
                        self._checkpoint(partition)
        self.metrics.counter("records_replicated").inc(copied)
        return copied

    def _checkpoint(self, partition: int) -> None:
        assert self.checkpoint_store is not None
        dst_end = self.destination.end_offset(self.topic, partition)
        self.checkpoint_store.record(
            self.route,
            self.topic,
            partition,
            src=self._positions[partition],
            dst=dst_end,
            when=self.source.clock.now(),
        )
        self._since_checkpoint[partition] = 0

    def checkpoint_all(self) -> None:
        """Force an offset-mapping checkpoint on every partition."""
        if self.checkpoint_store is None:
            raise KafkaError("no checkpoint store configured")
        for partition in self._positions:
            self._checkpoint(partition)

    def run_to_completion(self, max_steps: int = 10_000) -> int:
        """Replicate until fully caught up; returns total records copied."""
        total = 0
        for __ in range(max_steps):
            copied = self.run_step()
            total += copied
            if copied == 0 and self.total_lag() == 0:
                return total
        raise KafkaError(f"replication did not converge in {max_steps} steps")
