"""Chaperone: end-to-end auditing (Section 4.1.4, Section 9.4).

Chaperone "collects key statistics like the number of unique messages in a
tumbling time window from every stage of the replication pipeline",
compares them, and alerts on mismatch.  Stages here are free-form labels —
"produced", "regional", "aggregate", "flink-in", "pinot" — and every
observed record contributes its audit uid (stamped by the producer,
Section 9.4) to the window it falls in by event time.

Loss = uids present at an upstream stage but missing downstream.
Duplication = a uid observed more than once at the same stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import KafkaError
from repro.common.records import Record


@dataclass
class _WindowStats:
    total: int = 0
    uids: set[str] = field(default_factory=set)
    duplicates: int = 0

    def observe(self, uid: str) -> None:
        self.total += 1
        if uid in self.uids:
            self.duplicates += 1
        else:
            self.uids.add(uid)


@dataclass(frozen=True)
class AuditAlert:
    """One detected mismatch between two stages in one window."""

    window_start: float
    upstream: str
    downstream: str
    missing_count: int
    duplicate_count: int
    sample_missing_uids: tuple[str, ...]

    def describe(self) -> str:
        return (
            f"window@{self.window_start:.0f}: {self.downstream} is missing "
            f"{self.missing_count} of {self.upstream}'s messages "
            f"({self.duplicate_count} duplicates)"
        )


class Chaperone:
    """Micro-batch auditor over tumbling event-time windows."""

    def __init__(self, window_seconds: float = 60.0) -> None:
        if window_seconds <= 0:
            raise KafkaError(f"window must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        # stage -> window_start -> stats
        self._stats: dict[str, dict[float, _WindowStats]] = {}

    def _window_start(self, event_time: float) -> float:
        return math.floor(event_time / self.window_seconds) * self.window_seconds

    def observe(self, stage: str, record: Record) -> None:
        """Count one record at one pipeline stage."""
        uid = record.uid()
        if uid is None:
            raise KafkaError(
                "record has no audit uid; produce through a Producer (or "
                "stamp_audit_headers) so Chaperone can track it"
            )
        window = self._window_start(record.event_time)
        stage_stats = self._stats.setdefault(stage, {})
        window_stats = stage_stats.setdefault(window, _WindowStats())
        window_stats.observe(uid)

    def observe_many(self, stage: str, records) -> None:
        for record in records:
            self.observe(stage, record)

    def stages(self) -> list[str]:
        return sorted(self._stats)

    def window_counts(self, stage: str) -> dict[float, int]:
        """Unique-message counts per window for one stage."""
        return {w: s.total for w, s in self._stats.get(stage, {}).items()}

    def compare(self, upstream: str, downstream: str) -> list[AuditAlert]:
        """Alerts for every window where downstream lost or duplicated data."""
        up = self._stats.get(upstream, {})
        down = self._stats.get(downstream, {})
        alerts = []
        for window, up_stats in sorted(up.items()):
            down_stats = down.get(window, _WindowStats())
            missing = up_stats.uids - down_stats.uids
            if missing or down_stats.duplicates:
                alerts.append(
                    AuditAlert(
                        window_start=window,
                        upstream=upstream,
                        downstream=downstream,
                        missing_count=len(missing),
                        duplicate_count=down_stats.duplicates,
                        sample_missing_uids=tuple(sorted(missing)[:5]),
                    )
                )
        return alerts

    def audit_pipeline(self, stage_order: list[str]) -> list[AuditAlert]:
        """Compare each consecutive stage pair along a pipeline."""
        alerts: list[AuditAlert] = []
        for upstream, downstream in zip(stage_order, stage_order[1:]):
            alerts.extend(self.compare(upstream, downstream))
        return alerts

    def total_loss(self, upstream: str, downstream: str) -> int:
        """Total messages seen upstream but never downstream, any window."""
        up_uids: set[str] = set()
        for stats in self._stats.get(upstream, {}).values():
            up_uids |= stats.uids
        down_uids: set[str] = set()
        for stats in self._stats.get(downstream, {}).values():
            down_uids |= stats.uids
        return len(up_uids - down_uids)
