"""Consumers and consumer groups.

Implements the open-source consumer model the paper contrasts the proxy
against (Section 4.1.3): a group's partitions are range-assigned across
members, so parallelism is capped at the partition count — extra members
sit idle.  Offset commits live in group coordinators per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import KafkaError, OffsetOutOfRangeError
from repro.common.metrics import MetricsRegistry
from repro.kafka.cluster import KafkaCluster
from repro.kafka.log import LogEntry
from repro.observability.trace import SpanCollector, TraceContext


@dataclass(frozen=True, slots=True)
class ConsumedMessage:
    """One message as seen by a consumer."""

    topic: str
    partition: int
    offset: int
    entry: LogEntry


class GroupCoordinator:
    """Tracks membership and committed offsets for the groups of a cluster."""

    def __init__(self, cluster: KafkaCluster) -> None:
        self.cluster = cluster
        # group -> topic -> [member ids]
        self._members: dict[str, dict[str, list[str]]] = {}
        # (group, topic, partition) -> committed offset
        self._offsets: dict[tuple[str, str, int], int] = {}
        self._generation: dict[str, int] = {}

    def join(self, group: str, topic: str, member_id: str) -> None:
        members = self._members.setdefault(group, {}).setdefault(topic, [])
        if member_id not in members:
            members.append(member_id)
            self._generation[group] = self._generation.get(group, 0) + 1

    def leave(self, group: str, topic: str, member_id: str) -> None:
        members = self._members.get(group, {}).get(topic, [])
        if member_id in members:
            members.remove(member_id)
            self._generation[group] = self._generation.get(group, 0) + 1

    def generation(self, group: str) -> int:
        return self._generation.get(group, 0)

    def assignment(self, group: str, topic: str, member_id: str) -> list[int]:
        """Range assignment of partitions to this member.

        Members beyond the partition count receive nothing — the
        parallelism cap the consumer proxy (Section 4.1.3) removes.
        """
        members = sorted(self._members.get(group, {}).get(topic, []))
        if member_id not in members:
            return []
        num_partitions = self.cluster.partition_count(topic)
        index = members.index(member_id)
        per_member = num_partitions // len(members)
        extra = num_partitions % len(members)
        start = index * per_member + min(index, extra)
        count = per_member + (1 if index < extra else 0)
        return list(range(start, start + count))

    def commit(self, group: str, topic: str, partition: int, offset: int) -> None:
        self._offsets[(group, topic, partition)] = offset

    def committed(self, group: str, topic: str, partition: int) -> int | None:
        return self._offsets.get((group, topic, partition))

    def committed_offsets(self, group: str, topic: str) -> dict[int, int]:
        return {
            p: self._offsets[(g, t, p)]
            for (g, t, p) in self._offsets
            if g == group and t == topic
        }

    def group_lag(self, group: str, topic: str) -> int:
        total = 0
        for partition in range(self.cluster.partition_count(topic)):
            committed = self._offsets.get((group, topic, partition), 0)
            total += self.cluster.end_offset(topic, partition) - committed
        return total


class Consumer:
    """A group member that polls assigned partitions.

    ``auto_offset_reset`` handles the two recovery extremes the paper's
    offset-sync discussion names (Section 6): "latest" resumes from the
    high watermark (may skip data), "earliest" from the low watermark (may
    reprocess a large backlog).
    """

    def __init__(
        self,
        cluster: KafkaCluster,
        coordinator: GroupCoordinator,
        group: str,
        topic: str,
        member_id: str,
        auto_offset_reset: str = "earliest",
        metrics: MetricsRegistry | None = None,
        tracer: SpanCollector | None = None,
    ) -> None:
        if auto_offset_reset not in ("earliest", "latest"):
            raise KafkaError(
                f"auto_offset_reset must be 'earliest' or 'latest', "
                f"got {auto_offset_reset!r}"
            )
        self.cluster = cluster
        self.coordinator = coordinator
        self.group = group
        self.topic = topic
        self.member_id = member_id
        self.auto_offset_reset = auto_offset_reset
        self.tracer = tracer
        self._positions: dict[int, int] = {}
        self._seen_generation = -1
        self.metrics = metrics or MetricsRegistry(f"consumer.{group}.{member_id}")
        coordinator.join(group, topic, member_id)

    def assignment(self) -> list[int]:
        return self.coordinator.assignment(self.group, self.topic, self.member_id)

    def _position(self, partition: int) -> int:
        if partition not in self._positions:
            committed = self.coordinator.committed(self.group, self.topic, partition)
            if committed is not None:
                self._positions[partition] = committed
            elif self.auto_offset_reset == "earliest":
                self._positions[partition] = self.cluster.start_offset(
                    self.topic, partition
                )
            else:
                self._positions[partition] = self.cluster.end_offset(
                    self.topic, partition
                )
        return self._positions[partition]

    def _refresh_assignment(self) -> None:
        generation = self.coordinator.generation(self.group)
        if generation != self._seen_generation:
            # Rebalance: drop positions for partitions we no longer own so
            # they are re-fetched from the committed offsets.
            owned = set(self.assignment())
            self._positions = {
                p: off for p, off in self._positions.items() if p in owned
            }
            self._seen_generation = generation

    def poll(self, max_records: int = 500) -> list[ConsumedMessage]:
        """Fetch the next batch across the member's assigned partitions."""
        self._refresh_assignment()
        out: list[ConsumedMessage] = []
        partitions = self.assignment()
        if not partitions:
            return out
        budget = max(1, max_records // len(partitions))
        for partition in partitions:
            position = self._position(partition)
            try:
                entries = self.cluster.fetch(self.topic, partition, position, budget)
            except OffsetOutOfRangeError:
                # Retention passed us by; reset per policy.
                if self.auto_offset_reset == "earliest":
                    position = self.cluster.start_offset(self.topic, partition)
                else:
                    position = self.cluster.end_offset(self.topic, partition)
                self._positions[partition] = position
                entries = self.cluster.fetch(self.topic, partition, position, budget)
            for entry in entries:
                out.append(ConsumedMessage(self.topic, partition, entry.offset, entry))
                if self.tracer is not None:
                    ctx = TraceContext.from_record(entry.record)
                    if ctx is not None:
                        # Consume latency = log dwell time: append to poll.
                        self.tracer.record_span(
                            ctx.trace_id,
                            "consume",
                            "kafka",
                            start=entry.append_time,
                            end=self.cluster.clock.now(),
                            topic=self.topic,
                            partition=partition,
                            group=self.group,
                        )
            if entries:
                self._positions[partition] = entries[-1].offset + 1
        self.metrics.counter("records_polled").inc(len(out))
        return out

    def commit(self) -> None:
        """Commit current positions for owned partitions."""
        for partition, offset in self._positions.items():
            self.coordinator.commit(self.group, self.topic, partition, offset)

    def seek(self, partition: int, offset: int) -> None:
        self._positions[partition] = offset

    def lag(self) -> int:
        """This member's lag over its assigned partitions."""
        total = 0
        for partition in self.assignment():
            total += self.cluster.end_offset(self.topic, partition) - self._position(
                partition
            )
        return total

    def close(self) -> None:
        self.commit()
        self.coordinator.leave(self.group, self.topic, self.member_id)
