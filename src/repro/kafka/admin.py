"""Self-serve topic lifecycle: auto-provisioning, expansion, quotas.

Section 9.4 ("Seamless onboarding"): topics for application logs are
automatically provisioned when a service deploys, automatically expanded as
usage grows, and protected by byte quotas that cap any one producer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import QuotaExceededError
from repro.common.metrics import MetricsRegistry
from repro.kafka.cluster import TopicConfig
from repro.kafka.federation import FederationMetadataServer


@dataclass
class TopicQuota:
    """Per-topic produced-bytes budget per accounting window."""

    max_bytes_per_window: int
    used_bytes: int = 0

    def charge(self, nbytes: int) -> None:
        if self.used_bytes + nbytes > self.max_bytes_per_window:
            raise QuotaExceededError(
                f"quota exceeded: {self.used_bytes + nbytes} > "
                f"{self.max_bytes_per_window} bytes"
            )
        self.used_bytes += nbytes

    def reset(self) -> None:
        self.used_bytes = 0


class SelfServeAdmin:
    """Automates the topic lifecycle over a federation (or single cluster)."""

    def __init__(
        self,
        federation: FederationMetadataServer,
        default_partitions: int = 4,
        default_quota_bytes: int = 64 * 1024 * 1024,
        expansion_threshold: float = 0.8,
    ) -> None:
        self.federation = federation
        self.default_partitions = default_partitions
        self.default_quota_bytes = default_quota_bytes
        self.expansion_threshold = expansion_threshold
        self.quotas: dict[str, TopicQuota] = {}
        self.metrics = MetricsRegistry("selfserve")

    def on_service_deployed(self, service_name: str) -> str:
        """Auto-provision the service's log topic; idempotent."""
        topic = f"logs.{service_name}"
        try:
            self.federation.locate(topic)
        except Exception:
            self.federation.place_topic(
                topic, TopicConfig(partitions=self.default_partitions)
            )
            self.quotas[topic] = TopicQuota(self.default_quota_bytes)
            self.metrics.counter("topics_provisioned").inc()
        return topic

    def charge_produce(self, topic: str, nbytes: int) -> None:
        """Enforce the topic's quota for a produce of ``nbytes``."""
        quota = self.quotas.get(topic)
        if quota is not None:
            quota.charge(nbytes)

    def reset_quota_window(self) -> None:
        for quota in self.quotas.values():
            quota.reset()

    def maybe_expand(self, topic: str) -> int:
        """Double a topic's partition count when usage crosses the
        expansion threshold of its quota.

        Kafka cannot shrink or reshuffle existing partitions; like the real
        system we only add partitions (new data spreads wider; old data
        stays put).  Returns the new partition count (0 if unchanged).
        """
        quota = self.quotas.get(topic)
        if quota is None:
            return 0
        if quota.used_bytes < self.expansion_threshold * quota.max_bytes_per_window:
            return 0
        cluster, __ = self.federation.locate(topic)
        current = cluster.partition_count(topic)
        new_count = cluster.expand_partitions(topic, additional=current)  # double
        # Give the topic headroom in the next window too.
        quota.max_bytes_per_window *= 2
        self.metrics.counter("topics_expanded").inc()
        return new_count
