"""Kafka cluster federation (Section 4.1.1).

A metadata server aggregates all cluster/topic metadata in one place and
presents producers and consumers with a single "logical cluster": clients
address topics by name and the federation routes each request to the
physical cluster that hosts it.

Reproduced properties:

* **Scalability** — based on Uber's empirical data the ideal cluster size
  is < 150 nodes; when every cluster is at its node cap and topic capacity
  is exhausted, the federation scales horizontally by adding a cluster, and
  new topics land there seamlessly.
* **Availability** — single-cluster failure only affects topics hosted
  there; new topics avoid dead clusters.
* **Topic management** — a topic can be migrated between physical clusters
  and live consumers are redirected *without restart*: the federated
  consumer notices the move on its next poll and continues from the
  equivalent position on the new cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import Clock, SystemClock
from repro.common.errors import KafkaError, UnknownTopicError
from repro.common.metrics import MetricsRegistry
from repro.common.records import Record, stamp_audit_headers
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.kafka.consumer import ConsumedMessage, Consumer, GroupCoordinator
from repro.kafka.producer import hash_partitioner

IDEAL_MAX_NODES_PER_CLUSTER = 150

# How many partitions one broker node can host at "optimum performance".
# This is the scaled-down stand-in for the capacity rule behind the
# <150-node guidance; the ratio, not the constant, is what experiments use.
PARTITIONS_PER_NODE = 8


@dataclass
class _TopicLocation:
    cluster_name: str
    # Epoch increments on every migration; consumers use it to notice moves.
    epoch: int = 0


class FederationMetadataServer:
    """Central routing table: topic -> physical cluster."""

    def __init__(self) -> None:
        self._clusters: dict[str, KafkaCluster] = {}
        self._locations: dict[str, _TopicLocation] = {}
        self.metrics = MetricsRegistry("federation.metadata")

    def add_cluster(self, cluster: KafkaCluster) -> None:
        if cluster.name in self._clusters:
            raise KafkaError(f"cluster {cluster.name!r} already federated")
        if cluster.num_brokers > IDEAL_MAX_NODES_PER_CLUSTER:
            raise KafkaError(
                f"cluster {cluster.name!r} has {cluster.num_brokers} nodes; "
                f"the ideal cluster size is <= {IDEAL_MAX_NODES_PER_CLUSTER}"
            )
        self._clusters[cluster.name] = cluster

    def clusters(self) -> list[KafkaCluster]:
        return list(self._clusters.values())

    def cluster(self, name: str) -> KafkaCluster:
        if name not in self._clusters:
            raise KafkaError(f"unknown cluster {name!r}")
        return self._clusters[name]

    def locate(self, topic: str) -> tuple[KafkaCluster, int]:
        """Physical cluster hosting a topic, plus the location epoch."""
        loc = self._locations.get(topic)
        if loc is None:
            raise UnknownTopicError(f"topic {topic!r} is not in the federation")
        return self._clusters[loc.cluster_name], loc.epoch

    def capacity_remaining(self, cluster: KafkaCluster) -> int:
        """Partition slots left on a cluster under the per-node rule."""
        used = sum(len(t.partitions) for t in cluster.topics.values())
        return cluster.num_brokers * PARTITIONS_PER_NODE - used

    def _cluster_healthy(self, cluster: KafkaCluster) -> bool:
        return any(b.alive for b in cluster.brokers.values())

    def place_topic(self, topic: str, config: TopicConfig | None = None) -> KafkaCluster:
        """Create a topic on the healthy cluster with the most free capacity."""
        if topic in self._locations:
            raise KafkaError(f"topic {topic!r} already placed")
        config = config or TopicConfig()
        candidates = [
            c
            for c in self._clusters.values()
            if self._cluster_healthy(c)
            and self.capacity_remaining(c) >= config.partitions
        ]
        if not candidates:
            raise KafkaError(
                "federation is full: no healthy cluster has capacity for "
                f"{config.partitions} partitions — add a cluster"
            )
        chosen = max(candidates, key=self.capacity_remaining)
        chosen.create_topic(topic, config)
        self._locations[topic] = _TopicLocation(chosen.name)
        self.metrics.counter("topics_placed").inc()
        return chosen

    def migrate_topic(self, topic: str, destination: str) -> None:
        """Move a topic to another cluster, copying retained data.

        Live federated consumers are redirected transparently: the location
        epoch bumps, and on their next poll they re-resolve the topic and
        continue from the same offsets (data is copied offset-aligned).
        """
        source, __ = self.locate(topic)
        dest = self.cluster(destination)
        if dest.name == source.name:
            return
        config = source.topics[topic].config
        if self.capacity_remaining(dest) < config.partitions:
            raise KafkaError(
                f"cluster {destination!r} lacks capacity for {topic!r}"
            )
        dest.create_topic(topic, config)
        for partition in range(source.partition_count(topic)):
            start = source.start_offset(topic, partition)
            end = source.end_offset(topic, partition)
            offset = start
            while offset < end:
                for entry in source.fetch(topic, partition, offset, 1000):
                    dest.append(topic, partition, entry.record, acks="1")
                    offset = entry.offset + 1
        source.delete_topic(topic)
        loc = self._locations[topic]
        loc.cluster_name = destination
        loc.epoch += 1
        self.metrics.counter("topics_migrated").inc()

    def add_capacity_for(self, config: TopicConfig, brokers_per_new_cluster: int = 8):
        """Operator action: add a new physical cluster sized for growth."""
        name = f"cluster-{len(self._clusters)}"
        clock = next(iter(self._clusters.values())).clock if self._clusters else None
        cluster = KafkaCluster(name, num_brokers=brokers_per_new_cluster, clock=clock or SystemClock())
        self.add_cluster(cluster)
        return cluster


class FederatedProducer:
    """Producer facade over the logical cluster."""

    def __init__(
        self,
        metadata: FederationMetadataServer,
        service_name: str = "producer",
        acks: str = "1",
        clock: Clock | None = None,
    ) -> None:
        self.metadata = metadata
        self.service_name = service_name
        self.acks = acks
        self.clock = clock or SystemClock()

    def produce(self, topic: str, value, key=None, event_time: float | None = None):
        cluster, __ = self.metadata.locate(topic)
        record = Record(
            key=key,
            value=value,
            event_time=self.clock.now() if event_time is None else event_time,
        )
        record = stamp_audit_headers(record, self.service_name)
        partition = (
            hash_partitioner(key, cluster.partition_count(topic))
            if key is not None
            else 0
        )
        return cluster.append(topic, partition, record, acks=self.acks)


class FederatedConsumer:
    """Consumer facade that survives topic migration without restart.

    Tracks the location epoch it last saw; when the epoch changes it
    re-resolves the physical cluster, re-joins the group there and resumes
    from its last positions.  The application's poll loop never stops —
    this is the Section 4.1.1 "consumer traffic redirection ... without
    restarting the application".
    """

    def __init__(
        self,
        metadata: FederationMetadataServer,
        coordinators: dict[str, GroupCoordinator],
        group: str,
        topic: str,
        member_id: str = "member-0",
    ) -> None:
        self.metadata = metadata
        self._coordinators = coordinators
        self.group = group
        self.topic = topic
        self.member_id = member_id
        self._epoch = -1
        self._consumer: Consumer | None = None
        self.redirects = 0
        self._attach()

    def _attach(self) -> None:
        cluster, epoch = self.metadata.locate(self.topic)
        coordinator = self._coordinators.setdefault(
            cluster.name, GroupCoordinator(cluster)
        )
        if cluster.name not in [c.name for c in self.metadata.clusters()]:
            raise KafkaError(f"cluster {cluster.name} vanished")
        previous_positions: dict[int, int] = {}
        if self._consumer is not None:
            previous_positions = dict(self._consumer._positions)
            self._consumer.close()
            self.redirects += 1
        # Coordinators are per-physical-cluster; a stale coordinator for the
        # same cluster object is reused, preserving committed offsets.
        if self._coordinators.get(cluster.name) is None or (
            self._coordinators[cluster.name].cluster is not cluster
        ):
            self._coordinators[cluster.name] = GroupCoordinator(cluster)
            coordinator = self._coordinators[cluster.name]
        self._consumer = Consumer(
            cluster, coordinator, self.group, self.topic, self.member_id
        )
        for partition, offset in previous_positions.items():
            self._consumer.seek(partition, offset)
        self._epoch = epoch

    def poll(self, max_records: int = 500) -> list[ConsumedMessage]:
        __, epoch = self.metadata.locate(self.topic)
        if epoch != self._epoch:
            self._attach()
        assert self._consumer is not None
        return self._consumer.poll(max_records)

    def commit(self) -> None:
        assert self._consumer is not None
        self._consumer.commit()

    def close(self) -> None:
        if self._consumer is not None:
            self._consumer.close()
            self._consumer = None
