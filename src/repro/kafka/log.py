"""The partition log: Kafka's core data structure.

An append-only sequence of records with dense offsets, a log-start offset
that advances under retention, and byte accounting via the serde layer.
Replicas of a partition each hold one :class:`PartitionLog`; follower logs
trail the leader and are caught up by replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common import serde
from repro.common.errors import OffsetOutOfRangeError
from repro.common.perf import PERF
from repro.common.records import Record


@dataclass(frozen=True, slots=True)
class LogEntry:
    """A record at a fixed position in a partition."""

    offset: int
    record: Record
    append_time: float  # broker clock at append, drives time-based retention


class PartitionLog:
    """Append-only record log with offset-addressed reads and retention."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        # Encoded size of each retained entry, parallel to _entries.  Kept
        # so truncation/retention/replication never re-encode a record the
        # log already measured once at append time.
        self._sizes: list[int] = []
        self._start_offset = 0  # offset of the first retained entry
        self._bytes = 0

    @property
    def start_offset(self) -> int:
        """Lowest retained offset (the "low watermark")."""
        return self._start_offset

    @property
    def end_offset(self) -> int:
        """Offset that the next append will receive (the "high watermark")."""
        return self._start_offset + len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def append(self, record: Record, append_time: float) -> int:
        """Append one record; returns its offset."""
        offset = self.end_offset
        if PERF.enabled:
            PERF.inc("kafka.entry_allocs")
        self._entries.append(LogEntry(offset, record, append_time))
        size = _record_size(record)
        self._sizes.append(size)
        self._bytes += size
        return offset

    def append_batch(
        self,
        records: "list[Record] | tuple[Record, ...]",
        append_time: float,
        sizes: list[int] | None = None,
    ) -> int:
        """Append many records in one call; returns the base (first) offset.

        ``sizes`` carries precomputed per-record encoded sizes so replicas
        don't re-encode what the leader already measured.
        """
        base = self.end_offset
        if not records:
            return base
        if sizes is None:
            sizes = [_record_size(record) for record in records]
        if PERF.enabled:
            PERF.inc("kafka.entry_allocs", len(records))
        self._entries.extend(
            LogEntry(base + i, record, append_time)
            for i, record in enumerate(records)
        )
        self._sizes.extend(sizes)
        self._bytes += sum(sizes)
        return base

    def extend_shared(self, entries: list[LogEntry], sizes: list[int]) -> int:
        """Adopt already-constructed entries from a leader's log.

        The fast path for in-sync replicas: :class:`LogEntry` is frozen, so
        leader and followers can hold the very same objects — no per-replica
        re-construction or re-encoding.  Offsets must line up exactly.
        """
        base = self.end_offset
        if not entries:
            return base
        if entries[0].offset != base:
            raise OffsetOutOfRangeError(
                f"shared entries start at offset {entries[0].offset}, "
                f"log ends at {base}"
            )
        self._entries.extend(entries)
        self._sizes.extend(sizes)
        self._bytes += sum(sizes)
        return base

    def read(self, offset: int, max_records: int = 500) -> list[LogEntry]:
        """Read up to ``max_records`` entries starting at ``offset``.

        Reading exactly at the end offset returns an empty list (caller is
        caught up).  Reading below the start offset or beyond the end
        raises :class:`OffsetOutOfRangeError`, like the real broker.
        """
        if offset < self._start_offset or offset > self.end_offset:
            raise OffsetOutOfRangeError(
                f"offset {offset} outside retained range "
                f"[{self._start_offset}, {self.end_offset}]"
            )
        index = offset - self._start_offset
        return self._entries[index : index + max_records]

    def read_with_sizes(
        self, offset: int, max_records: int = 500
    ) -> tuple[list[LogEntry], list[int]]:
        """Like :meth:`read`, also returning the stored encoded sizes —
        replication hands both to :meth:`extend_shared`."""
        entries = self.read(offset, max_records)
        index = offset - self._start_offset
        return entries, self._sizes[index : index + len(entries)]

    def entry_at(self, offset: int) -> LogEntry:
        entries = self.read(offset, max_records=1)
        if not entries:
            raise OffsetOutOfRangeError(f"offset {offset} is at the log end")
        return entries[0]

    def iter_from(self, offset: int) -> Iterator[LogEntry]:
        index = max(0, offset - self._start_offset)
        yield from self._entries[index:]

    def common_prefix_end(self, other: "PartitionLog") -> int:
        """First offset at which this log diverges from ``other``.

        Compares the overlapping retained entries record-by-record; entries
        below either log's start offset are assumed to agree (anything that
        aged into retention/tiering was already replicated).  Returns an
        offset suitable for :meth:`truncate_to`: truncating there removes
        every entry this log holds that ``other`` does not share.
        """
        offset = max(self._start_offset, other.start_offset)
        end = min(self.end_offset, other.end_offset)
        while offset < end:
            if self.entry_at(offset).record != other.entry_at(offset).record:
                return offset
            offset += 1
        return end

    def truncate_to(self, end_offset: int) -> int:
        """Discard entries at or after ``end_offset`` (leader-change
        truncation of a diverged follower).  Returns entries removed."""
        keep = max(0, end_offset - self._start_offset)
        removed = max(0, len(self._entries) - keep)
        self._bytes -= sum(self._sizes[keep:])
        del self._entries[keep:]
        del self._sizes[keep:]
        return removed

    def trim_head_to(self, offset: int) -> int:
        """Advance the start offset to ``offset``, discarding earlier
        entries (tiered storage: the cold tier owns them now).  Returns the
        number of entries trimmed."""
        trimmed = min(len(self._entries), max(0, offset - self._start_offset))
        if trimmed:
            self._bytes -= sum(self._sizes[:trimmed])
            del self._entries[:trimmed]
            del self._sizes[:trimmed]
            self._start_offset += trimmed
        if self._start_offset < offset and not self._entries:
            self._start_offset = offset
        return trimmed

    def apply_retention(
        self,
        now: float,
        retention_seconds: float | None = None,
        retention_bytes: int | None = None,
    ) -> int:
        """Advance the start offset per time/size retention; returns the
        number of entries expired."""
        expired = 0
        while self._entries:
            head = self._entries[0]
            too_old = (
                retention_seconds is not None
                and now - head.append_time > retention_seconds
            )
            too_big = retention_bytes is not None and self._bytes > retention_bytes
            if not too_old and not too_big:
                break
            self._entries.pop(0)
            self._bytes -= self._sizes.pop(0)
            self._start_offset += 1
            expired += 1
        return expired


def _record_size(record: Record) -> int:
    if PERF.enabled:
        PERF.inc("kafka.size_encodings")
    return serde.encoded_size(
        {
            "key": record.key,
            "value": record.value,
            "event_time": record.event_time,
            "headers": dict(record.headers),
        }
    )
