"""Typed column vectors: validity bitmap + dictionary-coded or raw values.

A :class:`ColumnVector` is the unit of the vectorized data plane.  It
stores one column of a batch either *dictionary-coded* (a tuple of
distinct values plus a small-int code per row — the layout Pinot's
forward index already uses) or *raw* (a plain value list for high-
cardinality or unhashable data).  Nulls live in a packed validity
bitmap, never in the value arrays, so kernels can sweep code arrays
without per-cell ``is None`` checks.

Slicing is zero-copy: a slice is a ``(offset, length)`` window onto the
parent's shared buffers, so exchanging a sub-range between operators,
partitions or cache entries costs O(1) in cells.  Gathers (``take``)
copy codes but share the dictionary, which keeps re-partitioning and
filter materialization cheap in the cost model (a code copy, not a
value materialization).

Encoding discipline mirrors real columnar engines: ``from_values``
dictionary-encodes while the distinct count stays small and *overflows
to raw* once cardinality passes ``max(16, n // 2)`` — past that point a
dictionary costs more than it saves.  Unhashable values always take the
raw path.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.common.errors import ReproError
from repro.common.perf import PERF


class ColumnarError(ReproError):
    """Columnar plane misuse: shape mismatch, out-of-range access."""


class Bitmap:
    """Packed validity bits; bit ``i`` set means row ``i`` is non-null."""

    __slots__ = ("_bits", "length")

    def __init__(self, bits: bytearray, length: int) -> None:
        self._bits = bits
        self.length = length

    @classmethod
    def from_bools(cls, flags: Sequence[bool]) -> "Bitmap":
        bits = bytearray((len(flags) + 7) // 8)
        for i, flag in enumerate(flags):
            if flag:
                bits[i >> 3] |= 1 << (i & 7)
        return cls(bits, len(flags))

    @classmethod
    def all_set(cls, length: int) -> "Bitmap":
        bits = bytearray(b"\xff" * ((length + 7) // 8))
        return cls(bits, length)

    def get(self, i: int) -> bool:
        return bool(self._bits[i >> 3] & (1 << (i & 7)))

    def count_set(self, offset: int = 0, length: int | None = None) -> int:
        if length is None:
            length = self.length - offset
        return sum(1 for i in range(offset, offset + length) if self.get(i))

    def to_bools(self, offset: int = 0, length: int | None = None) -> list[bool]:
        if length is None:
            length = self.length - offset
        return [self.get(offset + i) for i in range(length)]


class ColumnVector:
    """One column of a batch: dictionary-coded or raw, with a null bitmap.

    Instances are views: ``offset``/``length`` window shared ``codes`` /
    ``values`` buffers, so ``slice`` never copies cells.  Buffers are
    append-only once built — views alias them, so mutating in place
    would corrupt every sibling slice.
    """

    __slots__ = ("dictionary", "codes", "values", "validity", "offset", "length")

    #: Cardinality below this always dictionary-encodes.
    DICT_FLOOR = 16

    def __init__(
        self,
        *,
        dictionary: tuple | None,
        codes: list[int] | None,
        values: list | None,
        validity: Bitmap | None,
        offset: int = 0,
        length: int | None = None,
    ) -> None:
        backing = codes if codes is not None else values
        if backing is None:
            backing = []
        self.dictionary = dictionary
        self.codes = codes
        self.values = values
        self.validity = validity
        self.offset = offset
        self.length = len(backing) - offset if length is None else length

    # -- construction ------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[Any]) -> "ColumnVector":
        """Build a vector, dictionary-encoding while cardinality is low.

        Falls back to raw storage when the distinct count overflows
        ``max(DICT_FLOOR, n // 2)`` or a value is unhashable.  ``None``
        cells go to the validity bitmap in either layout.
        """
        materialized = list(values)
        n = len(materialized)
        limit = max(cls.DICT_FLOOR, n // 2)
        index: dict[Any, int] = {}
        codes: list[int] = []
        nulls: list[int] = []
        raw = False
        for i, value in enumerate(materialized):
            if value is None:
                nulls.append(i)
                codes.append(0)
                continue
            try:
                code = index.get(value)
            except TypeError:  # unhashable: dictionary impossible
                raw = True
                break
            if code is None:
                if len(index) >= limit:
                    raw = True
                    break
                code = len(index)
                index[value] = code
            codes.append(code)
        if PERF.enabled:
            PERF.inc("columnar.cells_appended", n)
        if raw:
            return cls.raw(materialized, _count=False)
        validity = None
        if nulls:
            flags = [True] * n
            for i in nulls:
                flags[i] = False
            validity = Bitmap.from_bools(flags)
        return cls(
            dictionary=tuple(index),
            codes=codes,
            values=None,
            validity=validity,
        )

    @classmethod
    def raw(cls, values: Iterable[Any], *, _count: bool = True) -> "ColumnVector":
        """Build a raw (uncoded) vector, skipping encoding entirely."""
        materialized = list(values)
        validity = None
        if any(value is None for value in materialized):
            validity = Bitmap.from_bools([v is not None for v in materialized])
        if _count and PERF.enabled:
            PERF.inc("columnar.cells_appended", len(materialized))
        return cls(
            dictionary=None, codes=None, values=materialized, validity=validity
        )

    @classmethod
    def from_codes(
        cls,
        dictionary: tuple,
        codes: list[int],
        validity: Bitmap | None = None,
    ) -> "ColumnVector":
        """Adopt an existing code array over a shared dictionary.

        The zero-copy entry point for Pinot forward indexes: the sorted
        segment dictionary and gathered codes are shared, not copied.
        """
        return cls(
            dictionary=dictionary, codes=codes, values=None, validity=validity
        )

    # -- introspection -----------------------------------------------------

    @property
    def is_dict(self) -> bool:
        return self.dictionary is not None

    def __len__(self) -> int:
        return self.length

    def null_count(self) -> int:
        if self.validity is None:
            return 0
        return self.length - self.validity.count_set(self.offset, self.length)

    # -- access ------------------------------------------------------------

    def get(self, i: int) -> Any:
        """Value at row ``i`` of this view; ``None`` for null cells."""
        if not 0 <= i < self.length:
            raise ColumnarError(f"row {i} out of range for length {self.length}")
        j = self.offset + i
        if self.validity is not None and not self.validity.get(j):
            return None
        if self.codes is not None:
            return self.dictionary[self.codes[j]]
        return self.values[j]

    def values_list(self) -> list:
        """Materialize this view as a plain Python list (nulls as None)."""
        j0 = self.offset
        if self.validity is None:
            if self.codes is not None:
                dictionary = self.dictionary
                return [
                    dictionary[c] for c in self.codes[j0 : j0 + self.length]
                ]
            return list(self.values[j0 : j0 + self.length])
        return [self.get(i) for i in range(self.length)]

    def code_at(self, i: int) -> int | None:
        """Dictionary code at row ``i``; ``None`` for nulls or raw vectors."""
        if self.codes is None:
            return None
        j = self.offset + i
        if self.validity is not None and not self.validity.get(j):
            return None
        return self.codes[j]

    # -- transforms --------------------------------------------------------

    def slice(self, start: int, length: int) -> "ColumnVector":
        """Zero-copy window: shares buffers, shifts the view."""
        if start < 0 or length < 0 or start + length > self.length:
            raise ColumnarError(
                f"slice [{start}:{start + length}] out of range "
                f"for length {self.length}"
            )
        return ColumnVector(
            dictionary=self.dictionary,
            codes=self.codes,
            values=self.values,
            validity=self.validity,
            offset=self.offset + start,
            length=length,
        )

    def take(self, indices: Sequence[int]) -> "ColumnVector":
        """Gather rows by view-relative index; dictionary stays shared."""
        if PERF.enabled:
            PERF.inc("columnar.cells_gathered", len(indices))
        j0 = self.offset
        if self.codes is not None:
            codes = self.codes
            gathered = [codes[j0 + i] for i in indices]
            validity = None
            if self.validity is not None:
                bitmap = self.validity
                flags = [bitmap.get(j0 + i) for i in indices]
                if not all(flags):
                    validity = Bitmap.from_bools(flags)
            return ColumnVector(
                dictionary=self.dictionary,
                codes=gathered,
                values=None,
                validity=validity,
            )
        values = self.values
        if self.validity is None:
            return ColumnVector.raw(
                [values[j0 + i] for i in indices], _count=False
            )
        return ColumnVector.raw(
            [self.get(i) for i in indices], _count=False
        )

    @staticmethod
    def concat(vectors: Sequence["ColumnVector"]) -> "ColumnVector":
        """Concatenate views into one vector.

        Shares the dictionary when every part uses the same dictionary
        object; otherwise falls back to a raw materialization.
        """
        if not vectors:
            return ColumnVector.raw([], _count=False)
        if len(vectors) == 1:
            return vectors[0]
        first = vectors[0]
        if first.codes is not None and all(
            v.codes is not None and v.dictionary == first.dictionary
            for v in vectors[1:]
        ):
            codes: list[int] = []
            flags: list[bool] = []
            any_null = False
            for v in vectors:
                j0 = v.offset
                codes.extend(v.codes[j0 : j0 + v.length])
                if v.validity is None:
                    flags.extend([True] * v.length)
                else:
                    part = v.validity.to_bools(j0, v.length)
                    flags.extend(part)
                    any_null = any_null or not all(part)
            if PERF.enabled:
                PERF.inc("columnar.cells_appended", len(codes))
            return ColumnVector(
                dictionary=first.dictionary,
                codes=codes,
                values=None,
                validity=Bitmap.from_bools(flags) if any_null else None,
            )
        merged: list = []
        for v in vectors:
            merged.extend(v.values_list())
        if PERF.enabled:
            PERF.inc("columnar.cells_appended", len(merged))
        return ColumnVector.raw(merged, _count=False)

    # -- plain-data round trip (serde / byte accounting) -------------------

    def to_plain(self) -> dict:
        """Serde-friendly representation (used for byte accounting)."""
        j0 = self.offset
        if self.codes is not None:
            out: dict[str, Any] = {
                "d": list(self.dictionary),
                "c": list(self.codes[j0 : j0 + self.length]),
            }
        else:
            out = {"v": list(self.values[j0 : j0 + self.length])}
        if self.validity is not None:
            out["n"] = self.validity.to_bools(j0, self.length)
        return out

    @classmethod
    def from_plain(cls, plain: dict) -> "ColumnVector":
        validity = None
        if "n" in plain:
            validity = Bitmap.from_bools(plain["n"])
        if "c" in plain:
            return cls(
                dictionary=tuple(plain["d"]),
                codes=list(plain["c"]),
                values=None,
                validity=validity,
            )
        return cls(
            dictionary=None, codes=None, values=list(plain["v"]), validity=validity
        )
