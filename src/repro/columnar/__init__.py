"""Vectorized columnar data plane shared by Flink, Pinot and Presto.

Typed column vectors (validity bitmap + dictionary-coded or raw value
arrays, zero-copy slicing), equal-length column batches, vectorized
filter/aggregate kernels pinned byte-for-byte to the row-at-a-time
operators, and the batch↔row adapters that keep row-only consumers
working.  See DESIGN.md §2.18.

The kernel symbols are exported lazily: :mod:`repro.columnar.kernels`
imports the SQL layer (to pin its semantics to ``rowops``), and the SQL
layer's FlinkSQL compiler imports the Flink operators, which use the
vector/batch types from here — eager kernel imports would close that
loop into a cycle.
"""

from repro.columnar.adapter import pages_to_rows, rows_to_pages
from repro.columnar.batch import ColumnBatch, ColumnChunk
from repro.columnar.vector import Bitmap, ColumnarError, ColumnVector

_KERNEL_EXPORTS = (
    "KernelUnsupported",
    "aggregate_pages",
    "eval_condition_mask",
    "filter_batch",
)

__all__ = [
    "Bitmap",
    "ColumnBatch",
    "ColumnChunk",
    "ColumnVector",
    "ColumnarError",
    "pages_to_rows",
    "rows_to_pages",
    *_KERNEL_EXPORTS,
]


def __getattr__(name: str):
    if name in _KERNEL_EXPORTS:
        from repro.columnar import kernels

        return getattr(kernels, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
