"""Vectorized filter and aggregate kernels over column batches.

The kernels are *semantically pinned* to the row-at-a-time operators in
:mod:`repro.sql.planner.rowops`: given the same logical input they
produce byte-identical output (same values, same float accumulation
order, same canonical group order).  That equivalence is what lets the
planner treat the columnar path as a pure optimization — and what the
``columnar-equivalence`` CI gate byte-checks.

The speed comes from working in code space: a predicate over a
dictionary-coded column is evaluated once per *distinct* value
(``columnar.dict_evals``), then applied to rows as an integer-indexed
lookup sweep (``columnar.kernel_rows``), instead of one Python
predicate call per row.  Aggregation pre-materializes each needed
column once per page and updates accumulators from local lists
(``columnar.agg_rows``), instead of per-row dict lookups.

Kernels raise :class:`KernelUnsupported` for shapes they cannot
vectorize (expressions, qualified-join lookups they cannot resolve,
exotic aggregates); callers catch it and fall back to the row adapter,
so coverage grows without ever risking a semantic fork.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.common.errors import ReproError
from repro.common.perf import PERF
from repro.columnar.batch import ColumnBatch
from repro.columnar.vector import ColumnVector
from repro.sql.parser import BoolOp, Column, Comparison, FuncCall, Star
from repro.sql.planner.rowops import agg_alias, agg_final, agg_init


class KernelUnsupported(ReproError):
    """The batch/plan shape cannot be vectorized; fall back to rows."""


# --- column resolution (mirrors rowops.lookup against batch columns) ----------


def _resolve(batch: ColumnBatch, column: Column, qualified: bool) -> ColumnVector | None:
    """The vector backing ``column``, or ``None`` for an absent column.

    Mirrors :func:`repro.sql.planner.rowops.lookup`: absent columns read
    as null, qualified lookups match on ``table.column`` keys with the
    unique-suffix rule for unqualified names in joins.
    """
    names = batch.columns
    if qualified:
        if column.table is not None:
            return names.get(f"{column.table}.{column.name}")
        matches = [k for k in names if k.endswith(f".{column.name}")]
        if len(matches) > 1:
            raise KernelUnsupported(f"ambiguous column {column.name!r} in join")
        if matches:
            return names[matches[0]]
        return names.get(column.name)
    return names.get(column.name)


# --- filter ------------------------------------------------------------------


def _compare(op: str, left: Any, comparison: Comparison) -> bool:
    """One predicate evaluation, pinned to ``rowops.eval_condition``."""
    if op == "IN":
        return left in comparison.values
    if op == "BETWEEN":
        return left is not None and comparison.low <= left <= comparison.high
    right = comparison.right.value
    if left is None or right is None:
        return False
    return {
        "=": left == right,
        "!=": left != right,
        ">": left > right,
        ">=": left >= right,
        "<": left < right,
        "<=": left <= right,
    }[op]


def _comparison_mask(
    batch: ColumnBatch, comparison: Comparison, qualified: bool
) -> list[bool]:
    from repro.sql.parser import Literal

    if not isinstance(comparison.left, Column):
        raise KernelUnsupported("non-column comparison left side")
    if comparison.op not in ("IN", "BETWEEN") and not isinstance(
        comparison.right, Literal
    ):
        raise KernelUnsupported("non-literal comparison right side")
    vector = _resolve(batch, comparison.left, qualified)
    n = batch.num_rows
    if vector is None:
        # Absent column reads as null: the predicate is False everywhere.
        return [False] * n
    if PERF.enabled:
        PERF.inc("columnar.kernel_rows", n)
    if vector.is_dict:
        # Evaluate once per distinct value, then sweep codes as a lookup.
        if PERF.enabled:
            PERF.inc("columnar.dict_evals", len(vector.dictionary))
        lut = [
            _compare(comparison.op, value, comparison)
            for value in vector.dictionary
        ]
        j0 = vector.offset
        codes = vector.codes
        if vector.validity is None:
            return [lut[codes[j0 + i]] for i in range(n)]
        validity = vector.validity
        return [
            lut[codes[j0 + i]] if validity.get(j0 + i) else False
            for i in range(n)
        ]
    return [_compare(comparison.op, vector.get(i), comparison) for i in range(n)]


def eval_condition_mask(batch: ColumnBatch, node, qualified: bool) -> list[bool]:
    """Boolean mask for a filter condition over a batch.

    Matches ``rowops.eval_condition`` row-for-row; raises
    :class:`KernelUnsupported` for condition shapes the vectorized path
    does not cover.
    """
    if isinstance(node, BoolOp):
        masks = [
            eval_condition_mask(batch, operand, qualified)
            for operand in node.operands
        ]
        if node.op == "AND":
            return [all(bits) for bits in zip(*masks)]
        return [any(bits) for bits in zip(*masks)]
    if isinstance(node, Comparison):
        return _comparison_mask(batch, node, qualified)
    raise KernelUnsupported(f"cannot vectorize condition {node!r}")


def filter_batch(batch: ColumnBatch, node, qualified: bool) -> ColumnBatch:
    """Rows of ``batch`` passing the condition, as a gathered batch."""
    mask = eval_condition_mask(batch, node, qualified)
    selection = [i for i, bit in enumerate(mask) if bit]
    if len(selection) == batch.num_rows:
        return batch
    return batch.take(selection)


# --- aggregation -------------------------------------------------------------


def _check_aggs_supported(aggs: Sequence[tuple[FuncCall, str | None]]) -> None:
    for func, __ in aggs:
        if func.name == "COUNT" and (not func.args or isinstance(func.args[0], Star)):
            if func.distinct:
                raise KernelUnsupported("COUNT(DISTINCT *) is not valid")
            continue
        if func.name not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise KernelUnsupported(f"aggregate {func.name!r} not vectorized")
        if not func.args or not isinstance(func.args[0], Column):
            raise KernelUnsupported("non-column aggregate argument")


def aggregate_pages(
    group_cols: Sequence[Column],
    aggs: Sequence[tuple[FuncCall, str | None]],
    pages: Sequence[ColumnBatch],
    qualified: bool,
) -> list[dict]:
    """Grouped aggregation over pages, byte-equal to ``aggregate_rows``.

    Accumulators update in row order across pages (same float
    accumulation order as the row path), groups materialize in first-
    seen order, and output sorts by the stringified group key — the
    canonical order shared with pushed-down Pinot aggregation.
    """
    _check_aggs_supported(aggs)
    groups: dict[tuple, list[Any]] = {}
    for page in pages:
        n = page.num_rows
        if n == 0:
            continue
        if PERF.enabled:
            PERF.inc("columnar.agg_rows", n)
        key_lists = []
        for col in group_cols:
            vector = _resolve(page, col, qualified)
            key_lists.append(vector.values_list() if vector else [None] * n)
        value_lists: list[list | None] = []
        for func, __ in aggs:
            if func.name == "COUNT" and (
                not func.args or isinstance(func.args[0], Star)
            ):
                value_lists.append(None)  # COUNT(*): no column read
                continue
            vector = _resolve(page, func.args[0], qualified)
            value_lists.append(vector.values_list() if vector else [None] * n)
        for i in range(n):
            key = tuple(keys[i] for keys in key_lists)
            states = groups.get(key)
            if states is None:
                states = [agg_init(f) for f, __ in aggs]
                groups[key] = states
            for slot, (func, __) in enumerate(aggs):
                values = value_lists[slot]
                if values is None:  # COUNT(*)
                    states[slot] = states[slot] + 1
                    continue
                value = values[i]
                if value is None:
                    continue
                state = states[slot]
                if func.distinct:
                    state.add(value)
                elif func.name == "COUNT":
                    states[slot] = state + 1
                elif func.name == "SUM":
                    states[slot] = state + value
                elif func.name == "AVG":
                    state[0] += value
                    state[1] += 1
                elif func.name == "MIN":
                    states[slot] = min(state, value)
                else:  # MAX
                    states[slot] = max(state, value)
    out = []
    for key, states in groups.items():
        result_row: dict[str, Any] = {}
        for col, value in zip(group_cols, key):
            result_row[col.name] = value
        for (func, alias), stateval in zip(aggs, states):
            result_row[agg_alias(func, alias)] = agg_final(func, stateval)
        out.append(result_row)
    if not group_cols and not out:
        result_row = {}
        for func, alias in aggs:
            result_row[agg_alias(func, alias)] = agg_final(func, agg_init(func))
        out.append(result_row)
    if group_cols:
        out.sort(key=lambda r: tuple(str(r.get(c.name)) for c in group_cols))
    return out
