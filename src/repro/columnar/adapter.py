"""Batch↔row adapters: the boundary of the vectorized plane.

Row-only consumers (legacy connectors, transactional sinks, operators
without a columnar kernel) keep working against the columnar plane
through these helpers.  Every crossing is counted
(``columnar.rows_adapted``) so the cost model shows exactly where the
pipeline still falls back to rows — the adapter is the safety net, not
the fast path.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.columnar.batch import ColumnBatch


def rows_to_pages(
    rows: Sequence[Mapping[str, Any]],
    page_size: int = 1024,
    column_names: Sequence[str] | None = None,
) -> list[ColumnBatch]:
    """Adapt row dicts into fixed-size pages (row→batch boundary)."""
    if not rows:
        return []
    return [
        ColumnBatch.from_rows(rows[i : i + page_size], column_names)
        for i in range(0, len(rows), page_size)
    ]


def pages_to_rows(pages: Sequence[ColumnBatch]) -> list[dict[str, Any]]:
    """Materialize pages back into row dicts (batch→row boundary)."""
    out: list[dict[str, Any]] = []
    for page in pages:
        out.extend(page.to_rows())
    return out
