"""Column batches: named vectors of equal length, exchanged zero-copy.

A :class:`ColumnBatch` is what moves between operators, stages and
caches in the vectorized plane — a mapping of column name to
:class:`ColumnVector` plus a row count.  Batches are immutable views;
``slice`` windows every column in O(columns), not O(cells), and
``take`` gathers shared-dictionary codes.

:class:`ColumnChunk` wraps a batch (plus per-row event times) for
transport through Kafka: one log record carries a whole chunk, so the
per-record costs of the row plane — entry allocation, byte-size
encoding, fetch bookkeeping — amortize over every row in the chunk.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.common.perf import PERF
from repro.common.serde import encoded_size
from repro.columnar.vector import ColumnarError, ColumnVector


class ColumnBatch:
    """Equal-length named column vectors; the unit of vectorized exchange."""

    __slots__ = ("columns", "num_rows")

    def __init__(self, columns: Mapping[str, ColumnVector], num_rows: int | None = None):
        self.columns = dict(columns)
        if num_rows is None:
            num_rows = len(next(iter(self.columns.values()))) if self.columns else 0
        for name, vector in self.columns.items():
            if len(vector) != num_rows:
                raise ColumnarError(
                    f"column {name!r} has {len(vector)} rows, batch has {num_rows}"
                )
        self.num_rows = num_rows
        if PERF.enabled:
            PERF.inc("columnar.batch_allocs")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(
        cls, rows: Sequence[Mapping[str, Any]], column_names: Sequence[str] | None = None
    ) -> "ColumnBatch":
        """Adapt row dicts into a batch (the row→batch boundary)."""
        if PERF.enabled:
            PERF.inc("columnar.rows_adapted", len(rows))
        if column_names is None:
            seen: dict[str, None] = {}
            for row in rows:
                for name in row:
                    seen.setdefault(name)
            column_names = list(seen)
        columns = {
            name: ColumnVector.from_values([row.get(name) for row in rows])
            for name in column_names
        }
        return cls(columns, num_rows=len(rows))

    @classmethod
    def from_columns(cls, data: Mapping[str, Iterable[Any]]) -> "ColumnBatch":
        """Build a batch straight from column value lists."""
        return cls(
            {name: ColumnVector.from_values(values) for name, values in data.items()}
        )

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> ColumnVector:
        try:
            return self.columns[name]
        except KeyError:
            raise ColumnarError(f"no column {name!r} in batch") from None

    def row(self, i: int) -> dict[str, Any]:
        """Materialize one row dict (boundary use only, not the hot path)."""
        return {name: vector.get(i) for name, vector in self.columns.items()}

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize all rows (the batch→row boundary)."""
        if PERF.enabled:
            PERF.inc("columnar.rows_adapted", self.num_rows)
        lists = {name: vector.values_list() for name, vector in self.columns.items()}
        names = list(lists)
        return [
            {name: lists[name][i] for name in names} for i in range(self.num_rows)
        ]

    # -- transforms --------------------------------------------------------

    def slice(self, start: int, length: int) -> "ColumnBatch":
        """Zero-copy row window across every column."""
        if PERF.enabled:
            PERF.inc("columnar.batch_slices")
        batch = ColumnBatch.__new__(ColumnBatch)
        batch.columns = {
            name: vector.slice(start, length)
            for name, vector in self.columns.items()
        }
        batch.num_rows = length
        return batch

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather rows by index across every column."""
        batch = ColumnBatch.__new__(ColumnBatch)
        batch.columns = {
            name: vector.take(indices) for name, vector in self.columns.items()
        }
        batch.num_rows = len(indices)
        if PERF.enabled:
            PERF.inc("columnar.batch_allocs")
        return batch

    def select(self, names: Sequence[str]) -> "ColumnBatch":
        """Project to a subset of columns (zero-copy)."""
        batch = ColumnBatch.__new__(ColumnBatch)
        batch.columns = {name: self.column(name) for name in names}
        batch.num_rows = self.num_rows
        return batch

    @staticmethod
    def concat(batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        if not batches:
            return ColumnBatch({}, num_rows=0)
        if len(batches) == 1:
            return batches[0]
        names = batches[0].column_names
        columns = {
            name: ColumnVector.concat([b.column(name) for b in batches])
            for name in names
        }
        return ColumnBatch(columns, num_rows=sum(b.num_rows for b in batches))


class ColumnChunk:
    """A batch riding through Kafka as a single record value.

    ``encoded_size`` is computed once per chunk from the plain-data
    layout (dictionary + codes, not materialized rows), so the byte
    accounting the broker does per record covers the whole chunk.
    """

    __slots__ = ("batch", "event_times")

    def __init__(self, batch: ColumnBatch, event_times: Sequence[float]):
        if len(event_times) != batch.num_rows:
            raise ColumnarError(
                f"{len(event_times)} event times for {batch.num_rows} rows"
            )
        self.batch = batch
        self.event_times = list(event_times)

    def __len__(self) -> int:
        return self.batch.num_rows

    def encoded_size(self) -> int:
        """Serialized size of the columnar layout, one encode per chunk."""
        if PERF.enabled:
            PERF.inc("kafka.size_encodings")
            PERF.inc(
                "columnar.cells_sized",
                self.batch.num_rows * max(1, len(self.batch.columns)),
            )
        plain = {
            "columns": {
                name: vector.to_plain()
                for name, vector in self.batch.columns.items()
            },
            "event_times": self.event_times,
        }
        return encoded_size(plain)

    def slice(self, start: int, length: int) -> "ColumnChunk":
        return ColumnChunk(
            self.batch.slice(start, length),
            self.event_times[start : start + length],
        )
