"""Structured schemas for streams, tables and datasets.

The metadata layer (Section 3) stores schemas for data managed by the
storage and stream layers, with versioning and backward-compatibility
checks.  Pinot also uses schemas to infer table columns from Kafka topics
(Section 4.3.3), so the field model covers both worlds: dimensions,
metrics and time columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.common.errors import SchemaError


class FieldType(Enum):
    """Primitive field types, the subset shared by Avro and Pinot."""

    STRING = "string"
    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    BOOLEAN = "boolean"
    BYTES = "bytes"
    JSON = "json"  # semistructured payloads (§4.3 future work)

    def accepts(self, value: Any) -> bool:
        """Whether a Python value conforms to this type (None = nullable)."""
        if value is None:
            return True
        if self in (FieldType.INT, FieldType.LONG):
            return isinstance(value, int) and not isinstance(value, bool)
        if self in (FieldType.FLOAT, FieldType.DOUBLE):
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is FieldType.STRING:
            return isinstance(value, str)
        if self is FieldType.BOOLEAN:
            return isinstance(value, bool)
        if self is FieldType.BYTES:
            return isinstance(value, bytes)
        if self is FieldType.JSON:
            return isinstance(value, (dict, list, str, int, float, bool))
        return False


class FieldRole(Enum):
    """How OLAP treats a column (Pinot's dimension/metric/time split)."""

    DIMENSION = "dimension"
    METRIC = "metric"
    TIME = "time"


@dataclass(frozen=True, slots=True)
class Field:
    """One named, typed field."""

    name: str
    type: FieldType
    role: FieldRole = FieldRole.DIMENSION
    nullable: bool = True
    default: Any = None


@dataclass(frozen=True)
class Schema:
    """An ordered collection of fields describing one dataset version."""

    name: str
    fields: tuple[Field, ...]
    version: int = 1
    doc: str = ""

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate field names in {self.name}: {duplicates}")

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"schema {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def time_field(self) -> Field | None:
        for f in self.fields:
            if f.role is FieldRole.TIME:
                return f
        return None

    def validate(self, row: dict[str, Any]) -> None:
        """Raise :class:`SchemaError` if a row does not conform."""
        for f in self.fields:
            if f.name not in row or row[f.name] is None:
                if not f.nullable and f.default is None:
                    raise SchemaError(
                        f"row missing non-nullable field {f.name!r} "
                        f"(schema {self.name} v{self.version})"
                    )
                continue
            if not f.type.accepts(row[f.name]):
                raise SchemaError(
                    f"field {f.name!r} expects {f.type.value}, got "
                    f"{type(row[f.name]).__name__} (schema {self.name})"
                )

    def conform(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validated copy of ``row`` restricted to schema fields, with
        defaults filled in for absent nullable fields."""
        self.validate(row)
        out: dict[str, Any] = {}
        for f in self.fields:
            if f.name in row and row[f.name] is not None:
                out[f.name] = row[f.name]
            else:
                out[f.name] = f.default
        return out

    def evolve(self, fields: tuple[Field, ...], doc: str | None = None) -> "Schema":
        """Next version of this schema with a new field list."""
        return Schema(
            name=self.name,
            fields=fields,
            version=self.version + 1,
            doc=self.doc if doc is None else doc,
        )


def is_backward_compatible(old: Schema, new: Schema) -> list[str]:
    """Check that readers of ``new`` can still read data written with ``old``.

    Returns a list of human-readable problems; empty means compatible.
    Rules (mirroring Avro's backward compatibility):

    * a field may not be removed unless it was nullable or had a default;
    * a field's type may not change;
    * an added field must be nullable or carry a default.
    """
    problems: list[str] = []
    old_fields = {f.name: f for f in old.fields}
    new_fields = {f.name: f for f in new.fields}
    for name, old_field in old_fields.items():
        if name not in new_fields:
            if not old_field.nullable and old_field.default is None:
                problems.append(f"removed required field {name!r}")
            continue
        if new_fields[name].type is not old_field.type:
            problems.append(
                f"field {name!r} changed type "
                f"{old_field.type.value} -> {new_fields[name].type.value}"
            )
    for name, new_field in new_fields.items():
        if name in old_fields:
            continue
        if not new_field.nullable and new_field.default is None:
            problems.append(f"added required field {name!r} without default")
    return problems


def infer_schema(name: str, rows: list[dict[str, Any]]) -> Schema:
    """Infer a schema by sampling rows (Pinot's Kafka-topic inference,
    Section 4.3.3).  Numeric fields become metrics, ``*_time``/``timestamp``
    fields become the time column, everything else a dimension."""
    if not rows:
        raise SchemaError("cannot infer a schema from zero rows")
    types: dict[str, FieldType] = {}
    for row in rows:
        for key, value in row.items():
            observed = _python_type_to_field_type(value)
            if observed is None:
                continue
            current = types.get(key)
            if current is None:
                types[key] = observed
            elif current is not observed:
                types[key] = _widen(current, observed)
    fields = []
    time_assigned = False
    for key in sorted(types):
        ftype = types[key]
        if not time_assigned and _looks_like_time(key, ftype):
            role = FieldRole.TIME
            time_assigned = True
        elif ftype in (FieldType.INT, FieldType.LONG, FieldType.FLOAT, FieldType.DOUBLE):
            role = FieldRole.METRIC
        else:
            role = FieldRole.DIMENSION
        fields.append(Field(key, ftype, role))
    return Schema(name=name, fields=tuple(fields))


def _python_type_to_field_type(value: Any) -> FieldType | None:
    if value is None:
        return None
    if isinstance(value, bool):
        return FieldType.BOOLEAN
    if isinstance(value, int):
        return FieldType.LONG
    if isinstance(value, float):
        return FieldType.DOUBLE
    if isinstance(value, str):
        return FieldType.STRING
    if isinstance(value, bytes):
        return FieldType.BYTES
    if isinstance(value, (dict, list)):
        return FieldType.JSON
    return None


def _widen(a: FieldType, b: FieldType) -> FieldType:
    numeric = {FieldType.INT, FieldType.LONG, FieldType.FLOAT, FieldType.DOUBLE}
    if a in numeric and b in numeric:
        return FieldType.DOUBLE
    return FieldType.JSON


def _looks_like_time(name: str, ftype: FieldType) -> bool:
    numeric = ftype in (FieldType.INT, FieldType.LONG, FieldType.FLOAT, FieldType.DOUBLE)
    return numeric and (name.endswith("_time") or name in ("timestamp", "ts", "event_time"))
