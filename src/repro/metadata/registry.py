"""Versioned schema registry with backward-compatibility enforcement.

Section 3's metadata layer: "ability to version the metadata and have
checks for ensuring backward compatibility across versions."  This is the
centralized repository that Section 9.4 calls the source of truth for
schemas across Kafka, Pinot and Hive.
"""

from __future__ import annotations

from repro.common.errors import SchemaCompatibilityError, SchemaError
from repro.metadata.schema import Schema, is_backward_compatible


class SchemaRegistry:
    """Stores every version of every subject's schema.

    A *subject* is a dataset name (a Kafka topic, a Pinot table, a Hive
    table).  Registration of a new version is rejected unless it is
    backward compatible with the latest registered version, unless the
    subject was registered with ``compatibility="none"``.
    """

    def __init__(self) -> None:
        self._versions: dict[str, list[Schema]] = {}
        self._compatibility: dict[str, str] = {}

    def register(self, subject: str, schema: Schema, compatibility: str = "backward") -> int:
        """Register a schema version; returns the assigned version number."""
        if compatibility not in ("backward", "none"):
            raise SchemaError(f"unknown compatibility mode {compatibility!r}")
        versions = self._versions.setdefault(subject, [])
        if subject not in self._compatibility:
            self._compatibility[subject] = compatibility
        if versions and self._compatibility[subject] == "backward":
            problems = is_backward_compatible(versions[-1], schema)
            if problems:
                raise SchemaCompatibilityError(
                    f"schema for {subject!r} v{len(versions) + 1} is not "
                    f"backward compatible: {'; '.join(problems)}"
                )
        version = len(versions) + 1
        registered = Schema(
            name=schema.name, fields=schema.fields, version=version, doc=schema.doc
        )
        versions.append(registered)
        return version

    def latest(self, subject: str) -> Schema:
        versions = self._versions.get(subject)
        if not versions:
            raise SchemaError(f"no schema registered for subject {subject!r}")
        return versions[-1]

    def get(self, subject: str, version: int) -> Schema:
        versions = self._versions.get(subject)
        if not versions:
            raise SchemaError(f"no schema registered for subject {subject!r}")
        if not 1 <= version <= len(versions):
            raise SchemaError(
                f"subject {subject!r} has versions 1..{len(versions)}, "
                f"requested {version}"
            )
        return versions[version - 1]

    def subjects(self) -> list[str]:
        return sorted(self._versions)

    def versions(self, subject: str) -> int:
        return len(self._versions.get(subject, []))

    def has_subject(self, subject: str) -> bool:
        return subject in self._versions
