"""Metadata layer: versioned schemas, registry, catalog and lineage."""

from repro.metadata.catalog import DataCatalog, DatasetKind, DatasetRef
from repro.metadata.registry import SchemaRegistry
from repro.metadata.schema import (
    Field,
    FieldRole,
    FieldType,
    Schema,
    infer_schema,
    is_backward_compatible,
)

__all__ = [
    "DataCatalog",
    "DatasetKind",
    "DatasetRef",
    "SchemaRegistry",
    "Field",
    "FieldRole",
    "FieldType",
    "Schema",
    "infer_schema",
    "is_backward_compatible",
]
