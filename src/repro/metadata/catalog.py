"""Dataset catalog with lineage tracking (Section 9.4, "Data discovery").

The catalog is the discovery surface: which datasets exist, in which system
they live (Kafka topic / Pinot table / Hive table), and how data flows
between them.  Lineage edges are recorded by the platform components when a
pipeline is deployed (e.g. FlinkSQL registers topic -> job -> table edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ReproError


class DatasetKind(Enum):
    KAFKA_TOPIC = "kafka_topic"
    PINOT_TABLE = "pinot_table"
    HIVE_TABLE = "hive_table"
    FLINK_JOB = "flink_job"
    KV_STORE = "kv_store"


@dataclass(frozen=True, slots=True)
class DatasetRef:
    """Globally unique dataset handle."""

    kind: DatasetKind
    name: str

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"


@dataclass
class DatasetEntry:
    ref: DatasetRef
    owner: str = ""
    description: str = ""
    tags: set[str] = field(default_factory=set)


class DataCatalog:
    """Registry of datasets plus a lineage DAG between them."""

    def __init__(self) -> None:
        self._entries: dict[DatasetRef, DatasetEntry] = {}
        self._downstream: dict[DatasetRef, set[DatasetRef]] = {}
        self._upstream: dict[DatasetRef, set[DatasetRef]] = {}

    def register(
        self,
        ref: DatasetRef,
        owner: str = "",
        description: str = "",
        tags: set[str] | None = None,
    ) -> DatasetEntry:
        entry = self._entries.get(ref)
        if entry is None:
            entry = DatasetEntry(ref, owner, description, tags or set())
            self._entries[ref] = entry
        return entry

    def add_lineage(self, source: DatasetRef, sink: DatasetRef) -> None:
        """Record that data flows from ``source`` into ``sink``."""
        for ref in (source, sink):
            if ref not in self._entries:
                self.register(ref)
        self._downstream.setdefault(source, set()).add(sink)
        self._upstream.setdefault(sink, set()).add(source)

    def downstream(self, ref: DatasetRef) -> set[DatasetRef]:
        return set(self._downstream.get(ref, set()))

    def upstream(self, ref: DatasetRef) -> set[DatasetRef]:
        return set(self._upstream.get(ref, set()))

    def transitive_downstream(self, ref: DatasetRef) -> set[DatasetRef]:
        """Every dataset reachable from ``ref`` (impact analysis)."""
        seen: set[DatasetRef] = set()
        stack = [ref]
        while stack:
            current = stack.pop()
            for nxt in self._downstream.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def search(self, text: str) -> list[DatasetEntry]:
        """Substring search over names, descriptions and tags."""
        needle = text.lower()
        hits = []
        for entry in self._entries.values():
            haystack = " ".join(
                [entry.ref.name, entry.description, " ".join(entry.tags)]
            ).lower()
            if needle in haystack:
                hits.append(entry)
        return sorted(hits, key=lambda e: e.ref.name)

    def get(self, ref: DatasetRef) -> DatasetEntry:
        entry = self._entries.get(ref)
        if entry is None:
            raise ReproError(f"dataset {ref} is not in the catalog")
        return entry

    def __len__(self) -> int:
        return len(self._entries)
