"""Synthetic UberEats workload: orders, carts, courier telemetry
(Sections 5.2, 5.4).

Restaurant popularity is Zipf-distributed (dashboards must handle hot
restaurants), order lifecycles produce correction events (the upsert
workload: delivery-status updates and fare corrections against the same
order id), and courier telemetry gives the ops-automation rules something
to count per geofence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.hexgrid import HexGrid
from repro.common.rng import seeded_rng, zipf_sampler
from repro.workloads.trips import DEFAULT_CITY

MENU_ITEMS = [
    "burger", "pizza", "sushi", "salad", "tacos", "noodles", "curry",
    "sandwich", "wings", "dumplings", "pasta", "bowl",
]

ORDER_STATUSES = ["placed", "accepted", "picked_up", "delivered"]


@dataclass
class EatsWorkload:
    seed: int = 7
    restaurants: int = 50
    eaters: int = 2000
    couriers: int = 300
    restaurant_skew: float = 1.1
    cancel_rate: float = 0.08
    abandon_rate: float = 0.05
    correction_rate: float = 0.06
    orders_per_second: float = 3.0
    grid: HexGrid = field(
        default_factory=lambda: HexGrid(DEFAULT_CITY[0], DEFAULT_CITY[1], 800.0)
    )

    def __post_init__(self) -> None:
        rng = seeded_rng(self.seed, "locations")
        self._restaurant_coords = [
            (
                DEFAULT_CITY[0] + rng.uniform(-0.05, 0.05),
                DEFAULT_CITY[1] + rng.uniform(-0.05, 0.05),
            )
            for __ in range(self.restaurants)
        ]

    def order_events(
        self, duration_seconds: float, start_time: float = 0.0
    ) -> Iterator[tuple[dict, float]]:
        """Yield (order_event_row, arrival_time).

        Each order id emits a lifecycle of status rows; ``correction_rate``
        of delivered orders later receive a fare correction — the same
        order id with a new fare, i.e. the upsert workload of
        Section 4.3.1.
        """
        rng = seeded_rng(self.seed, "orders")
        pick_restaurant = zipf_sampler(rng, self.restaurants, self.restaurant_skew)
        order_counter = 0
        now = start_time
        interval = 1.0 / self.orders_per_second
        while now < start_time + duration_seconds:
            now += rng.expovariate(1.0) * interval
            order_counter += 1
            order_id = f"order-{self.seed}-{order_counter}"
            restaurant = pick_restaurant()
            lat, lon = self._restaurant_coords[restaurant]
            cell = self.grid.cell_for(lat, lon)
            base = {
                "order_id": order_id,
                "restaurant_id": f"rest-{restaurant}",
                "eater_id": f"eater-{rng.randrange(self.eaters)}",
                "courier_id": f"courier-{rng.randrange(self.couriers)}",
                "item": rng.choice(MENU_ITEMS),
                "hex_id": cell.cell_id(),
                "amount": round(rng.uniform(8.0, 60.0), 2),
            }
            if rng.random() < self.abandon_rate:
                yield {**base, "status": "cart_abandoned", "event_time": now}, now
                continue
            event_time = now
            cancelled = rng.random() < self.cancel_rate
            for index, status in enumerate(ORDER_STATUSES):
                yield {**base, "status": status, "event_time": event_time}, event_time
                if cancelled and index == 0:
                    cancel_time = event_time + rng.uniform(10, 120)
                    yield (
                        {**base, "status": "cancelled", "event_time": cancel_time},
                        cancel_time,
                    )
                    break
                event_time += rng.uniform(60, 420)
            else:
                if rng.random() < self.correction_rate:
                    corrected = dict(base)
                    corrected["amount"] = round(
                        base["amount"] * rng.uniform(0.5, 0.95), 2
                    )
                    correction_time = event_time + rng.uniform(300, 3600)
                    yield (
                        {
                            **corrected,
                            "status": "fare_corrected",
                            "event_time": correction_time,
                        },
                        correction_time,
                    )

    def courier_telemetry(
        self, duration_seconds: float, start_time: float = 0.0,
        pings_per_second: float = 10.0,
    ) -> Iterator[tuple[dict, float]]:
        """Courier location pings per geofence (the §5.4 occupancy input)."""
        rng = seeded_rng(self.seed, "couriers")
        now = start_time
        interval = 1.0 / pings_per_second
        while now < start_time + duration_seconds:
            now += rng.expovariate(1.0) * interval
            restaurant = rng.randrange(self.restaurants)
            lat, lon = self._restaurant_coords[restaurant]
            cell = self.grid.cell_for(
                lat + rng.gauss(0, 0.001), lon + rng.gauss(0, 0.001)
            )
            yield (
                {
                    "courier_id": f"courier-{rng.randrange(self.couriers)}",
                    "hex_id": cell.cell_id(),
                    "restaurant_id": f"rest-{restaurant}",
                    "event_time": now,
                },
                now,
            )
