"""Seeded synthetic workloads standing in for Uber's production traffic."""

from repro.workloads.eats import EatsWorkload
from repro.workloads.predictions import PredictionWorkload
from repro.workloads.trips import DriverStatusEvent, TripEvent, TripWorkload

__all__ = [
    "EatsWorkload",
    "PredictionWorkload",
    "DriverStatusEvent",
    "TripEvent",
    "TripWorkload",
]
