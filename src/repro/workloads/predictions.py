"""Synthetic ML prediction/outcome streams (Section 5.3).

"With thousands of ML models deployed and each model with hundreds of
features, there are several hundreds of thousands of time series" — the
defining property is *cardinality*: models x features.  Each prediction
later receives an observed outcome; the monitoring pipeline joins the two
to measure live model accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import seeded_rng


@dataclass
class PredictionWorkload:
    seed: int = 11
    models: int = 20
    features_per_model: int = 10
    predictions_per_second: float = 20.0
    outcome_delay_range: tuple[float, float] = (30.0, 600.0)
    outcome_loss_rate: float = 0.02  # labels that never arrive
    drifting_models: frozenset[int] = frozenset({3})  # inject accuracy drift

    def streams(
        self, duration_seconds: float, start_time: float = 0.0
    ) -> Iterator[tuple[str, dict, float]]:
        """Yield ('prediction'|'outcome', row, arrival_time).

        Predictions for drifting models develop growing error over time —
        the anomaly the monitoring pipeline must surface.
        """
        rng = seeded_rng(self.seed, "predictions")
        counter = 0
        now = start_time
        interval = 1.0 / self.predictions_per_second
        pending: list[tuple[float, dict]] = []
        while now < start_time + duration_seconds:
            now += rng.expovariate(1.0) * interval
            counter += 1
            model = rng.randrange(self.models)
            feature = rng.randrange(self.features_per_model)
            truth = rng.uniform(0.0, 1.0)
            noise = rng.gauss(0, 0.05)
            drift = 0.0
            if model in self.drifting_models:
                progress = (now - start_time) / duration_seconds
                drift = 0.4 * progress  # error grows through the run
            prediction_row = {
                "prediction_id": f"pred-{self.seed}-{counter}",
                "model_id": f"model-{model}",
                "feature_id": f"feature-{model}-{feature}",
                "predicted": max(0.0, min(1.0, truth + noise + drift)),
                "event_time": now,
            }
            yield ("prediction", prediction_row, now)
            if rng.random() >= self.outcome_loss_rate:
                delay = rng.uniform(*self.outcome_delay_range)
                outcome_row = {
                    "prediction_id": prediction_row["prediction_id"],
                    "model_id": prediction_row["model_id"],
                    "feature_id": prediction_row["feature_id"],
                    "observed": truth,
                    "event_time": now + delay,
                }
                pending.append((now + delay, outcome_row))
            # Release outcomes whose time has come, in arrival order.
            pending.sort(key=lambda item: item[0])
            while pending and pending[0][0] <= now:
                arrival, row = pending.pop(0)
                yield ("outcome", row, arrival)
        for arrival, row in sorted(pending, key=lambda item: item[0]):
            yield ("outcome", row, arrival)

    def series_cardinality(self) -> int:
        return self.models * self.features_per_model
