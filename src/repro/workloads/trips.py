"""Synthetic ride-hailing workload: trips and driver status (Section 5.1).

Seeded generators that preserve the properties surge pricing cares about:
spatial demand concentrated in hotspots (Zipf over hex cells around a city
center), supply that lags demand, time-varying intensity, and a
configurable fraction of late-arriving events (which surge must drop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.hexgrid import HexGrid
from repro.common.rng import seeded_rng, zipf_sampler

# San-Francisco-ish origin; any city works, only relative geometry matters.
DEFAULT_CITY = (37.7749, -122.4194)


@dataclass
class TripEvent:
    kind: str  # trip_requested | trip_started | trip_completed
    trip_id: str
    rider_id: str
    driver_id: str | None
    lat: float
    lon: float
    hex_id: str
    fare: float
    event_time: float

    def to_row(self) -> dict:
        return {
            "kind": self.kind,
            "trip_id": self.trip_id,
            "rider_id": self.rider_id,
            "driver_id": self.driver_id,
            "lat": self.lat,
            "lon": self.lon,
            "hex_id": self.hex_id,
            "fare": self.fare,
            "event_time": self.event_time,
        }


@dataclass
class DriverStatusEvent:
    kind: str  # driver_available | driver_busy
    driver_id: str
    lat: float
    lon: float
    hex_id: str
    event_time: float

    def to_row(self) -> dict:
        return {
            "kind": self.kind,
            "driver_id": self.driver_id,
            "lat": self.lat,
            "lon": self.lon,
            "hex_id": self.hex_id,
            "event_time": self.event_time,
        }


@dataclass
class TripWorkload:
    """Generates interleaved trip and driver-status events."""

    seed: int = 42
    hotspots: int = 12
    drivers: int = 200
    riders: int = 1000
    demand_skew: float = 1.2
    late_fraction: float = 0.02
    max_lateness: float = 300.0
    requests_per_second: float = 5.0
    grid: HexGrid = field(
        default_factory=lambda: HexGrid(DEFAULT_CITY[0], DEFAULT_CITY[1], 500.0)
    )

    def __post_init__(self) -> None:
        rng = seeded_rng(self.seed, "hotspots")
        # Hotspot centers spread a few km around the city center.
        self._hotspot_coords = [
            (
                DEFAULT_CITY[0] + rng.uniform(-0.04, 0.04),
                DEFAULT_CITY[1] + rng.uniform(-0.04, 0.04),
            )
            for __ in range(self.hotspots)
        ]

    def events(self, duration_seconds: float, start_time: float = 0.0) -> Iterator:
        """Yield (event, event_time) ordered by *arrival* time: a fraction
        of events carries an event_time in the past (late data)."""
        rng = seeded_rng(self.seed, "trips")
        hotspot_of = zipf_sampler(rng, self.hotspots, self.demand_skew)
        trip_counter = 0
        now = start_time
        interval = 1.0 / self.requests_per_second
        while now < start_time + duration_seconds:
            now += rng.expovariate(1.0) * interval
            hotspot = hotspot_of()
            lat0, lon0 = self._hotspot_coords[hotspot]
            lat = lat0 + rng.gauss(0, 0.002)
            lon = lon0 + rng.gauss(0, 0.002)
            cell = self.grid.cell_for(lat, lon)
            trip_counter += 1
            trip_id = f"trip-{self.seed}-{trip_counter}"
            rider = f"rider-{rng.randrange(self.riders)}"
            driver = f"driver-{rng.randrange(self.drivers)}"
            event_time = now
            if rng.random() < self.late_fraction:
                event_time = max(start_time, now - rng.uniform(0, self.max_lateness))
            yield (
                TripEvent(
                    "trip_requested",
                    trip_id,
                    rider,
                    None,
                    lat,
                    lon,
                    cell.cell_id(),
                    0.0,
                    event_time,
                ),
                now,
            )
            # Supply signal: drivers flip status around the same cells.
            if rng.random() < 0.6:
                status = (
                    "driver_available" if rng.random() < 0.55 else "driver_busy"
                )
                yield (
                    DriverStatusEvent(
                        status, driver, lat, lon, cell.cell_id(), now
                    ),
                    now,
                )
            if rng.random() < 0.8:
                fare = round(rng.uniform(6.0, 45.0), 2)
                completion = now + rng.uniform(120, 900)
                yield (
                    TripEvent(
                        "trip_completed",
                        trip_id,
                        rider,
                        driver,
                        lat,
                        lon,
                        cell.cell_id(),
                        fare,
                        completion,
                    ),
                    completion,
                )
