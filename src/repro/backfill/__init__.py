"""Backfill (Section 7): Kappa+ over Hive, Kafka replay, Lambda baseline.

The SQL-based backfill path lives in
:meth:`repro.sql.flinksql.FlinkSqlCompiler.compile_batch` — the same query
compiles to a streaming or a batch job.
"""

from repro.backfill.kappa_plus import (
    BackfillReport,
    KappaPlusRunner,
    kappa_replay,
    lambda_batch,
)

__all__ = ["BackfillReport", "KappaPlusRunner", "kappa_replay", "lambda_batch"]
