"""Backfill: Kappa+, classic Kappa replay, and Lambda (Section 7).

Kappa+ "is able to reuse the stream processing logic just like Kappa
architecture but it can directly read archived data from offline datasets
such as Hive", addressing: identifying the start/end boundary of the
bounded input, throttling the much-higher throughput of historic reads,
and tolerating out-of-order offline data with larger watermark slack.

The two architectures it improves on are here for the C13 bench:

* **Kappa**: replay the Kafka log itself — only works while retention
  still covers the range ("we limit Kafka retention to only a few days.
  Therefore, we're unable to adopt the Kappa architecture").
* **Lambda**: a separately-maintained batch implementation of the same
  logic — runs fine, but is a second codebase that can drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import BackfillError
from repro.flink.graph import JobGraph, StreamEnvironment
from repro.flink.operators import BoundedListSource
from repro.flink.runtime import JobRuntime
from repro.kafka.cluster import KafkaCluster
from repro.storage.hive import HiveTable

# A pipeline builder attaches the user's streaming logic to a source
# stream and returns the terminal stream to sink: fn(stream) -> stream.
PipelineBuilder = Callable[[Any], Any]


@dataclass
class BackfillReport:
    rows_read: int = 0
    rows_missing: int = 0  # wanted but not available (Kappa retention)
    outputs: int = 0
    steps: int = 0  # scheduler rounds under throttling
    peak_buffered: int = 0
    results: list = field(default_factory=list)  # lambda_batch outputs


class KappaPlusRunner:
    """Runs streaming logic over a bounded Hive slice.

    * start/end boundary: only rows with ``start_time <= t < end_time``.
    * throttling: the scheduler processes ``throttle_records_per_step``
      records per round, bounding memory over the firehose of history.
    * out-of-order data: ``max_out_of_orderness`` widens the watermark
      slack so shuffled offline files do not mark rows late.
    """

    def __init__(
        self,
        table: HiveTable,
        time_column: str,
        start_time: float,
        end_time: float,
        throttle_records_per_step: int = 500,
        max_out_of_orderness: float = 300.0,
    ) -> None:
        if end_time <= start_time:
            raise BackfillError("end_time must be after start_time")
        self.table = table
        self.time_column = time_column
        self.start_time = start_time
        self.end_time = end_time
        self.throttle = throttle_records_per_step
        self.max_out_of_orderness = max_out_of_orderness

    def run(
        self,
        pipeline: PipelineBuilder,
        sink_collector: list,
        job_name: str = "kappa-plus-backfill",
    ) -> BackfillReport:
        report = BackfillReport()
        elements: list[tuple[Any, float]] = []
        for row in self.table.scan():
            timestamp = row.get(self.time_column)
            if timestamp is None:
                continue
            if self.start_time <= timestamp < self.end_time:
                elements.append((row, float(timestamp)))
        report.rows_read = len(elements)
        if not elements:
            return report
        source = BoundedListSource(
            elements,
            max_out_of_orderness=self.max_out_of_orderness,
            batch_size=self.throttle,
        )
        env = StreamEnvironment()
        stream = env.add_source(source, name="hive-backfill-source")
        terminal = pipeline(stream)
        terminal.sink_to_list(sink_collector)
        graph: JobGraph = env.build(job_name)
        runtime = JobRuntime(graph)
        # Drive in throttled rounds.  Buffering is probed right after the
        # sources emit (the in-flight peak the throttle bounds), not after
        # downstream drained the round.
        source_ids = {op.op_id for op in graph.sources()}
        while True:
            progressed = 0
            for op_id in runtime._topo:
                for task in runtime.tasks[op_id]:
                    progressed += task.step(self.throttle)
                if op_id in source_ids:
                    report.peak_buffered = max(
                        report.peak_buffered,
                        runtime.total_buffered_elements(),
                    )
            report.steps += 1
            if progressed == 0:
                break
        report.outputs = len(sink_collector)
        return report


def kappa_replay(
    cluster: KafkaCluster,
    topic: str,
    time_column: str,
    start_time: float,
    end_time: float,
    pipeline: PipelineBuilder,
    sink_collector: list,
    max_out_of_orderness: float = 0.0,
    job_name: str = "kappa-replay",
) -> BackfillReport:
    """Classic Kappa: re-read the Kafka log for the time range.

    Whatever retention already expired is simply *gone* — the report's
    ``rows_missing`` counts records whose offsets were truncated (estimated
    from the log start offsets; the experiment driver knows the true
    produced count and passes nothing here).
    """
    report = BackfillReport()
    elements: list[tuple[Any, float]] = []
    missing = 0
    for partition in range(cluster.partition_count(topic)):
        start = cluster.start_offset(topic, partition)
        missing += start  # offsets below the start were expired
        offset = start
        end = cluster.end_offset(topic, partition)
        while offset < end:
            for entry in cluster.fetch(topic, partition, offset, 1000):
                offset = entry.offset + 1
                row = entry.record.value
                timestamp = row.get(time_column)
                if timestamp is None or not start_time <= timestamp < end_time:
                    continue
                elements.append((row, float(timestamp)))
    report.rows_missing = missing
    report.rows_read = len(elements)
    if not elements:
        return report
    # Partitions are read sequentially above; merge them back into event-
    # time order so one partition's tail does not mark another's head late
    # (a real replay consumer interleaves partitions the same way).
    elements.sort(key=lambda pair: pair[1])
    source = BoundedListSource(elements, max_out_of_orderness=max_out_of_orderness)
    env = StreamEnvironment()
    terminal = pipeline(env.add_source(source, name="kafka-replay-source"))
    terminal.sink_to_list(sink_collector)
    runtime = JobRuntime(env.build(job_name))
    runtime.run_until_quiescent()
    report.outputs = len(sink_collector)
    return report


def lambda_batch(
    table: HiveTable,
    time_column: str,
    start_time: float,
    end_time: float,
    batch_fn: Callable[[list[dict[str, Any]]], list[Any]],
) -> BackfillReport:
    """Lambda architecture: a *separate* batch implementation.

    ``batch_fn`` is the user's second copy of the logic — the maintenance
    and consistency liability the paper criticizes.  The bench demonstrates
    the liability by diffing its output against the streaming result.
    """
    report = BackfillReport()
    rows = [
        row
        for row in table.scan()
        if row.get(time_column) is not None
        and start_time <= row[time_column] < end_time
    ]
    report.rows_read = len(rows)
    outputs = batch_fn(rows)
    report.outputs = len(outputs)
    report.results = outputs
    return report
