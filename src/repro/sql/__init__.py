"""SQL layer: one dialect, two engines (Sections 4.2.1 and 4.5).

``parser`` is the shared dialect; ``flinksql`` compiles it to streaming or
batch Flink jobs; ``presto`` executes it interactively, federated across
Pinot and Hive connectors with staged operator pushdown.
"""

from repro.sql.flinksql import FlinkSqlCompiler, SqlWindowAggregate, StreamTableDef
from repro.sql.parser import Select, parse

__all__ = [
    "FlinkSqlCompiler",
    "SqlWindowAggregate",
    "StreamTableDef",
    "Select",
    "parse",
]
