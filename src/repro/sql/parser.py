"""SQL lexer, AST and recursive-descent parser.

One SQL dialect serves both layers of the paper:

* **FlinkSQL** (Section 4.2.1): streaming queries with ``TUMBLE``/``HOP``
  window functions in the GROUP BY.
* **PrestoSQL** (Section 4.5): interactive queries with joins, subqueries
  in FROM, and the operators the Pinot connector can push down.

Grammar (informal)::

    select      := SELECT select_item (',' select_item)*
                   FROM table_source (JOIN table_source ON eq_cond)*
                   [WHERE condition] [GROUP BY group_item (',' group_item)*]
                   [HAVING condition] [ORDER BY order_item (',' order_item)*]
                   [LIMIT number]
    table_source:= ident [AS? ident] | '(' select ')' AS? ident
    group_item  := expr | TUMBLE '(' ident ',' number ')'
                        | HOP '(' ident ',' number ',' number ')'
    condition   := disjunction of conjunctions of comparisons
    comparison  := expr (=|!=|<>|>|>=|<|<=) expr | expr IN '(' literals ')'
                 | expr BETWEEN literal AND literal
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import SqlParseError

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "JOIN", "ON", "ASC", "DESC",
    "TUMBLE", "HOP", "DISTINCT", "TRUE", "FALSE", "NULL", "INNER", "LEFT",
}

# Note: the leading '-' belongs to the number token (negative literals).
# The dialect has no arithmetic expressions, so this never conflicts with
# a binary minus.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><>|!=|>=|<=|=|<|>)
  | (?P<punct>[(),*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'punct' | 'eof'
    text: str


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlParseError(f"cannot tokenize at: {sql[pos:pos + 20]!r}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "ident":
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("keyword", upper))
            else:
                tokens.append(Token("ident", text))
        else:
            tokens.append(Token(match.lastgroup, text))
    tokens.append(Token("eof", ""))
    return tokens


# --- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Column:
    name: str
    table: str | None = None

    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class Star:
    pass


@dataclass(frozen=True)
class FuncCall:
    name: str  # upper-cased
    args: tuple
    distinct: bool = False


@dataclass(frozen=True)
class Comparison:
    op: str  # '=', '!=', '>', '>=', '<', '<=', 'IN', 'BETWEEN'
    left: Any
    right: Any = None
    values: tuple = ()
    low: Any = None
    high: Any = None


@dataclass(frozen=True)
class BoolOp:
    op: str  # 'AND' | 'OR'
    operands: tuple


@dataclass(frozen=True)
class SelectItem:
    expr: Any
    alias: str | None = None


@dataclass(frozen=True)
class TumbleSpec:
    time_column: str
    size: float


@dataclass(frozen=True)
class HopSpec:
    time_column: str
    slide: float
    size: float


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None


@dataclass
class SubqueryRef:
    select: "Select"
    alias: str


@dataclass
class JoinClause:
    table: Any  # TableRef | SubqueryRef
    left_key: Column
    right_key: Column


@dataclass
class Select:
    items: list[SelectItem]
    source: Any  # TableRef | SubqueryRef
    joins: list[JoinClause] = field(default_factory=list)
    where: Any = None
    group_by: list[Any] = field(default_factory=list)  # Column|TumbleSpec|HopSpec
    having: Any = None
    order_by: list[tuple[Any, bool]] = field(default_factory=list)
    limit: int | None = None

    def window(self) -> TumbleSpec | HopSpec | None:
        for item in self.group_by:
            if isinstance(item, (TumbleSpec, HopSpec)):
                return item
        return None

    def group_columns(self) -> list[Column]:
        return [g for g in self.group_by if isinstance(g, Column)]

    def aggregations(self) -> list[tuple[FuncCall, str | None]]:
        return [
            (item.expr, item.alias)
            for item in self.items
            if isinstance(item.expr, FuncCall)
        ]


# --- parser ------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise SqlParseError(f"expected {want}, got {token.text!r}")
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- entry ---------------------------------------------------------------

    def parse_select(self) -> Select:
        self.expect("keyword", "SELECT")
        items = [self._select_item()]
        while self.accept("punct", ","):
            items.append(self._select_item())
        self.expect("keyword", "FROM")
        source = self._table_source()
        joins: list[JoinClause] = []
        while True:
            if self.accept("keyword", "INNER"):
                self.expect("keyword", "JOIN")
            elif not self.accept("keyword", "JOIN"):
                break
            table = self._table_source()
            self.expect("keyword", "ON")
            left = self._column()
            self.expect("op", "=")
            right = self._column()
            joins.append(JoinClause(table, left, right))
        where = None
        if self.accept("keyword", "WHERE"):
            where = self._condition()
        group_by: list[Any] = []
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by.append(self._group_item())
            while self.accept("punct", ","):
                group_by.append(self._group_item())
        having = None
        if self.accept("keyword", "HAVING"):
            having = self._condition()
        order_by: list[tuple[Any, bool]] = []
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by.append(self._order_item())
            while self.accept("punct", ","):
                order_by.append(self._order_item())
        limit = None
        if self.accept("keyword", "LIMIT"):
            limit = int(self.expect("number").text)
        return Select(items, source, joins, where, group_by, having, order_by, limit)

    # -- pieces -----------------------------------------------------------------

    def _select_item(self) -> SelectItem:
        expr = self._expr()
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("ident").text
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return SelectItem(expr, alias)

    def _table_source(self):
        if self.accept("punct", "("):
            select = self.parse_select()
            self.expect("punct", ")")
            self.accept("keyword", "AS")
            alias = self.expect("ident").text
            return SubqueryRef(select, alias)
        name = self.expect("ident").text
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("ident").text
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return TableRef(name, alias)

    def _group_item(self):
        token = self.peek()
        if token.kind == "keyword" and token.text in ("TUMBLE", "HOP"):
            self.advance()
            self.expect("punct", "(")
            column = self.expect("ident").text
            self.expect("punct", ",")
            first = float(self.expect("number").text)
            if token.text == "TUMBLE":
                self.expect("punct", ")")
                return TumbleSpec(column, first)
            self.expect("punct", ",")
            size = float(self.expect("number").text)
            self.expect("punct", ")")
            return HopSpec(column, first, size)
        return self._column()

    def _order_item(self) -> tuple[Any, bool]:
        expr = self._expr()
        descending = False
        if self.accept("keyword", "DESC"):
            descending = True
        else:
            self.accept("keyword", "ASC")
        return (expr, descending)

    def _condition(self):
        return self._disjunction()

    def _disjunction(self):
        operands = [self._conjunction()]
        while self.accept("keyword", "OR"):
            operands.append(self._conjunction())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("OR", tuple(operands))

    def _conjunction(self):
        operands = [self._comparison()]
        while self.accept("keyword", "AND"):
            operands.append(self._comparison())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("AND", tuple(operands))

    def _comparison(self):
        if self.accept("punct", "("):
            inner = self._condition()
            self.expect("punct", ")")
            return inner
        left = self._expr()
        token = self.peek()
        if token.kind == "op":
            op = self.advance().text
            if op == "<>":
                op = "!="
            right = self._expr()
            return Comparison(op, left, right)
        if token.kind == "keyword" and token.text == "IN":
            self.advance()
            self.expect("punct", "(")
            values = [self._literal_value()]
            while self.accept("punct", ","):
                values.append(self._literal_value())
            self.expect("punct", ")")
            return Comparison("IN", left, values=tuple(values))
        if token.kind == "keyword" and token.text == "BETWEEN":
            self.advance()
            low = self._literal_value()
            self.expect("keyword", "AND")
            high = self._literal_value()
            return Comparison("BETWEEN", left, low=low, high=high)
        raise SqlParseError(f"expected comparison operator, got {token.text!r}")

    def _expr(self):
        token = self.peek()
        if token.kind == "punct" and token.text == "*":
            self.advance()
            return Star()
        if token.kind == "number":
            self.advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.text in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.text == "TRUE")
        if token.kind == "keyword" and token.text == "NULL":
            self.advance()
            return Literal(None)
        if token.kind == "ident":
            name = self.advance().text
            if self.peek().kind == "punct" and self.peek().text == "(":
                return self._func_call(name)
            return _to_column(name)
        raise SqlParseError(f"unexpected token {token.text!r} in expression")

    def _func_call(self, name: str) -> FuncCall:
        self.expect("punct", "(")
        distinct = bool(self.accept("keyword", "DISTINCT"))
        args: list[Any] = []
        if not (self.peek().kind == "punct" and self.peek().text == ")"):
            args.append(self._expr())
            while self.accept("punct", ","):
                args.append(self._expr())
        self.expect("punct", ")")
        return FuncCall(name.upper(), tuple(args), distinct)

    def _column(self) -> Column:
        return _to_column(self.expect("ident").text)

    def _literal_value(self) -> Any:
        expr = self._expr()
        if not isinstance(expr, Literal):
            raise SqlParseError("expected a literal value")
        return expr.value


def _to_column(name: str) -> Column:
    if "." in name:
        table, __, column = name.partition(".")
        return Column(column, table)
    return Column(name)


def parse(sql: str) -> Select:
    """Parse one SELECT statement."""
    parser = _Parser(tokenize(sql))
    select = parser.parse_select()
    if parser.peek().kind != "eof":
        raise SqlParseError(f"trailing input at {parser.peek().text!r}")
    return select
