"""The Presto-style federated query engine (Section 4.5).

An MPP-in-miniature: all execution is in memory; connectors provide the
I/O.  The planner splits each query into a pushable fragment (sent to the
connector per its capabilities) and a residual fragment (joins, residual
predicates, aggregation when not pushed, HAVING, ORDER BY, LIMIT) executed
by the engine.  Queries can join tables across connectors — the "combine
Pinot's seconds level data freshness with Presto's flexibility" story of
Section 4.3.2, and subqueries in FROM are materialized recursively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import Clock, SystemClock
from repro.common.errors import SqlPlanError
from repro.observability.trace import SpanCollector
from repro.sql.parser import (
    BoolOp,
    Column,
    Comparison,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    Star,
    SubqueryRef,
    parse,
)
from repro.sql.presto.connector import (
    Connector,
    PushedAggregation,
    PushedFilter,
    ScanRequest,
)


@dataclass
class QueryStats:
    """Execution evidence for the pushdown benches (C10)."""

    rows_transferred: int = 0  # connector -> engine
    source_rows_examined: int = 0
    pushed_filters: int = 0
    pushed_aggregation: bool = False
    joined_rows: int = 0
    connectors_used: list[str] = field(default_factory=list)
    tables_scanned: list[str] = field(default_factory=list)
    # Uniform pruning/caching evidence, summed over every scan the query
    # performed (Pinot scans fill the segment/server fields, Hive scans
    # the file fields).
    servers_queried: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    files_scanned: int = 0
    files_pruned: int = 0
    cache_hits: int = 0

    def absorb_scan(self, result) -> None:
        """Fold one connector ScanResult into the totals."""
        self.rows_transferred += result.rows_transferred
        self.source_rows_examined += result.source_rows_examined
        self.servers_queried += result.servers_queried
        self.segments_scanned += result.segments_scanned
        self.segments_pruned += result.segments_pruned
        self.files_scanned += result.files_scanned
        self.files_pruned += result.files_pruned
        self.cache_hits += 1 if result.cache_hit else 0

    def absorb(self, inner: "QueryStats") -> None:
        """Fold a subquery's stats into the totals."""
        self.rows_transferred += inner.rows_transferred
        self.source_rows_examined += inner.source_rows_examined
        self.tables_scanned.extend(inner.tables_scanned)
        self.servers_queried += inner.servers_queried
        self.segments_scanned += inner.segments_scanned
        self.segments_pruned += inner.segments_pruned
        self.files_scanned += inner.files_scanned
        self.files_pruned += inner.files_pruned
        self.cache_hits += inner.cache_hits


@dataclass
class QueryOutput:
    rows: list[dict[str, Any]]
    stats: QueryStats


class PrestoEngine:
    """Federated executor over a catalog of connectors."""

    def __init__(
        self,
        catalog: dict[str, Connector],
        clock: Clock | None = None,
        tracer: SpanCollector | None = None,
    ) -> None:
        # catalog: logical table name -> connector serving it
        self.catalog = catalog
        self.clock = clock or SystemClock()
        self.tracer = tracer

    def execute(self, sql: str) -> QueryOutput:
        start = self.clock.now() if self.tracer is not None else 0.0
        output = self._execute_select(parse(sql))
        if self.tracer is not None:
            end = self.clock.now()
            for table in dict.fromkeys(output.stats.tables_scanned):
                self.tracer.record_table_query(
                    table,
                    "presto",
                    start=start,
                    end=end,
                    rows=len(output.rows),
                )
        return output

    # -- planning & execution -------------------------------------------------

    def _execute_select(self, select: Select) -> QueryOutput:
        stats = QueryStats()
        if select.window() is not None:
            raise SqlPlanError(
                "TUMBLE/HOP windows are streaming SQL; use FlinkSqlCompiler"
            )
        if select.joins:
            rows = self._execute_join(select, stats)
            rows = self._apply_residual(select, rows, stats, joined=True)
        else:
            rows = self._execute_single(select, stats)
        return QueryOutput(rows, stats)

    # -- single-table path with pushdown ----------------------------------------

    def _execute_single(self, select: Select, stats: QueryStats) -> list[dict]:
        source = select.source
        if isinstance(source, SubqueryRef):
            inner = self._execute_select(source.select)
            stats.absorb(inner.stats)
            rows = inner.rows
            return self._apply_residual(select, rows, stats, joined=False)
        connector = self._connector_for(source.name)
        stats.connectors_used.append(connector.name)
        stats.tables_scanned.append(source.name)
        caps = connector.capabilities()
        pushable, residual = _split_conjuncts(select.where)
        push_filters = pushable if "predicate" in caps else []
        if "predicate" not in caps:
            residual = _conjoin(pushable, residual)
            pushable = []
        aggs = select.aggregations()
        group_cols = [c.name for c in select.group_columns()]
        can_push_agg = (
            "aggregation" in caps
            and aggs
            and not residual
            and select.having is None
            and all(_pushable_agg(f) for f, __ in aggs)
            and _select_is_groups_and_aggs(select)
        )
        request = ScanRequest(
            table=source.name,
            filters=[_to_pushed(c) for c in push_filters],
            columns=self._needed_columns(select) if "projection" in caps else None,
            aggregations=(
                [_to_pushed_agg(f, alias) for f, alias in aggs]
                if can_push_agg
                else None
            ),
            group_by=group_cols if can_push_agg else None,
            limit=select.limit,
        )
        result = connector.scan(request)
        stats.absorb_scan(result)
        stats.pushed_filters += len(push_filters) if result.filters_applied else 0
        stats.pushed_aggregation = result.aggregated
        rows = result.rows
        if not result.filters_applied and pushable:
            residual = _conjoin(pushable, residual)
        if result.aggregated:
            # Connector returned final groups; only order/limit remain.
            rows = _order_rows(select, rows)
            return rows[: select.limit] if select.limit else rows
        if residual is not None:
            rows = [r for r in rows if _eval_condition(residual, r)]
        return self._apply_projection_aggregation(select, rows)

    # -- join path -------------------------------------------------------------------

    def _execute_join(self, select: Select, stats: QueryStats) -> list[dict]:
        """Hash joins, entirely in the Presto worker's memory — exactly why
        the paper says Presto joins "cannot be used for critical use cases"
        (Section 4.3), motivating Pinot lookup joins (future work)."""
        base_alias, base_rows = self._scan_for_join(select.source, select, stats)
        joined = [
            {f"{base_alias}.{k}": v for k, v in row.items()} for row in base_rows
        ]
        for clause in select.joins:
            right_alias, right_rows = self._scan_for_join(clause.table, select, stats)
            build: dict[Any, list[dict]] = {}
            right_key = clause.right_key
            left_key = clause.left_key
            # Allow the ON clause in either order.
            if right_key.table == base_alias or (
                left_key.table == right_alias
            ):
                left_key, right_key = right_key, left_key
            for row in right_rows:
                build.setdefault(row.get(right_key.name), []).append(row)
            out = []
            for row in joined:
                key = row.get(f"{left_key.table}.{left_key.name}")
                for match in build.get(key, []):
                    merged = dict(row)
                    merged.update(
                        {f"{right_alias}.{k}": v for k, v in match.items()}
                    )
                    out.append(merged)
            joined = out
        stats.joined_rows = len(joined)
        return joined

    def _scan_for_join(self, table_source, select: Select, stats: QueryStats):
        if isinstance(table_source, SubqueryRef):
            inner = self._execute_select(table_source.select)
            stats.absorb(inner.stats)
            return table_source.alias, inner.rows
        alias = table_source.alias or table_source.name
        connector = self._connector_for(table_source.name)
        stats.connectors_used.append(connector.name)
        stats.tables_scanned.append(table_source.name)
        caps = connector.capabilities()
        pushable, __ = _split_conjuncts(select.where)
        # Only predicates scoped to this alias can go down with this scan.
        mine = [
            c
            for c in pushable
            if isinstance(c.left, Column) and c.left.table in (alias, None, table_source.name)
        ] if "predicate" in caps else []
        # Unqualified predicates are only safe to push when there's exactly
        # one table; in joins, require explicit qualification.
        mine = [c for c in mine if isinstance(c.left, Column) and c.left.table == alias]
        request = ScanRequest(
            table=table_source.name,
            filters=[_to_pushed(_strip_qualifier(c)) for c in mine],
        )
        result = connector.scan(request)
        stats.absorb_scan(result)
        if result.filters_applied:
            stats.pushed_filters += len(mine)
        return alias, result.rows

    # -- residual relational algebra ------------------------------------------------

    def _apply_residual(
        self, select: Select, rows: list[dict], stats: QueryStats, joined: bool
    ) -> list[dict]:
        condition = select.where
        if condition is not None:
            if joined:
                rows = [r for r in rows if _eval_condition(condition, r, qualified=True)]
            else:
                rows = [r for r in rows if _eval_condition(condition, r)]
        return self._apply_projection_aggregation(select, rows, qualified=joined)

    def _apply_projection_aggregation(
        self, select: Select, rows: list[dict], qualified: bool = False
    ) -> list[dict]:
        aggs = select.aggregations()
        if aggs:
            rows = _aggregate_rows(select, rows, qualified)
            if select.having is not None:
                rows = [r for r in rows if _eval_condition(select.having, r)]
        else:
            rows = [_project_row(select.items, row, qualified) for row in rows]
        rows = _order_rows(select, rows)
        return rows[: select.limit] if select.limit else rows

    # -- helpers ------------------------------------------------------------------------

    def _connector_for(self, table: str) -> Connector:
        if table not in self.catalog:
            raise SqlPlanError(f"table {table!r} is not in the Presto catalog")
        return self.catalog[table]

    def _needed_columns(self, select: Select) -> list[str] | None:
        columns: set[str] = set()
        for item in select.items:
            if isinstance(item.expr, Star):
                return None
            for col in _columns_of(item.expr):
                columns.add(col.name)
        for g in select.group_columns():
            columns.add(g.name)
        if select.where is not None:
            for col in _columns_of(select.where):
                columns.add(col.name)
        for expr, __ in select.order_by:
            for col in _columns_of(expr):
                columns.add(col.name)
        return sorted(columns)


# --- expression evaluation -----------------------------------------------------


def _columns_of(node) -> list[Column]:
    if isinstance(node, Column):
        return [node]
    if isinstance(node, FuncCall):
        return [c for arg in node.args for c in _columns_of(arg)]
    if isinstance(node, Comparison):
        return _columns_of(node.left) + (
            _columns_of(node.right) if node.right is not None else []
        )
    if isinstance(node, BoolOp):
        return [c for operand in node.operands for c in _columns_of(operand)]
    return []


def _lookup(row: dict, column: Column, qualified: bool) -> Any:
    if qualified:
        if column.table is not None:
            return row.get(f"{column.table}.{column.name}")
        # Unqualified in a join: unique suffix match.
        matches = [v for k, v in row.items() if k.endswith(f".{column.name}")]
        if len(matches) > 1:
            raise SqlPlanError(f"ambiguous column {column.name!r} in join")
        return matches[0] if matches else row.get(column.name)
    return row.get(column.name)


def _eval_expr(node, row: dict, qualified: bool = False) -> Any:
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, Column):
        return _lookup(row, node, qualified)
    raise SqlPlanError(f"cannot evaluate expression {node!r} per-row")


def _eval_condition(node, row: dict, qualified: bool = False) -> bool:
    if isinstance(node, BoolOp):
        results = (_eval_condition(op, row, qualified) for op in node.operands)
        return all(results) if node.op == "AND" else any(results)
    if isinstance(node, Comparison):
        left = _eval_expr(node.left, row, qualified)
        if node.op == "IN":
            return left in node.values
        if node.op == "BETWEEN":
            return left is not None and node.low <= left <= node.high
        right = _eval_expr(node.right, row, qualified)
        if left is None or right is None:
            return False
        return {
            "=": left == right,
            "!=": left != right,
            ">": left > right,
            ">=": left >= right,
            "<": left < right,
            "<=": left <= right,
        }[node.op]
    raise SqlPlanError(f"cannot evaluate condition {node!r}")


# --- aggregation --------------------------------------------------------------------


def _agg_alias(func: FuncCall, alias: str | None) -> str:
    if alias:
        return alias
    arg = "*"
    if func.args and isinstance(func.args[0], Column):
        arg = func.args[0].name
    name = func.name.lower()
    if func.distinct:
        name = f"{name}_distinct"
    return f"{name}({arg})"


def _aggregate_rows(select: Select, rows: list[dict], qualified: bool) -> list[dict]:
    group_cols = select.group_columns()
    aggs = select.aggregations()
    groups: dict[tuple, list[Any]] = {}
    for row in rows:
        key = tuple(_lookup(row, c, qualified) for c in group_cols)
        states = groups.get(key)
        if states is None:
            states = [_agg_init(f) for f, __ in aggs]
            groups[key] = states
        for i, (func, __) in enumerate(aggs):
            states[i] = _agg_update(func, states[i], row, qualified)
    out = []
    for key, states in groups.items():
        result_row: dict[str, Any] = {}
        for col, value in zip(group_cols, key):
            result_row[col.name] = value
        for (func, alias), stateval in zip(aggs, states):
            result_row[_agg_alias(func, alias)] = _agg_final(func, stateval)
        out.append(result_row)
    if not group_cols and not out:
        # Global aggregation over empty input still yields one row.
        result_row = {}
        for func, alias in aggs:
            result_row[_agg_alias(func, alias)] = _agg_final(func, _agg_init(func))
        out.append(result_row)
    return out


def _agg_init(func: FuncCall) -> Any:
    if func.distinct:
        return set()
    return {
        "COUNT": 0,
        "SUM": 0.0,
        "AVG": [0.0, 0],
        "MIN": math.inf,
        "MAX": -math.inf,
    }.get(func.name, 0)


def _agg_update(func: FuncCall, state: Any, row: dict, qualified: bool) -> Any:
    if func.name == "COUNT" and (not func.args or isinstance(func.args[0], Star)):
        if func.distinct:
            raise SqlPlanError("COUNT(DISTINCT *) is not valid")
        return state + 1
    value = _eval_expr(func.args[0], row, qualified) if func.args else None
    if value is None:
        return state
    if func.distinct:
        state.add(value)
        return state
    if func.name == "COUNT":
        return state + 1
    if func.name == "SUM":
        return state + value
    if func.name == "AVG":
        state[0] += value
        state[1] += 1
        return state
    if func.name == "MIN":
        return min(state, value)
    if func.name == "MAX":
        return max(state, value)
    raise SqlPlanError(f"unknown aggregate function {func.name!r}")


def _agg_final(func: FuncCall, state: Any) -> Any:
    if func.distinct:
        return len(state)
    if func.name == "AVG":
        return state[0] / state[1] if state[1] else None
    if func.name in ("MIN", "MAX") and state in (math.inf, -math.inf):
        return None
    return state


# --- projection / ordering -----------------------------------------------------------


def _project_row(items: list[SelectItem], row: dict, qualified: bool) -> dict:
    out: dict[str, Any] = {}
    for item in items:
        if isinstance(item.expr, Star):
            out.update(row)
        elif isinstance(item.expr, Column):
            name = item.alias or item.expr.name
            out[name] = _lookup(row, item.expr, qualified)
        elif isinstance(item.expr, Literal):
            out[item.alias or str(item.expr.value)] = item.expr.value
        else:
            raise SqlPlanError(f"unsupported select expression {item.expr!r}")
    return out


def _order_rows(select: Select, rows: list[dict]) -> list[dict]:
    for expr, descending in reversed(select.order_by):
        if isinstance(expr, Column):
            name = expr.name
        elif isinstance(expr, FuncCall):
            name = _agg_alias(expr, None)
            # An aliased aggregate may be ordered by its alias instead.
            for item in select.items:
                if item.expr == expr and item.alias:
                    name = item.alias
        else:
            raise SqlPlanError(f"cannot ORDER BY {expr!r}")
        rows.sort(key=lambda r: (r.get(name) is None, r.get(name)), reverse=descending)
    return rows


# --- conjunct splitting for pushdown ---------------------------------------------------


def _split_conjuncts(condition) -> tuple[list[Comparison], Any]:
    """(pushable simple conjuncts, residual condition)."""
    if condition is None:
        return [], None
    conjuncts: list[Any] = []
    if isinstance(condition, BoolOp) and condition.op == "AND":
        conjuncts = list(condition.operands)
    else:
        conjuncts = [condition]
    pushable: list[Comparison] = []
    residual: list[Any] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, Comparison)
            and isinstance(conjunct.left, Column)
            and (conjunct.right is None or isinstance(conjunct.right, Literal))
        ):
            pushable.append(conjunct)
        else:
            residual.append(conjunct)
    residual_node = None
    if len(residual) == 1:
        residual_node = residual[0]
    elif residual:
        residual_node = BoolOp("AND", tuple(residual))
    return pushable, residual_node


def _conjoin(comparisons: list[Comparison], residual) -> Any:
    nodes: list[Any] = list(comparisons)
    if residual is not None:
        nodes.append(residual)
    if not nodes:
        return None
    if len(nodes) == 1:
        return nodes[0]
    return BoolOp("AND", tuple(nodes))


def _to_pushed(comparison: Comparison) -> PushedFilter:
    column = comparison.left
    assert isinstance(column, Column)
    return PushedFilter(
        column=column.name,
        op=comparison.op,
        value=comparison.right.value if isinstance(comparison.right, Literal) else None,
        values=comparison.values,
        low=comparison.low,
        high=comparison.high,
    )


def _strip_qualifier(comparison: Comparison) -> Comparison:
    column = comparison.left
    assert isinstance(column, Column)
    return Comparison(
        comparison.op,
        Column(column.name),
        comparison.right,
        comparison.values,
        comparison.low,
        comparison.high,
    )


def _pushable_agg(func: FuncCall) -> bool:
    if func.distinct:
        return func.name == "COUNT" and bool(func.args)
    return func.name in ("COUNT", "SUM", "AVG", "MIN", "MAX")


def _select_is_groups_and_aggs(select: Select) -> bool:
    group_names = {c.name for c in select.group_columns()}
    for item in select.items:
        if isinstance(item.expr, FuncCall):
            continue
        if isinstance(item.expr, Column) and item.expr.name in group_names:
            continue
        return False
    return True


def _to_pushed_agg(func: FuncCall, alias: str | None) -> PushedAggregation:
    column = None
    if func.args and isinstance(func.args[0], Column):
        column = func.args[0].name
    name = func.name
    if func.distinct and name == "COUNT":
        name = "DISTINCTCOUNT"
    return PushedAggregation(name, column, _agg_alias(func, alias))
