"""The Presto-style federated query engine (Section 4.5).

An MPP-in-miniature: all execution is in memory; connectors provide the
I/O.  Queries flow through the planner pipeline in ``repro.sql.planner``:

    parse -> logical IR -> rule optimizer -> physical stage DAG
          -> multi-worker stage scheduler

The optimizer pushes predicates, projections, aggregations and limits
into connectors per their typed :class:`ConnectorCapabilities`, and
reorders hash joins by connector cardinality estimates (Pinot ZoneMaps,
Hive row counts).  The scheduler memoizes stage outputs across queries,
keyed on ``(content-hashed plan subtree, table epochs)``, composing with
the broker's epoch-invalidated result cache one layer down.  Queries can
join tables across connectors — the "combine Pinot's seconds level data
freshness with Presto's flexibility" story of Section 4.3.2 — and
subqueries in FROM dissolve into the same stage DAG.

``PrestoEngine.explain(sql)`` renders both plans byte-stably;
``QueryOutput.plan`` carries the full :class:`PlannedQuery` so callers
can introspect what actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import Clock, SystemClock
from repro.common.errors import SqlPlanError
from repro.observability.trace import SpanCollector
from repro.sql.parser import parse
from repro.sql.planner.logical import (
    build_logical,
    direct_scan_nodes,
    render,
    scan_nodes,
)
from repro.sql.planner.physical import PhysicalPlan, build_physical, render_physical
from repro.sql.planner.rules import optimize
from repro.sql.planner.scheduler import StageScheduler

# Back-compat: these helpers used to be defined here; FlinkSQL and older
# call sites import the underscore names.  They now live in
# repro.sql.planner.rowops so every execution path shares one definition.
from repro.sql.planner.rowops import (  # noqa: F401  (re-exports)
    agg_alias as _agg_alias,
    agg_final as _agg_final,
    agg_init as _agg_init,
    agg_update as _agg_update,
    columns_of as _columns_of,
    conjoin as _conjoin,
    eval_condition as _eval_condition,
    eval_expr as _eval_expr,
    lookup as _lookup,
    project_row as _project_row,
    pushable_agg as _pushable_agg,
    select_is_groups_and_aggs as _select_is_groups_and_aggs,
    split_conjuncts as _split_conjuncts,
    strip_qualifier as _strip_qualifier,
    to_pushed as _to_pushed,
    to_pushed_agg as _to_pushed_agg,
)
from repro.sql.presto.connector import Connector, connector_epoch


@dataclass
class QueryStats:
    """Execution evidence for the pushdown benches (C10)."""

    rows_transferred: int = 0  # connector -> engine
    source_rows_examined: int = 0
    pushed_filters: int = 0
    pushed_aggregation: bool = False
    joined_rows: int = 0
    connectors_used: list[str] = field(default_factory=list)
    tables_scanned: list[str] = field(default_factory=list)
    # Uniform pruning/caching evidence, summed over every scan the query
    # performed (Pinot scans fill the segment/server fields, Hive scans
    # the file fields).
    servers_queried: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    files_scanned: int = 0
    files_pruned: int = 0
    cache_hits: int = 0
    # Stage scheduler evidence: how much of the plan actually ran versus
    # was served from the cross-query stage artifact store.
    stages_executed: int = 0
    stage_artifact_hits: int = 0


@dataclass
class PlannedQuery:
    """A query after planning but before (or after) execution."""

    sql: str
    logical: Any  # optimized logical plan root
    physical: PhysicalPlan

    def explain(self) -> str:
        """Deterministic, byte-stable rendering of both plan layers."""
        logical_text = "\n".join(
            "  " + line for line in render(self.logical).splitlines()
        )
        return (
            "Logical plan:\n"
            + logical_text
            + "\nPhysical plan:\n"
            + render_physical(self.physical)
        )


@dataclass
class QueryOutput:
    rows: list[dict[str, Any]]
    stats: QueryStats
    plan: PlannedQuery | None = None


class PrestoEngine:
    """Federated executor over a catalog of connectors."""

    def __init__(
        self,
        catalog: dict[str, Connector],
        clock: Clock | None = None,
        tracer: SpanCollector | None = None,
        workers: int = 2,
        artifact_reuse: bool = True,
        artifact_capacity: int = 256,
        sticky: bool = True,
    ) -> None:
        # catalog: logical table name -> connector serving it
        self.catalog = catalog
        self.clock = clock or SystemClock()
        self.tracer = tracer
        self.scheduler = StageScheduler(
            catalog,
            workers=workers,
            artifact_reuse=artifact_reuse,
            artifact_capacity=artifact_capacity,
            sticky=sticky,
            tracer=tracer,
            clock=self.clock,
        )
        self._query_seq = 0

    # -- planning -------------------------------------------------------------

    def plan(self, sql: str) -> PlannedQuery:
        """Parse, optimize and stage ``sql`` without executing it."""
        logical = build_logical(parse(sql), self._connector_name_for)
        logical = optimize(logical, self.catalog)
        return PlannedQuery(sql, logical, build_physical(logical))

    def explain(self, sql: str) -> str:
        return self.plan(sql).explain()

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str) -> QueryOutput:
        planned = self.plan(sql)
        self._query_seq += 1
        query_id = f"presto-q{self._query_seq:06d}"
        start = self.clock.now() if self.tracer is not None else 0.0
        epochs: dict[str, int | None] = {}
        for scan in scan_nodes(planned.logical):
            if scan.table not in epochs:
                epochs[scan.table] = connector_epoch(
                    self.catalog[scan.table], scan.table
                )
        payload, executions = self.scheduler.run(planned.physical, epochs, query_id)
        stats = self._fold_stats(planned, payload, executions)
        output = QueryOutput(payload.as_rows(), stats, planned)
        if self.tracer is not None:
            end = self.clock.now()
            for table in dict.fromkeys(stats.tables_scanned):
                self.tracer.record_table_query(
                    table,
                    "presto",
                    start=start,
                    end=end,
                    rows=len(output.rows),
                )
        return output

    # -- helpers --------------------------------------------------------------

    def _connector_name_for(self, table: str) -> str:
        if table not in self.catalog:
            raise SqlPlanError(f"table {table!r} is not in the Presto catalog")
        return self.catalog[table].name

    @staticmethod
    def _fold_stats(planned: PlannedQuery, payload, executions) -> QueryStats:
        evidence = payload.evidence
        stats = QueryStats(
            rows_transferred=evidence.rows_transferred,
            source_rows_examined=evidence.source_rows_examined,
            pushed_filters=evidence.pushed_filters,
            pushed_aggregation=evidence.pushed_aggregation,
            joined_rows=evidence.joined_rows,
            servers_queried=evidence.servers_queried,
            segments_scanned=evidence.segments_scanned,
            segments_pruned=evidence.segments_pruned,
            files_scanned=evidence.files_scanned,
            files_pruned=evidence.files_pruned,
            cache_hits=evidence.cache_hits,
        )
        stats.tables_scanned = [s.table for s in scan_nodes(planned.logical)]
        stats.connectors_used = [
            s.connector for s in direct_scan_nodes(planned.logical)
        ]
        stats.stages_executed = sum(
            1 for e in executions if not e.served_from_artifact
        )
        stats.stage_artifact_hits = sum(
            1 for e in executions if e.served_from_artifact
        )
        return stats
