"""Presto-style federated interactive SQL (Section 4.5)."""

from repro.sql.presto.connector import (
    HiveConnector,
    MemoryConnector,
    PinotConnector,
    PushedAggregation,
    PushedFilter,
    ScanRequest,
    ScanResult,
)
from repro.sql.presto.engine import PrestoEngine, QueryOutput, QueryStats

__all__ = [
    "HiveConnector",
    "MemoryConnector",
    "PinotConnector",
    "PushedAggregation",
    "PushedFilter",
    "ScanRequest",
    "ScanResult",
    "PrestoEngine",
    "QueryOutput",
    "QueryStats",
]
