"""Presto-style federated interactive SQL (Section 4.5)."""

from repro.sql.presto.connector import (
    CardinalityEstimate,
    ConnectorCapabilities,
    HiveConnector,
    MemoryConnector,
    PinotConnector,
    PushedAggregation,
    PushedFilter,
    ScanRequest,
    ScanResult,
)
from repro.sql.presto.engine import (
    PlannedQuery,
    PrestoEngine,
    QueryOutput,
    QueryStats,
)

__all__ = [
    "CardinalityEstimate",
    "ConnectorCapabilities",
    "HiveConnector",
    "MemoryConnector",
    "PinotConnector",
    "PushedAggregation",
    "PushedFilter",
    "ScanRequest",
    "ScanResult",
    "PlannedQuery",
    "PrestoEngine",
    "QueryOutput",
    "QueryStats",
]
