"""Presto Connector API (Section 4.5).

"Presto is designed to be flexible and extensible.  It provides a
Connector API with high performance I/O interface to multiple data
sources."  Connectors advertise *capabilities*; the engine pushes the
matching plan fragments down and keeps the rest.

The Pinot connector reproduces the paper's two-stage history: the first
version "only included predicate pushdown given the limited connector
API"; the enhanced version pushes "as many operators down to the Pinot
layer as possible, such as projection, aggregation and limit".  Construct
it with ``pushdown="predicate"`` or ``pushdown="full"`` (or ``"none"``) to
measure each stage (bench C10).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.common.errors import SqlPlanError
from repro.pinot.broker import PinotBroker
from repro.pinot.query import Aggregation, Filter, PinotQuery
from repro.storage.hive import HiveMetastore

_CAPABILITY_FLAGS = ("predicate", "projection", "aggregation", "limit")

# Default aggregate vocabulary for connectors migrated from the legacy
# set[str] capability form (matches what the engine can evaluate itself).
_DEFAULT_AGG_FUNCS = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "DISTINCTCOUNT"}
)

# Cardinality assigned to sources that cannot estimate at all: large, so
# the join reorderer builds hash tables from anything it *can* cost first.
UNKNOWN_CARDINALITY = 10**9


@dataclass(frozen=True)
class ConnectorCapabilities:
    """Typed pushdown contract a connector advertises to the planner.

    Replaces the old ``capabilities() -> set[str]`` form.  ``in`` checks
    against capability names still work (``"predicate" in caps``), so
    call sites written against the string-set API keep reading naturally.
    """

    predicate: bool = False
    projection: bool = False
    aggregation: bool = False
    limit: bool = False
    # Aggregate functions the source can finalize itself (engine-side
    # names; COUNT DISTINCT travels as DISTINCTCOUNT).  Only consulted
    # when ``aggregation`` is True.
    agg_functions: frozenset[str] = frozenset()
    # The connector can return selection scans as ColumnBatch pages
    # (``ScanResult.pages``); row-only connectors leave this False and
    # the engine's batch↔row adapter keeps them working unchanged.
    columnar: bool = False

    def __contains__(self, capability: str) -> bool:
        return capability in _CAPABILITY_FLAGS and bool(getattr(self, capability))

    def to_set(self) -> set[str]:
        return {flag for flag in _CAPABILITY_FLAGS if getattr(self, flag)}

    @classmethod
    def from_set(
        cls, caps: set[str], agg_functions: frozenset[str] | None = None
    ) -> "ConnectorCapabilities":
        unknown = set(caps) - set(_CAPABILITY_FLAGS)
        if unknown:
            raise SqlPlanError(f"unknown connector capabilities {sorted(unknown)!r}")
        return cls(
            predicate="predicate" in caps,
            projection="projection" in caps,
            aggregation="aggregation" in caps,
            limit="limit" in caps,
            agg_functions=(
                agg_functions
                if agg_functions is not None
                else (_DEFAULT_AGG_FUNCS if "aggregation" in caps else frozenset())
            ),
        )


@dataclass(frozen=True)
class CardinalityEstimate:
    """Planner-facing row-count estimate for one ScanRequest."""

    rows: int
    exact: bool = False  # True when ``rows`` is a real count, not a bound
    source: str = "unknown"  # provenance annotation for explain()


def resolve_capabilities(connector) -> ConnectorCapabilities:
    """Capabilities of ``connector``, accepting the deprecated set form."""
    caps = connector.capabilities()
    if isinstance(caps, ConnectorCapabilities):
        return caps
    if isinstance(caps, (set, frozenset)):
        warnings.warn(
            f"connector {getattr(connector, 'name', connector)!r} returned "
            "capabilities() as set[str]; return ConnectorCapabilities instead "
            "(the set form is deprecated)",
            DeprecationWarning,
            stacklevel=2,
        )
        return ConnectorCapabilities.from_set(caps)
    raise SqlPlanError(
        f"connector capabilities must be ConnectorCapabilities or set[str], "
        f"got {type(caps).__name__}"
    )


def connector_estimate(connector, request: "ScanRequest") -> CardinalityEstimate:
    """Estimate via the connector, tolerating legacy connectors without
    ``estimate()`` (they plan as unknown-cardinality sources)."""
    estimate = getattr(connector, "estimate", None)
    if estimate is None:
        return CardinalityEstimate(UNKNOWN_CARDINALITY, False, "unknown")
    return estimate(request)


def connector_epoch(connector, table: str) -> int | None:
    """Freshness epoch of ``table``, or None when the connector cannot
    version its data (stages over such tables are never artifact-cached)."""
    table_epoch = getattr(connector, "table_epoch", None)
    if table_epoch is None:
        return None
    try:
        return table_epoch(table)
    except Exception:
        return None


def heuristic_selectivity(rows: int, filters: list["PushedFilter"]) -> int:
    """Deterministic post-filter cardinality guess from a pre-filter bound:
    equality-shaped predicates are assumed ~8x selective, ranges ~2x."""
    if rows <= 0:
        return 0
    for flt in filters:
        if flt.op in ("=", "IN"):
            rows = max(1, rows // 8)
        else:
            rows = max(1, rows // 2)
    return rows


@dataclass(frozen=True)
class PushedFilter:
    """Engine-side representation of a pushable predicate."""

    column: str
    op: str  # '=', '!=', '>', '>=', '<', '<=', 'IN', 'BETWEEN'
    value: Any = None
    values: tuple = ()
    low: Any = None
    high: Any = None


@dataclass(frozen=True)
class PushedAggregation:
    func: str  # COUNT/SUM/AVG/MIN/MAX/DISTINCTCOUNT
    column: str | None
    alias: str


@dataclass
class ScanRequest:
    """What the engine asks a connector for."""

    table: str
    filters: list[PushedFilter] = field(default_factory=list)
    columns: list[str] | None = None
    aggregations: list[PushedAggregation] | None = None
    group_by: list[str] | None = None
    limit: int | None = None
    # Engine accepts ColumnBatch pages for this scan (set only when the
    # connector advertised the ``columnar`` capability).
    columnar: bool = False


@dataclass
class ScanResult:
    rows: list[dict[str, Any]]
    # Columnar form: ColumnBatch pages in place of ``rows`` (``rows`` is
    # then empty).  Only produced when the request set ``columnar``.
    pages: list | None = None
    filters_applied: bool = False  # connector already applied the filters
    aggregated: bool = False  # rows are final aggregation results
    source_rows_examined: int = 0  # work done inside the source system
    rows_transferred: int = 0  # rows shipped source -> Presto worker
    # Uniform per-scan pruning/caching stats so benches over different
    # connectors report comparable numbers.  Pinot scans fill the segment
    # and server fields, Hive scans the file fields; a source that prunes
    # nothing reports zeros.
    servers_queried: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    files_scanned: int = 0
    files_pruned: int = 0
    cache_hit: bool = False


class Connector(Protocol):
    name: str

    def capabilities(self) -> ConnectorCapabilities:
        """What this connector can push down.  (Legacy connectors may
        still return a set[str]; the planner resolves it through
        :func:`resolve_capabilities` with a DeprecationWarning.)"""
        ...

    def scan(self, request: ScanRequest) -> ScanResult: ...

    def estimate(self, request: ScanRequest) -> CardinalityEstimate:
        """Planning-time cardinality for the scan — no data access."""
        ...

    def table_epoch(self, table: str) -> int:
        """Freshness version of the table; bumps on every data mutation."""
        ...


_PINOT_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX", "DISTINCTCOUNT"}


class PinotConnector:
    """Connector over our Pinot broker with configurable pushdown stages."""

    def __init__(
        self, broker: PinotBroker, pushdown: str = "full", columnar: bool = False
    ) -> None:
        if pushdown not in ("none", "predicate", "full"):
            raise SqlPlanError(f"unknown pushdown level {pushdown!r}")
        self.name = "pinot"
        self.broker = broker
        self.pushdown = pushdown
        self.columnar = columnar

    def capabilities(self) -> ConnectorCapabilities:
        if self.pushdown == "none":
            return ConnectorCapabilities(columnar=self.columnar)
        if self.pushdown == "predicate":
            return ConnectorCapabilities(predicate=True, columnar=self.columnar)
        return ConnectorCapabilities(
            predicate=True,
            projection=True,
            aggregation=True,
            limit=True,
            agg_functions=frozenset(_PINOT_FUNCS),
            columnar=self.columnar,
        )

    def estimate(self, request: ScanRequest) -> CardinalityEstimate:
        """ZoneMap-informed estimate: docs in segments the broker's pruning
        would actually scatter to, narrowed by a selectivity heuristic."""
        filters = [self._to_pinot_filter(f) for f in request.filters]
        docs, exact = self.broker.estimate_rows(request.table, filters)
        if not request.filters:
            return CardinalityEstimate(docs, exact, "pinot-zonemaps")
        return CardinalityEstimate(
            heuristic_selectivity(docs, request.filters), False, "pinot-zonemaps"
        )

    def table_epoch(self, table: str) -> int:
        return self.broker.controller.table(table).epoch

    def scan(self, request: ScanRequest) -> ScanResult:
        caps = self.capabilities()
        filters = (
            [self._to_pinot_filter(f) for f in request.filters]
            if "predicate" in caps
            else []
        )
        if (
            request.aggregations is not None
            and "aggregation" in caps
            and all(a.func in _PINOT_FUNCS for a in request.aggregations)
        ):
            query = PinotQuery(
                table=request.table,
                aggregations=[
                    Aggregation(a.func, a.column) for a in request.aggregations
                ],
                filters=filters,
                group_by=list(request.group_by or []),
                limit=request.limit or 0,
            )
            result = self.broker.execute(query)
            rows = [
                self._rename_aggs(row, request) for row in result.rows
            ]
            return ScanResult(
                rows=rows,
                filters_applied=True,
                aggregated=True,
                source_rows_examined=result.docs_examined(),
                rows_transferred=len(rows),
                servers_queried=result.servers_queried,
                segments_scanned=result.segments_scanned,
                segments_pruned=result.segments_pruned,
                cache_hit=result.cache_hit,
            )
        columns = request.columns if "projection" in caps else None
        limit = request.limit if "limit" in caps and not request.aggregations else None
        query = PinotQuery(
            table=request.table,
            select_columns=list(columns or []),
            filters=filters,
            limit=limit or 0,
        )
        columnar = self.columnar and request.columnar
        result = self.broker.execute(query, columnar=columnar)
        return ScanResult(
            rows=result.rows,
            pages=result.pages,
            filters_applied=bool(filters),
            aggregated=False,
            source_rows_examined=result.docs_examined(),
            rows_transferred=result.num_rows(),
            servers_queried=result.servers_queried,
            segments_scanned=result.segments_scanned,
            segments_pruned=result.segments_pruned,
            cache_hit=result.cache_hit,
        )

    @staticmethod
    def _rename_aggs(row: dict[str, Any], request: ScanRequest) -> dict[str, Any]:
        out = dict(row)
        for pushed in request.aggregations or []:
            pinot_alias = Aggregation(pushed.func, pushed.column).alias()
            if pinot_alias in out:
                out[pushed.alias] = out.pop(pinot_alias)
        return out

    @staticmethod
    def _to_pinot_filter(flt: PushedFilter) -> Filter:
        return Filter(
            column=flt.column,
            op=flt.op,
            value=flt.value,
            values=flt.values,
            low=flt.low,
            high=flt.high,
        )


class HiveConnector:
    """Connector over the Hive metastore: predicate pruning via file stats,
    but no aggregation pushdown — the Section 4.5 contrast ("sub-second
    query latencies ... not possible to do on standard backends such as
    HDFS/Hive")."""

    def __init__(self, metastore: HiveMetastore) -> None:
        self.name = "hive"
        self.metastore = metastore

    def capabilities(self) -> ConnectorCapabilities:
        return ConnectorCapabilities(predicate=True, projection=True)

    def estimate(self, request: ScanRequest) -> CardinalityEstimate:
        """Metastore row counts narrowed by the shared selectivity
        heuristic — no file reads."""
        rows = self.metastore.table(request.table).row_count()
        if not request.filters:
            return CardinalityEstimate(rows, True, "hive-rowcount")
        return CardinalityEstimate(
            heuristic_selectivity(rows, request.filters), False, "hive-rowcount"
        )

    def table_epoch(self, table: str) -> int:
        return self.metastore.table(table).version

    def scan(self, request: ScanRequest) -> ScanResult:
        table = self.metastore.table(request.table)
        rows: list[dict[str, Any]]
        examined = 0
        files_pruned = 0
        if len(request.filters) == 1 and request.filters[0].op in (
            "=", ">", ">=", "<", "<=",
        ):
            flt = request.filters[0]
            rows, files_scanned, files_pruned = table.scan_with_pruning(
                flt.column, flt.op, flt.value, columns=request.columns
            )
            examined = files_scanned
            filters_applied = True
        else:
            predicate = _compound_predicate(request.filters)
            rows = list(table.scan(columns=request.columns, predicate=predicate))
            examined = table.row_count()
            files_scanned = sum(
                len(table.partition(pkey).file_keys) for pkey in table.partitions()
            )
            filters_applied = bool(request.filters)
        return ScanResult(
            rows=rows,
            filters_applied=filters_applied,
            aggregated=False,
            source_rows_examined=examined,
            rows_transferred=len(rows),
            files_scanned=files_scanned,
            files_pruned=files_pruned,
        )


class MemoryConnector:
    """Rows held in memory (test fixture and subquery materialization)."""

    def __init__(self, tables: dict[str, list[dict[str, Any]]] | None = None) -> None:
        self.name = "memory"
        self.tables = tables or {}
        self._epochs: dict[str, int] = {name: 1 for name in self.tables}

    def capabilities(self) -> ConnectorCapabilities:
        return ConnectorCapabilities()

    def estimate(self, request: ScanRequest) -> CardinalityEstimate:
        rows = len(self.tables.get(request.table, ()))
        if not request.filters:
            return CardinalityEstimate(rows, True, "memory")
        return CardinalityEstimate(
            heuristic_selectivity(rows, request.filters), False, "memory"
        )

    def table_epoch(self, table: str) -> int:
        if table not in self.tables:
            raise SqlPlanError(f"memory connector has no table {table!r}")
        return self._epochs.get(table, 1)

    def add_table(self, name: str, rows: list[dict[str, Any]]) -> None:
        self.tables[name] = rows
        self._epochs[name] = self._epochs.get(name, 0) + 1

    def scan(self, request: ScanRequest) -> ScanResult:
        if request.table not in self.tables:
            raise SqlPlanError(f"memory connector has no table {request.table!r}")
        rows = [dict(r) for r in self.tables[request.table]]
        return ScanResult(
            rows=rows,
            source_rows_examined=len(rows),
            rows_transferred=len(rows),
        )


def _compound_predicate(filters: list[PushedFilter]):
    if not filters:
        return None

    def predicate(row: dict[str, Any]) -> bool:
        for flt in filters:
            value = row.get(flt.column)
            if value is None:
                return False
            if flt.op == "=" and value != flt.value:
                return False
            if flt.op == "!=" and value == flt.value:
                return False
            if flt.op == ">" and not value > flt.value:
                return False
            if flt.op == ">=" and not value >= flt.value:
                return False
            if flt.op == "<" and not value < flt.value:
                return False
            if flt.op == "<=" and not value <= flt.value:
                return False
            if flt.op == "IN" and value not in flt.values:
                return False
            if flt.op == "BETWEEN" and not flt.low <= value <= flt.high:
                return False
        return True

    return predicate
