"""Row-level relational algebra shared by the planner, the stage
scheduler, the reference executor and the FlinkSQL compiler.

These used to live inline in ``repro.sql.presto.engine``; the planner
split them out so that every execution path (stage DAG, naive reference,
streaming) evaluates expressions and aggregates with byte-identical
semantics.  ``repro.sql.presto.engine`` re-exports the old underscore
names for backwards compatibility.

One deliberate semantic choice lives here: :func:`aggregate_rows` returns
grouped output in *canonical order* — sorted by the stringified group key,
exactly the default order :class:`repro.pinot.broker.PinotBroker` uses for
un-ordered GROUP BY results.  That makes engine-side aggregation and
pushed-down aggregation agree row-for-row, which is what lets the planner
treat aggregation pushdown as a pure optimization.
"""

from __future__ import annotations

import math
from typing import Any

from repro.common.errors import SqlPlanError
from repro.sql.parser import (
    BoolOp,
    Column,
    Comparison,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    Star,
)

# NOTE: this module must not import repro.sql.presto at module level —
# repro.sql.presto.__init__ imports the engine, which imports the planner,
# and a module-level cycle would leave one side partially initialized.
# Connector types are imported lazily where needed.

# --- expression evaluation -----------------------------------------------------


def columns_of(node) -> list[Column]:
    if isinstance(node, Column):
        return [node]
    if isinstance(node, FuncCall):
        return [c for arg in node.args for c in columns_of(arg)]
    if isinstance(node, Comparison):
        return columns_of(node.left) + (
            columns_of(node.right) if node.right is not None else []
        )
    if isinstance(node, BoolOp):
        return [c for operand in node.operands for c in columns_of(operand)]
    return []


def lookup(row: dict, column: Column, qualified: bool) -> Any:
    if qualified:
        if column.table is not None:
            return row.get(f"{column.table}.{column.name}")
        # Unqualified in a join: unique suffix match.
        matches = [v for k, v in row.items() if k.endswith(f".{column.name}")]
        if len(matches) > 1:
            raise SqlPlanError(f"ambiguous column {column.name!r} in join")
        return matches[0] if matches else row.get(column.name)
    return row.get(column.name)


def eval_expr(node, row: dict, qualified: bool = False) -> Any:
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, Column):
        return lookup(row, node, qualified)
    raise SqlPlanError(f"cannot evaluate expression {node!r} per-row")


def eval_condition(node, row: dict, qualified: bool = False) -> bool:
    if isinstance(node, BoolOp):
        results = (eval_condition(op, row, qualified) for op in node.operands)
        return all(results) if node.op == "AND" else any(results)
    if isinstance(node, Comparison):
        left = eval_expr(node.left, row, qualified)
        if node.op == "IN":
            return left in node.values
        if node.op == "BETWEEN":
            return left is not None and node.low <= left <= node.high
        right = eval_expr(node.right, row, qualified)
        if left is None or right is None:
            return False
        return {
            "=": left == right,
            "!=": left != right,
            ">": left > right,
            ">=": left >= right,
            "<": left < right,
            "<=": left <= right,
        }[node.op]
    raise SqlPlanError(f"cannot evaluate condition {node!r}")


# --- aggregation --------------------------------------------------------------------


def agg_alias(func: FuncCall, alias: str | None) -> str:
    if alias:
        return alias
    arg = "*"
    if func.args and isinstance(func.args[0], Column):
        arg = func.args[0].name
    name = func.name.lower()
    if func.distinct:
        name = f"{name}_distinct"
    return f"{name}({arg})"


def aggregate_rows(
    group_cols: list[Column],
    aggs: list[tuple[FuncCall, str | None]],
    rows: list[dict],
    qualified: bool,
) -> list[dict]:
    groups: dict[tuple, list[Any]] = {}
    for row in rows:
        key = tuple(lookup(row, c, qualified) for c in group_cols)
        states = groups.get(key)
        if states is None:
            states = [agg_init(f) for f, __ in aggs]
            groups[key] = states
        for i, (func, __) in enumerate(aggs):
            states[i] = agg_update(func, states[i], row, qualified)
    out = []
    for key, states in groups.items():
        result_row: dict[str, Any] = {}
        for col, value in zip(group_cols, key):
            result_row[col.name] = value
        for (func, alias), stateval in zip(aggs, states):
            result_row[agg_alias(func, alias)] = agg_final(func, stateval)
        out.append(result_row)
    if not group_cols and not out:
        # Global aggregation over empty input still yields one row.
        result_row = {}
        for func, alias in aggs:
            result_row[agg_alias(func, alias)] = agg_final(func, agg_init(func))
        out.append(result_row)
    if group_cols:
        # Canonical group order: the PinotBroker default for un-ordered
        # GROUP BY output, so pushed and engine-side aggregation agree.
        out.sort(
            key=lambda r: tuple(str(r.get(c.name)) for c in group_cols)
        )
    return out


def agg_init(func: FuncCall) -> Any:
    if func.distinct:
        return set()
    return {
        "COUNT": 0,
        "SUM": 0.0,
        "AVG": [0.0, 0],
        "MIN": math.inf,
        "MAX": -math.inf,
    }.get(func.name, 0)


def agg_update(func: FuncCall, state: Any, row: dict, qualified: bool) -> Any:
    if func.name == "COUNT" and (not func.args or isinstance(func.args[0], Star)):
        if func.distinct:
            raise SqlPlanError("COUNT(DISTINCT *) is not valid")
        return state + 1
    value = eval_expr(func.args[0], row, qualified) if func.args else None
    if value is None:
        return state
    if func.distinct:
        state.add(value)
        return state
    if func.name == "COUNT":
        return state + 1
    if func.name == "SUM":
        return state + value
    if func.name == "AVG":
        state[0] += value
        state[1] += 1
        return state
    if func.name == "MIN":
        return min(state, value)
    if func.name == "MAX":
        return max(state, value)
    raise SqlPlanError(f"unknown aggregate function {func.name!r}")


def agg_final(func: FuncCall, state: Any) -> Any:
    if func.distinct:
        return len(state)
    if func.name == "AVG":
        return state[0] / state[1] if state[1] else None
    if func.name in ("MIN", "MAX") and state in (math.inf, -math.inf):
        return None
    return state


# --- projection / ordering -----------------------------------------------------------


def project_row(items: list[SelectItem], row: dict, qualified: bool) -> dict:
    out: dict[str, Any] = {}
    for item in items:
        if isinstance(item.expr, Star):
            out.update(row)
        elif isinstance(item.expr, Column):
            name = item.alias or item.expr.name
            out[name] = lookup(row, item.expr, qualified)
        elif isinstance(item.expr, Literal):
            out[item.alias or str(item.expr.value)] = item.expr.value
        else:
            raise SqlPlanError(f"unsupported select expression {item.expr!r}")
    return out


def sort_keys_for(select: Select) -> list[tuple[str, bool]]:
    """Resolve ORDER BY expressions to output column names at plan time."""
    keys: list[tuple[str, bool]] = []
    for expr, descending in select.order_by:
        if isinstance(expr, Column):
            name = expr.name
        elif isinstance(expr, FuncCall):
            name = agg_alias(expr, None)
            # An aliased aggregate may be ordered by its alias instead.
            for item in select.items:
                if item.expr == expr and item.alias:
                    name = item.alias
        else:
            raise SqlPlanError(f"cannot ORDER BY {expr!r}")
        keys.append((name, descending))
    return keys


def order_rows(keys: list[tuple[str, bool]], rows: list[dict]) -> list[dict]:
    for name, descending in reversed(keys):
        rows.sort(key=lambda r: (r.get(name) is None, r.get(name)), reverse=descending)
    return rows


# --- conjunct splitting for pushdown ---------------------------------------------------


def split_conjuncts(condition) -> tuple[list[Comparison], Any]:
    """(pushable simple conjuncts, residual condition)."""
    if condition is None:
        return [], None
    conjuncts: list[Any] = []
    if isinstance(condition, BoolOp) and condition.op == "AND":
        conjuncts = list(condition.operands)
    else:
        conjuncts = [condition]
    pushable: list[Comparison] = []
    residual: list[Any] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, Comparison)
            and isinstance(conjunct.left, Column)
            and (conjunct.right is None or isinstance(conjunct.right, Literal))
        ):
            pushable.append(conjunct)
        else:
            residual.append(conjunct)
    residual_node = None
    if len(residual) == 1:
        residual_node = residual[0]
    elif residual:
        residual_node = BoolOp("AND", tuple(residual))
    return pushable, residual_node


def conjoin(comparisons: list[Comparison], residual) -> Any:
    nodes: list[Any] = list(comparisons)
    if residual is not None:
        nodes.append(residual)
    if not nodes:
        return None
    if len(nodes) == 1:
        return nodes[0]
    return BoolOp("AND", tuple(nodes))


def to_pushed(comparison: Comparison):
    from repro.sql.presto.connector import PushedFilter

    column = comparison.left
    assert isinstance(column, Column)
    return PushedFilter(
        column=column.name,
        op=comparison.op,
        value=comparison.right.value if isinstance(comparison.right, Literal) else None,
        values=comparison.values,
        low=comparison.low,
        high=comparison.high,
    )


def strip_qualifier(comparison: Comparison) -> Comparison:
    column = comparison.left
    assert isinstance(column, Column)
    return Comparison(
        comparison.op,
        Column(column.name),
        comparison.right,
        comparison.values,
        comparison.low,
        comparison.high,
    )


def pushable_agg(func: FuncCall) -> bool:
    if func.distinct:
        return func.name == "COUNT" and bool(func.args)
    return func.name in ("COUNT", "SUM", "AVG", "MIN", "MAX")


def select_is_groups_and_aggs(select: Select) -> bool:
    group_names = {c.name for c in select.group_columns()}
    for item in select.items:
        if isinstance(item.expr, FuncCall):
            continue
        if isinstance(item.expr, Column) and item.expr.name in group_names:
            continue
        return False
    return True


def to_pushed_agg(func: FuncCall, alias: str | None):
    from repro.sql.presto.connector import PushedAggregation

    column = None
    if func.args and isinstance(func.args[0], Column):
        column = func.args[0].name
    name = func.name
    if func.distinct and name == "COUNT":
        name = "DISTINCTCOUNT"
    return PushedAggregation(name, column, agg_alias(func, alias))
