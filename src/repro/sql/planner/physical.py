"""Physical planner: logical tree -> stage DAG.

Each logical node becomes one :class:`Stage` — ``remote_scan`` for leaves
(the connector does the I/O) and ``local_compute`` for everything the
engine evaluates itself.  Stages carry a *content key*: the blake2b hash
of the canonical rendering of their logical subtree.  Two stages — in the
same query or in different queries — with equal keys compute the same
rows over the same table versions, which is what lets the scheduler
memoize stage outputs across overlapping queries, keyed on
``(content key, table epochs)``.

Subqueries dissolve into the DAG: their root stage is marked
``block_boundary`` so per-block statistics (pushed_filters,
pushed_aggregation, joined_rows) stop propagating there, exactly like the
pre-planner engine's per-SELECT ``QueryStats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any

from repro.sql.planner.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SubqueryNode,
    canonical,
    tables_of,
)

REMOTE_SCAN = "remote_scan"
LOCAL_COMPUTE = "local_compute"


@dataclass
class Stage:
    sid: int
    kind: str  # remote_scan | local_compute
    op: str  # scan | join | filter | having | aggregate | project | sort | limit
    inputs: tuple  # tuple[int] — sids of input stages, in syntactic order
    node: Any  # the logical node this stage executes
    key: str  # content hash of the canonical logical subtree
    tables: tuple  # tuple[str] — tables under the subtree (epoch scope)
    block_boundary: bool = False  # True at a subquery root


@dataclass
class PhysicalPlan:
    stages: list = field(default_factory=list)  # topologically ordered
    root: int = -1


def content_key(node) -> str:
    return blake2b(canonical(node).encode("utf-8"), digest_size=8).hexdigest()


def build_physical(root) -> PhysicalPlan:
    plan = PhysicalPlan()

    def emit(kind: str, op: str, inputs: list, node) -> int:
        sid = len(plan.stages)
        plan.stages.append(
            Stage(
                sid=sid,
                kind=kind,
                op=op,
                inputs=tuple(inputs),
                node=node,
                key=content_key(node),
                tables=tables_of(node),
            )
        )
        return sid

    def visit(node) -> int:
        if isinstance(node, ScanNode):
            return emit(REMOTE_SCAN, "scan", [], node)
        if isinstance(node, SubqueryNode):
            sid = visit(node.plan)
            plan.stages[sid].block_boundary = True
            return sid
        if isinstance(node, JoinNode):
            inputs = [visit(node.base)]
            inputs.extend(visit(step.right) for step in node.steps)
            return emit(LOCAL_COMPUTE, "join", inputs, node)
        if isinstance(node, FilterNode):
            op = "having" if node.kind == "having" else "filter"
            return emit(LOCAL_COMPUTE, op, [visit(node.input)], node)
        if isinstance(node, AggregateNode):
            return emit(LOCAL_COMPUTE, "aggregate", [visit(node.input)], node)
        if isinstance(node, ProjectNode):
            return emit(LOCAL_COMPUTE, "project", [visit(node.input)], node)
        if isinstance(node, SortNode):
            return emit(LOCAL_COMPUTE, "sort", [visit(node.input)], node)
        if isinstance(node, LimitNode):
            return emit(LOCAL_COMPUTE, "limit", [visit(node.input)], node)
        raise TypeError(f"cannot stage logical node {node!r}")

    plan.root = visit(root)
    return plan


def _stage_label(stage: Stage) -> str:
    node = stage.node
    if stage.op == "scan":
        return f"scan[{node.connector}:{node.table} AS {node.alias}]"
    if stage.op == "join":
        aliases = [node.base_alias] + [step.alias for step in node.steps]
        return f"join[{' * '.join(aliases)}]"
    return stage.op


def render_physical(plan: PhysicalPlan) -> str:
    """Deterministic one-line-per-stage rendering for explain()."""
    lines = []
    for stage in plan.stages:
        parts = [f"s{stage.sid}", stage.kind, _stage_label(stage)]
        if stage.inputs:
            parts.append("inputs=[" + ", ".join(f"s{i}" for i in stage.inputs) + "]")
        parts.append(f"key={stage.key}")
        if stage.block_boundary:
            parts.append("subquery-root")
        lines.append("  " + " ".join(parts))
    lines.append(f"  root: s{plan.root}")
    return "\n".join(lines)
