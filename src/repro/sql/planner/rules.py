"""Rule optimizer: pushdown + join reordering over the logical IR.

Rewrites a :mod:`repro.sql.planner.logical` tree against the typed
connector contract (:class:`ConnectorCapabilities` +
``estimate(ScanRequest) -> CardinalityEstimate``):

* **Predicate pushdown** — simple ``column op literal`` conjuncts move
  into the Scan of a predicate-capable connector; the residual condition
  stays as an engine-side Filter.  In joins, the *full* WHERE is kept
  engine-side (alias-scoped conjuncts are additionally pushed into the
  matching scan, so the source ships fewer rows but semantics never
  depend on the connector honoring the filter).
* **Projection pushdown** — the scan ships only columns the rest of the
  plan can reference.  Join keys, ORDER BY columns and residual-filter
  columns are always retained; join-side pruning engages only when every
  column reference is alias-qualified (otherwise ambiguity detection
  would change meaning) and never through subqueries.
* **Aggregation pushdown** — whole GROUP BY blocks move into a connector
  that advertises every aggregate function involved, when no residual
  filter remains.  Output order is canonical (stringified group key) on
  both paths, so pushdown is row-for-row invisible.
* **Limit pushdown** — only when truncating at the source provably
  commutes with the rest of the plan: no residual filter, no sort.  (For
  pushed aggregations the source truncates in canonical group order,
  which matches the engine's.)
* **Join reordering** — hash-join build sides execute smallest-first by
  connector cardinality estimates (Pinot: ZoneMap-surviving docs).  The
  scheduler restores the syntactic nested-loop row order afterwards, so
  reordering is invisible in the output.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.sql.parser import Column, Star
from repro.sql.planner.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SubqueryNode,
)
from repro.sql.planner.rowops import (
    columns_of,
    conjoin,
    pushable_agg,
    split_conjuncts,
    strip_qualifier,
    to_pushed,
    to_pushed_agg,
)


def optimize(root, catalog: dict[str, Any]):
    """Return an optimized copy of ``root`` (the input tree is not mutated)."""
    return _optimize_block(root, catalog)


# --- one SELECT block ----------------------------------------------------------


def _optimize_block(node, catalog):
    # Unwrap the operator chain of this block down to its source.
    limit_node = sort_node = having_node = where_node = None
    if isinstance(node, LimitNode):
        limit_node, node = node, node.input
    if isinstance(node, SortNode):
        sort_node, node = node, node.input
    if isinstance(node, FilterNode) and node.kind == "having":
        having_node, node = node, node.input
    shaper = node  # AggregateNode | ProjectNode
    node = shaper.input
    if isinstance(node, FilterNode):
        where_node, node = node, node.input
    source = node

    if isinstance(source, (SubqueryNode, JoinNode)):
        if isinstance(source, SubqueryNode):
            source = SubqueryNode(
                _optimize_block(source.plan, catalog), source.alias
            )
        else:
            source = _optimize_join(source, shaper, where_node, sort_node, catalog)
        if where_node is not None:
            source = FilterNode(
                source, where_node.condition, where_node.qualified, "where"
            )
        shaper = _reattach(shaper, source)
    else:
        shaper = _optimize_single_scan(
            source, shaper, where_node, sort_node, limit_node, catalog
        )

    # Reassemble the chain around the rewritten source.
    chain = shaper
    if having_node is not None:
        chain = FilterNode(chain, having_node.condition, False, "having")
    if sort_node is not None:
        chain = replace(sort_node, input=chain)
    if limit_node is not None:
        chain = LimitNode(chain, limit_node.n)
    return chain


def _reattach(shaper, source):
    """Rebuild the Aggregate/Project shaper over a rewritten input."""
    return replace(shaper, input=source)


# --- single-table scan ---------------------------------------------------------


def _optimize_single_scan(scan, shaper, where_node, sort_node, limit_node, catalog):
    from repro.sql.presto.connector import (
        ScanRequest,
        connector_estimate,
        resolve_capabilities,
    )

    connector = catalog[scan.table]
    caps = resolve_capabilities(connector)
    where_cond = where_node.condition if where_node else None
    pushable, residual = split_conjuncts(where_cond)
    if "predicate" in caps and pushable:
        scan = replace(scan, filters=tuple(pushable))
        where_cond = residual
    else:
        where_cond = conjoin(pushable, residual)

    # Aggregation pushdown: the whole GROUP BY block moves to the source.
    can_push_agg = (
        isinstance(shaper, AggregateNode)
        and "aggregation" in caps
        and shaper.aggs
        and where_cond is None
        and shaper.simple
        and all(pushable_agg(f) for f, __ in shaper.aggs)
        and all(
            to_pushed_agg(f, a).func in caps.agg_functions for f, a in shaper.aggs
        )
    )
    if can_push_agg:
        scan = replace(
            scan,
            aggregations=tuple(shaper.aggs),
            group_by=tuple(c.name for c in shaper.group_cols),
        )
        # Source-side truncation commutes only when the engine would also
        # truncate in canonical group order (no sort, no having follows —
        # having is represented as a separate Filter node upstream).
        if limit_node is not None and sort_node is None:
            scan = replace(scan, limit=limit_node.n)
        shaper = replace(shaper, pushed=True)

    # Projection pushdown.
    if "projection" in caps:
        needed = _needed_columns(shaper, where_cond, sort_node)
        if needed is not None:
            scan = replace(scan, columns=tuple(needed))

    # Limit pushdown (non-aggregated): only when source truncation is the
    # identity on the final result — nothing reorders or drops rows later.
    if (
        limit_node is not None
        and not can_push_agg
        and isinstance(shaper, ProjectNode)
        and where_cond is None
        and sort_node is None
        and "limit" in caps
    ):
        scan = replace(scan, limit=limit_node.n)

    scan = replace(
        scan,
        estimate=connector_estimate(
            connector,
            ScanRequest(table=scan.table, filters=[to_pushed(c) for c in scan.filters]),
        ),
    )
    if where_cond is not None:
        source = FilterNode(scan, where_cond, False, "where")
    else:
        source = scan
    return _reattach(shaper, source)


def _needed_columns(shaper, where_cond, sort_node):
    """Columns a single-table block needs from its scan (None = all)."""
    columns: set[str] = set()
    if isinstance(shaper, ProjectNode):
        for item in shaper.items:
            if isinstance(item.expr, Star):
                return None
            for col in columns_of(item.expr):
                columns.add(col.name)
    else:
        for func, __ in shaper.aggs:
            for col in columns_of(func):
                columns.add(col.name)
        for col in shaper.group_cols:
            columns.add(col.name)
    if where_cond is not None:
        for col in columns_of(where_cond):
            columns.add(col.name)
    if sort_node is not None:
        for col in sort_node.columns:
            columns.add(col.name)
    return sorted(columns)


# --- joins ---------------------------------------------------------------------


def _optimize_join(join, shaper, where_node, sort_node, catalog):
    from repro.sql.presto.connector import (
        UNKNOWN_CARDINALITY,
        ScanRequest,
        connector_estimate,
        resolve_capabilities,
    )

    where_cond = where_node.condition if where_node else None
    pushable, __ = split_conjuncts(where_cond)
    pruned_columns = _join_pruned_columns(join, shaper, where_cond, sort_node)

    def rewrite_side(side, alias):
        if isinstance(side, SubqueryNode):
            return SubqueryNode(_optimize_block(side.plan, catalog), side.alias), None
        connector = catalog[side.table]
        caps = resolve_capabilities(connector)
        # Only predicates explicitly scoped to this alias go down with
        # this scan; the full WHERE still runs engine-side afterwards.
        mine = (
            [
                strip_qualifier(c)
                for c in pushable
                if isinstance(c.left, Column) and c.left.table == alias
            ]
            if "predicate" in caps
            else []
        )
        scan = replace(side, filters=tuple(mine))
        if (
            pruned_columns is not None
            and "projection" in caps
            and alias in pruned_columns
        ):
            scan = replace(scan, columns=tuple(sorted(pruned_columns[alias])))
        estimate = connector_estimate(
            connector,
            ScanRequest(table=scan.table, filters=[to_pushed(c) for c in mine]),
        )
        return replace(scan, estimate=estimate), estimate

    base, base_estimate = rewrite_side(join.base, join.base_alias)
    steps = []
    step_rows = []
    for step in join.steps:
        right, estimate = rewrite_side(step.right, step.alias)
        steps.append(replace(step, right=right))
        step_rows.append(estimate.rows if estimate is not None else UNKNOWN_CARDINALITY)

    # Greedy smallest-build-side-first ordering; a step is applicable once
    # its probe side has been joined.  Syntactic order breaks ties and is
    # the fallback when no remaining step is applicable (mis-qualified ON
    # clauses keep their original — if degenerate — behavior).
    joined_aliases = {join.base_alias}
    remaining = list(range(len(steps)))
    exec_order: list[int] = []
    while remaining:
        applicable = [
            i for i in remaining if steps[i].probe_key.table in joined_aliases
        ]
        if not applicable:
            exec_order.extend(remaining)
            break
        pick = min(applicable, key=lambda i: (step_rows[i], i))
        exec_order.append(pick)
        remaining.remove(pick)
        joined_aliases.add(steps[pick].alias)
    return JoinNode(base, join.base_alias, tuple(steps), tuple(exec_order))


def _join_pruned_columns(join, shaper, where_cond, sort_node):
    """Per-alias column sets for join-side projection pushdown, or None.

    Pruning engages only when it provably cannot change semantics:

    * no Star in the select items;
    * every column reference anywhere in the block is qualified with a
      known alias (unqualified references resolve by suffix match over
      the joined row, and dropping columns could silently change an
      "ambiguous column" error into a hit);
    * every join key resolves to a known alias.

    Join keys, ORDER BY columns and filter columns are always retained —
    the historical projection-pushdown bug this rule family guards
    against by construction.
    """
    aliases = [join.base_alias] + [step.alias for step in join.steps]
    if len(set(aliases)) != len(aliases):
        return None
    known = set(aliases)
    refs: list[Column] = []
    if isinstance(shaper, ProjectNode):
        for item in shaper.items:
            if isinstance(item.expr, Star):
                return None
            refs.extend(columns_of(item.expr))
    else:
        for func, __ in shaper.aggs:
            refs.extend(columns_of(func))
        refs.extend(shaper.group_cols)
    if where_cond is not None:
        refs.extend(columns_of(where_cond))
    if sort_node is not None:
        refs.extend(sort_node.columns)
    needed: dict[str, set[str]] = {alias: set() for alias in aliases}
    for col in refs:
        if col.table is None or col.table not in known:
            return None
        needed[col.table].add(col.name)
    for step in join.steps:
        probe, build = step.probe_key, step.build_key
        if probe.table not in known or build.table != step.alias:
            return None
        needed[probe.table].add(probe.name)
        needed[build.table].add(build.name)
    return needed
