"""Reference executor: the planner's correctness oracle.

Executes a parsed SELECT with *no* optimization at all — full unfiltered
scans of every table, engine-side filters, syntactic-order nested hash
joins, engine-side aggregation in canonical group order.  Slow on
purpose: any divergence between this and the planned pipeline is a
planner bug, never a reference bug.  The property suite asserts
``planned ≡ unplanned`` row-for-row over randomized queries and data.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import SqlPlanError
from repro.sql.parser import Select, SubqueryRef, parse
from repro.sql.planner.rowops import (
    aggregate_rows,
    eval_condition,
    order_rows,
    project_row,
    sort_keys_for,
)


class ReferenceExecutor:
    """Deliberately naive federated executor over the same catalog."""

    def __init__(self, catalog: dict[str, Any]) -> None:
        self.catalog = catalog

    def execute(self, sql: str) -> list[dict[str, Any]]:
        return self._execute_select(parse(sql))

    # -- internals ------------------------------------------------------------

    def _scan_all(self, table: str) -> list[dict[str, Any]]:
        from repro.sql.presto.connector import ScanRequest

        if table not in self.catalog:
            raise SqlPlanError(f"table {table!r} is not in the Presto catalog")
        return self.catalog[table].scan(ScanRequest(table=table)).rows

    def _rows_for(self, table_source) -> tuple[str, list[dict[str, Any]]]:
        if isinstance(table_source, SubqueryRef):
            return table_source.alias, self._execute_select(table_source.select)
        alias = table_source.alias or table_source.name
        return alias, self._scan_all(table_source.name)

    def _execute_select(self, select: Select) -> list[dict[str, Any]]:
        if select.window() is not None:
            raise SqlPlanError(
                "TUMBLE/HOP windows are streaming SQL; use FlinkSqlCompiler"
            )
        qualified = bool(select.joins)
        if select.joins:
            base_alias, base_rows = self._rows_for(select.source)
            rows = [
                {f"{base_alias}.{k}": v for k, v in row.items()}
                for row in base_rows
            ]
            for clause in select.joins:
                right_alias, right_rows = self._rows_for(clause.table)
                left_key, right_key = clause.left_key, clause.right_key
                if right_key.table == base_alias or left_key.table == right_alias:
                    left_key, right_key = right_key, left_key
                build: dict[Any, list[dict]] = {}
                for row in right_rows:
                    build.setdefault(row.get(right_key.name), []).append(row)
                out = []
                for row in rows:
                    key = row.get(f"{left_key.table}.{left_key.name}")
                    for match in build.get(key, []):
                        merged = dict(row)
                        merged.update(
                            {f"{right_alias}.{k}": v for k, v in match.items()}
                        )
                        out.append(merged)
                rows = out
        else:
            __, rows = self._rows_for(select.source)
        if select.where is not None:
            rows = [r for r in rows if eval_condition(select.where, r, qualified)]
        aggs = select.aggregations()
        if aggs:
            rows = aggregate_rows(
                list(select.group_columns()), list(aggs), rows, qualified
            )
            if select.having is not None:
                rows = [r for r in rows if eval_condition(select.having, r)]
        else:
            rows = [project_row(list(select.items), row, qualified) for row in rows]
        rows = order_rows(sort_keys_for(select), rows)
        return rows[: select.limit] if select.limit else rows
