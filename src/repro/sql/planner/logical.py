"""Logical plan IR for the federated planner (Section 4.5).

``build_logical`` lowers a parsed :class:`repro.sql.parser.Select` into a
small tree of relational operators:

    Scan / Subquery  ->  [Join]  ->  [Filter]  ->  Aggregate | Project
                     ->  [Filter(having)]  ->  [Sort]  ->  [Limit]

The tree is deliberately shaped like the query (one operator chain per
SELECT block) rather than a fully general algebra — the rule optimizer in
``repro.sql.planner.rules`` rewrites it in place-for-place fashion by
rebuilding nodes, and the physical planner maps each node to a stage.

Two renderings are provided:

* :func:`render` — an indented, human-diffable tree used by
  ``PrestoEngine.explain``.  Byte-stable across runs for the same catalog.
* :func:`canonical` — a compact single-line s-expression used as the
  content-hash key for stage artifacts.  It covers everything that affects
  a subtree's *output rows* (and excludes cost annotations and join
  execution order, which affect only how the rows are computed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.common.errors import SqlPlanError
from repro.sql.parser import (
    BoolOp,
    Column,
    Comparison,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    Star,
    SubqueryRef,
)
from repro.sql.planner.rowops import (
    columns_of,
    select_is_groups_and_aggs,
    sort_keys_for,
)

# --- nodes ---------------------------------------------------------------------


@dataclass(frozen=True)
class ScanNode:
    """Leaf: one connector scan, annotated with everything pushed into it."""

    table: str
    alias: str
    connector: str
    filters: tuple = ()  # tuple[Comparison] the connector will apply
    columns: tuple | None = None  # projection pushdown (None = all)
    aggregations: tuple | None = None  # tuple[(FuncCall, alias)] when agg pushed
    group_by: tuple | None = None
    limit: int | None = None
    estimate: Any = None  # CardinalityEstimate annotation (cost only)


@dataclass(frozen=True)
class SubqueryNode:
    """A materialized FROM-subquery; ``plan`` is the inner root."""

    plan: Any
    alias: str


@dataclass(frozen=True)
class JoinStep:
    right: Any  # ScanNode | SubqueryNode
    alias: str
    probe_key: Column  # key on the already-joined side (qualified)
    build_key: Column  # key on the incoming side


@dataclass(frozen=True)
class JoinNode:
    base: Any  # ScanNode | SubqueryNode
    base_alias: str
    steps: tuple  # tuple[JoinStep] in syntactic order
    exec_order: tuple = ()  # optimizer-chosen execution order (cost only)


@dataclass(frozen=True)
class FilterNode:
    input: Any
    condition: Any
    qualified: bool
    kind: str = "where"  # 'where' | 'having'


@dataclass(frozen=True)
class AggregateNode:
    input: Any
    group_cols: tuple  # tuple[Column]
    aggs: tuple  # tuple[(FuncCall, alias)]
    qualified: bool
    pushed: bool = False  # satisfied by the connector; stage just passes through
    # True when every select item is an aggregate or a group column —
    # the only shape whose output a connector can produce verbatim.
    simple: bool = True


@dataclass(frozen=True)
class ProjectNode:
    input: Any
    items: tuple  # tuple[SelectItem]
    qualified: bool


@dataclass(frozen=True)
class SortNode:
    input: Any
    keys: tuple  # tuple[(output column name, descending)]
    # Source columns the ORDER BY expressions reference — retained by
    # projection pushdown so sorting never loses its inputs (cost-only
    # annotation; the keys above define the output).
    columns: tuple = ()


@dataclass(frozen=True)
class LimitNode:
    input: Any
    n: int


# --- builder -------------------------------------------------------------------


def build_logical(select: Select, connector_of: Callable[[str], str]):
    """Lower a parsed SELECT into the logical IR (no optimization yet).

    ``connector_of`` maps a table name to its connector's name and raises
    ``SqlPlanError`` for tables missing from the catalog — so unknown
    tables fail at plan time, exactly like the pre-planner engine.
    """
    if select.window() is not None:
        raise SqlPlanError(
            "TUMBLE/HOP windows are streaming SQL; use FlinkSqlCompiler"
        )

    def source_node(table_source):
        if isinstance(table_source, SubqueryRef):
            return SubqueryNode(
                build_logical(table_source.select, connector_of),
                table_source.alias,
            )
        return ScanNode(
            table=table_source.name,
            alias=table_source.alias or table_source.name,
            connector=connector_of(table_source.name),
        )

    qualified = bool(select.joins)
    base = source_node(select.source)
    if select.joins:
        base_alias = base.alias
        steps = []
        for clause in select.joins:
            right = source_node(clause.table)
            left_key, right_key = clause.left_key, clause.right_key
            # Allow the ON clause in either order.
            if right_key.table == base_alias or left_key.table == right.alias:
                left_key, right_key = right_key, left_key
            steps.append(
                JoinStep(right, right.alias, probe_key=left_key, build_key=right_key)
            )
        node: Any = JoinNode(
            base, base_alias, tuple(steps), tuple(range(len(steps)))
        )
    else:
        node = base
    if select.where is not None:
        node = FilterNode(node, select.where, qualified, "where")
    aggs = select.aggregations()
    if aggs:
        node = AggregateNode(
            node,
            tuple(select.group_columns()),
            tuple(aggs),
            qualified,
            simple=select_is_groups_and_aggs(select),
        )
        if select.having is not None:
            node = FilterNode(node, select.having, False, "having")
    else:
        node = ProjectNode(node, tuple(select.items), qualified)
    keys = sort_keys_for(select)
    if keys:
        order_columns = tuple(
            col for expr, __ in select.order_by for col in columns_of(expr)
        )
        node = SortNode(node, tuple(keys), order_columns)
    if select.limit:
        node = LimitNode(node, select.limit)
    return node


# --- traversal helpers ---------------------------------------------------------


def children(node) -> tuple:
    if isinstance(node, (FilterNode, AggregateNode, ProjectNode, SortNode, LimitNode)):
        return (node.input,)
    if isinstance(node, JoinNode):
        return (node.base,) + tuple(step.right for step in node.steps)
    if isinstance(node, SubqueryNode):
        return (node.plan,)
    return ()


def scan_nodes(node) -> Iterator[ScanNode]:
    """All ScanNodes in syntactic (depth-first) order, subqueries included."""
    if isinstance(node, ScanNode):
        yield node
    for child in children(node):
        yield from scan_nodes(child)


def direct_scan_nodes(node) -> Iterator[ScanNode]:
    """ScanNodes of the outermost SELECT block only (not inside subqueries)."""
    if isinstance(node, ScanNode):
        yield node
    elif not isinstance(node, SubqueryNode):
        for child in children(node):
            yield from direct_scan_nodes(child)


def tables_of(node) -> tuple[str, ...]:
    """Distinct tables under a subtree, sorted — the artifact epoch scope."""
    return tuple(sorted({scan.table for scan in scan_nodes(node)}))


# --- expression rendering ------------------------------------------------------


def render_literal(value) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def render_expr(node) -> str:
    if isinstance(node, Star):
        return "*"
    if isinstance(node, Column):
        return node.qualified()
    if isinstance(node, Literal):
        return render_literal(node.value)
    if isinstance(node, FuncCall):
        args = ", ".join(render_expr(a) for a in node.args)
        prefix = "DISTINCT " if node.distinct else ""
        return f"{node.name}({prefix}{args})"
    if isinstance(node, Comparison):
        left = render_expr(node.left)
        if node.op == "IN":
            vals = ", ".join(render_literal(v) for v in node.values)
            return f"{left} IN ({vals})"
        if node.op == "BETWEEN":
            return (
                f"{left} BETWEEN {render_literal(node.low)}"
                f" AND {render_literal(node.high)}"
            )
        return f"{left} {node.op} {render_expr(node.right)}"
    if isinstance(node, BoolOp):
        inner = f" {node.op} ".join(render_expr(op) for op in node.operands)
        return f"({inner})"
    if isinstance(node, SelectItem):
        rendered = render_expr(node.expr)
        return f"{rendered} AS {node.alias}" if node.alias else rendered
    raise SqlPlanError(f"cannot render expression {node!r}")


def _render_agg(func: FuncCall, alias: str | None) -> str:
    rendered = render_expr(func)
    return f"{rendered} AS {alias}" if alias else rendered


# --- canonical rendering (artifact content keys) --------------------------------


def canonical(node) -> str:
    """Single-line, output-defining rendering of a plan subtree.

    Excludes estimates and join ``exec_order`` (cost-only annotations):
    two plans that return the same rows hash identically even if the
    optimizer chose different execution strategies.
    """
    if isinstance(node, ScanNode):
        parts = [f"scan {node.connector}:{node.table} as {node.alias}"]
        if node.filters:
            parts.append(
                "filters=[" + ", ".join(render_expr(f) for f in node.filters) + "]"
            )
        if node.columns is not None:
            parts.append("columns=[" + ", ".join(node.columns) + "]")
        if node.aggregations is not None:
            parts.append(
                "aggs=["
                + ", ".join(_render_agg(f, a) for f, a in node.aggregations)
                + "]"
            )
        if node.group_by is not None:
            parts.append("group=[" + ", ".join(node.group_by) + "]")
        if node.limit is not None:
            parts.append(f"limit={node.limit}")
        return "(" + " ".join(parts) + ")"
    if isinstance(node, SubqueryNode):
        return f"(subquery {node.alias} {canonical(node.plan)})"
    if isinstance(node, JoinNode):
        steps = " ".join(
            f"(join-step {s.alias} probe={s.probe_key.qualified()}"
            f" build={s.build_key.qualified()} {canonical(s.right)})"
            for s in node.steps
        )
        return f"(join base={node.base_alias} {canonical(node.base)} {steps})"
    if isinstance(node, FilterNode):
        return (
            f"(filter:{node.kind} {render_expr(node.condition)}"
            f" q={int(node.qualified)} {canonical(node.input)})"
        )
    if isinstance(node, AggregateNode):
        group = ", ".join(c.qualified() for c in node.group_cols)
        aggs = ", ".join(_render_agg(f, a) for f, a in node.aggs)
        return (
            f"(aggregate group=[{group}] aggs=[{aggs}]"
            f" pushed={int(node.pushed)} q={int(node.qualified)}"
            f" {canonical(node.input)})"
        )
    if isinstance(node, ProjectNode):
        items = ", ".join(render_expr(i) for i in node.items)
        return f"(project [{items}] q={int(node.qualified)} {canonical(node.input)})"
    if isinstance(node, SortNode):
        keys = ", ".join(
            f"{name} {'DESC' if desc else 'ASC'}" for name, desc in node.keys
        )
        return f"(sort [{keys}] {canonical(node.input)})"
    if isinstance(node, LimitNode):
        return f"(limit {node.n} {canonical(node.input)})"
    raise SqlPlanError(f"cannot render plan node {node!r}")


# --- explain rendering ---------------------------------------------------------


def render(node, indent: int = 0) -> str:
    """Indented top-down tree with pushdown and cost annotations."""
    pad = "  " * indent
    if isinstance(node, ScanNode):
        parts = [f"{pad}Scan[{node.connector}:{node.table} AS {node.alias}]"]
        if node.filters:
            parts.append(
                pad
                + "  pushed-filters: "
                + ", ".join(render_expr(f) for f in node.filters)
            )
        if node.columns is not None:
            parts.append(pad + "  pushed-columns: " + ", ".join(node.columns))
        if node.aggregations is not None:
            group = ", ".join(node.group_by or ())
            aggs = ", ".join(_render_agg(f, a) for f, a in node.aggregations)
            parts.append(pad + f"  pushed-aggregation: [{aggs}] group=[{group}]")
        if node.limit is not None:
            parts.append(pad + f"  pushed-limit: {node.limit}")
        if node.estimate is not None:
            est = node.estimate
            marker = "=" if est.exact else "~"
            parts.append(pad + f"  estimate: {marker}{est.rows} rows ({est.source})")
        return "\n".join(parts)
    if isinstance(node, SubqueryNode):
        return f"{pad}Subquery[AS {node.alias}]\n" + render(node.plan, indent + 1)
    if isinstance(node, JoinNode):
        order = (
            " exec-order=["
            + ", ".join(node.steps[i].alias for i in node.exec_order)
            + "]"
            if tuple(node.exec_order) != tuple(range(len(node.steps)))
            else ""
        )
        lines = [f"{pad}Join[base={node.base_alias}{order}]"]
        lines.append(render(node.base, indent + 1))
        for step in node.steps:
            lines.append(
                f"{pad}  On[{step.probe_key.qualified()} ="
                f" {step.build_key.qualified()}]"
            )
            lines.append(render(step.right, indent + 2))
        return "\n".join(lines)
    if isinstance(node, FilterNode):
        label = "Having" if node.kind == "having" else "Filter"
        return (
            f"{pad}{label}[{render_expr(node.condition)}]\n"
            + render(node.input, indent + 1)
        )
    if isinstance(node, AggregateNode):
        group = ", ".join(c.qualified() for c in node.group_cols)
        aggs = ", ".join(_render_agg(f, a) for f, a in node.aggs)
        pushed = " (pushed)" if node.pushed else ""
        return (
            f"{pad}Aggregate[group=[{group}] aggs=[{aggs}]]{pushed}\n"
            + render(node.input, indent + 1)
        )
    if isinstance(node, ProjectNode):
        items = ", ".join(render_expr(i) for i in node.items)
        return f"{pad}Project[{items}]\n" + render(node.input, indent + 1)
    if isinstance(node, SortNode):
        keys = ", ".join(
            f"{name} {'DESC' if desc else 'ASC'}" for name, desc in node.keys
        )
        return f"{pad}Sort[{keys}]\n" + render(node.input, indent + 1)
    if isinstance(node, LimitNode):
        return f"{pad}Limit[{node.n}]\n" + render(node.input, indent + 1)
    raise SqlPlanError(f"cannot render plan node {node!r}")
