"""Stage-DAG scheduler with content-hashed, epoch-keyed artifact reuse.

Executes a :class:`repro.sql.planner.physical.PhysicalPlan` over a pool
of (simulated) workers in deterministic topological waves.  Before
executing, the scheduler walks the DAG top-down against the
:class:`StageArtifactStore`: a stage whose ``(content key, table epochs)``
artifact is present is *served* — its whole input subtree is skipped.
That is how overlapping queries share work: two queries that contain the
same scan/join/aggregate subtree over the same table versions compute it
once.  Epochs come from ``Connector.table_epoch`` (Pinot's TableEpoch,
Hive's table version, the memory connector's per-table counter), so reuse
is freshness-correct by construction — the same invalidation discipline
as the broker's :class:`repro.pinot.broker.BrokerResultCache`, one layer
up.  Tables whose connector cannot version them get no artifacts.

Served stages still *report* like executed ones: every artifact carries
the :class:`Evidence` its producing execution accumulated (rows shipped,
segments pruned, filters pushed...), which parent stages fold upward just
as if the work had run.  Query stats therefore describe what the plan
does, whether or not the work was memoized — only ``stage_artifact_hits``
and the PERF counters reveal the saved work.

Join execution is order-restoring: scan positions ride along as tags, and
after executing the hash joins in whatever order the optimizer chose, the
output is sorted back to the syntactic nested-loop order.  Join
reordering is therefore invisible in the output, byte for byte.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any

from repro.columnar import pages_to_rows
from repro.common import hashring
from repro.common.errors import SqlPlanError
from repro.common.perf import PERF
from repro.sql.planner.physical import PhysicalPlan, Stage
from repro.sql.planner.rowops import (
    aggregate_rows,
    conjoin,
    eval_condition,
    order_rows,
    project_row,
    to_pushed,
    to_pushed_agg,
)

_SCALAR_CELL_TYPES = (str, int, float, bool, bytes, type(None))


def _copy_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Isolate rows crossing the artifact boundary from caller mutation
    (same discipline as the broker result cache)."""
    return [
        dict(row)
        if all(isinstance(v, _SCALAR_CELL_TYPES) for v in row.values())
        else copy.deepcopy(row)
        for row in rows
    ]


@dataclass
class Evidence:
    """What executing a stage subtree shipped and pushed — the stats a
    fresh execution would contribute to ``QueryStats``.

    Transfer fields accumulate across every block; the per-block fields
    (pushed_filters, pushed_aggregation, joined_rows) stop at subquery
    boundaries, mirroring the pre-planner engine's per-SELECT stats."""

    rows_transferred: int = 0
    source_rows_examined: int = 0
    servers_queried: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    files_scanned: int = 0
    files_pruned: int = 0
    cache_hits: int = 0
    pushed_filters: int = 0
    pushed_aggregation: bool = False
    joined_rows: int = 0

    def absorb_scan(self, result) -> None:
        """Fold one connector ScanResult's transfer stats in."""
        self.rows_transferred += result.rows_transferred
        self.source_rows_examined += result.source_rows_examined
        self.servers_queried += result.servers_queried
        self.segments_scanned += result.segments_scanned
        self.segments_pruned += result.segments_pruned
        self.files_scanned += result.files_scanned
        self.files_pruned += result.files_pruned
        self.cache_hits += 1 if result.cache_hit else 0

    def absorb_input(self, inner: "Evidence", boundary: bool) -> None:
        self.rows_transferred += inner.rows_transferred
        self.source_rows_examined += inner.source_rows_examined
        self.servers_queried += inner.servers_queried
        self.segments_scanned += inner.segments_scanned
        self.segments_pruned += inner.segments_pruned
        self.files_scanned += inner.files_scanned
        self.files_pruned += inner.files_pruned
        self.cache_hits += inner.cache_hits
        if not boundary:
            self.pushed_filters += inner.pushed_filters
            self.pushed_aggregation = (
                self.pushed_aggregation or inner.pushed_aggregation
            )
            self.joined_rows = inner.joined_rows or self.joined_rows


@dataclass
class StagePayload:
    """One stage's output: rows plus how they were produced.

    ``pages`` carries the columnar form (ColumnBatch pages; ``rows`` is
    then empty).  Pages flow between stages until an operator needs row
    dicts — ``as_rows`` is that boundary."""

    rows: list
    aggregated: bool = False  # rows are final aggregation results
    evidence: Evidence = field(default_factory=Evidence)
    pages: list | None = None

    def num_rows(self) -> int:
        if self.pages is not None:
            return sum(len(page) for page in self.pages)
        return len(self.rows)

    def as_rows(self) -> list:
        """Row-dict view of this payload (the batch→row boundary)."""
        if self.pages is not None:
            return pages_to_rows(self.pages)
        return self.rows

    def copied(self) -> "StagePayload":
        if self.pages is not None:
            # Pages are immutable views: serving them shares buffers.
            if PERF.enabled:
                PERF.inc("columnar.batch_serves", len(self.pages))
            return StagePayload(
                rows=[],
                aggregated=self.aggregated,
                evidence=replace(self.evidence),
                pages=list(self.pages),
            )
        return StagePayload(
            rows=_copy_rows(self.rows),
            aggregated=self.aggregated,
            evidence=replace(self.evidence),
        )


class StageArtifactStore:
    """LRU of stage outputs keyed on content hash, validated by the epoch
    signature of every table under the stage's subtree."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, tuple[tuple, StagePayload]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: str, epoch_sig: tuple) -> StagePayload | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stored_sig, payload = entry
        if stored_sig != epoch_sig:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload.copied()

    def put(self, key: str, epoch_sig: tuple, payload: StagePayload) -> None:
        self._entries[key] = (epoch_sig, payload.copied())
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def entry_count(self) -> int:
        return len(self._entries)


@dataclass
class StageExecution:
    """Per-stage schedule record (explainable, span-attached).  Served
    stages carry wave/worker -1: no worker ever ran them."""

    sid: int
    op: str
    wave: int
    worker: int
    served_from_artifact: bool
    rows_out: int


class StageScheduler:
    """Deterministic multi-worker executor for one physical plan.

    Workers are simulated: stages are grouped into dependency waves, and
    each stage is *pinned* to a worker by rendezvous hash of its content
    key (``sticky=True``, the default), so the worker that computed a
    stage is the worker probed for its artifact — reuse is a property of
    the plan, not of scheduling luck.  The ablation (``sticky=False``)
    rotates placement per query, the classic load-balancing scatter.
    The schedule (recorded in spans and :class:`StageExecution`) is what
    a real worker pool would produce, while execution stays
    single-threaded and reproducible.
    """

    def __init__(
        self,
        catalog: dict[str, Any],
        workers: int = 2,
        artifact_reuse: bool = True,
        artifact_capacity: int = 256,
        sticky: bool = True,
        tracer=None,
        clock=None,
    ) -> None:
        self.catalog = catalog
        self.artifact_reuse = artifact_reuse
        self.artifact_capacity = artifact_capacity
        self.sticky = sticky
        self.tracer = tracer
        self.clock = clock
        # Artifact stores are per worker: a real pool's memo lives in each
        # worker's memory, so a hit requires landing the stage on the
        # worker that computed it.  Sticky placement (content-keyed
        # rendezvous on ``stage.key``) makes that deterministic; the
        # scatter ablation rotates placement and hits become luck.
        self._stores: list[StageArtifactStore] = []
        self._rotation = 0
        self._workers = 0
        self.workers = workers

    @property
    def workers(self) -> int:
        return self._workers

    @workers.setter
    def workers(self, n: int) -> None:
        self._workers = max(1, int(n))
        while len(self._stores) < self._workers:
            self._stores.append(StageArtifactStore(self.artifact_capacity))
        # Shrinking keeps the excess stores warm: only the first n are
        # addressable, and scaling back up re-finds their entries.

    def _worker_for(self, stage: Stage) -> int:
        if self._workers == 1:
            return 0
        if self.sticky:
            return hashring.pick(stage.key, range(self._workers))
        return (self._rotation + stage.sid) % self._workers

    def _store_for(self, stage: Stage) -> StageArtifactStore | None:
        if not self.artifact_reuse:
            return None
        return self._stores[self._worker_for(stage)]

    def artifact_stats(self) -> dict[str, int]:
        """Aggregate hit/miss counts across the per-worker stores."""
        return {
            "hits": sum(s.hits for s in self._stores),
            "misses": sum(s.misses for s in self._stores),
            "invalidations": sum(s.invalidations for s in self._stores),
            "entries": sum(s.entry_count() for s in self._stores),
        }

    # -- entry point ----------------------------------------------------------

    def run(
        self, plan: PhysicalPlan, epochs: dict[str, int | None], query_id: str
    ) -> tuple[StagePayload, list[StageExecution]]:
        self._rotation += 1  # scatter-ablation placement state
        served: dict[int, StagePayload] = {}
        needed: set[int] = set()

        def signature(stage: Stage) -> tuple | None:
            if any(epochs.get(t) is None for t in stage.tables):
                return None  # unversionable source: never memoize
            return tuple((t, epochs[t]) for t in stage.tables)

        def probe(sid: int) -> None:
            stage = plan.stages[sid]
            store = self._store_for(stage)
            if store is not None:
                sig = signature(stage)
                if sig is not None:
                    payload = store.get(stage.key, sig)
                    if payload is not None:
                        served[sid] = payload
                        return
            needed.add(sid)
            for input_sid in stage.inputs:
                probe(input_sid)

        probe(plan.root)

        # Dependency waves over the needed stages (stage list is topo-sorted).
        wave_of: dict[int, int] = {}
        for sid in sorted(needed):
            stage = plan.stages[sid]
            wave_of[sid] = 1 + max(
                (wave_of[i] for i in stage.inputs if i in wave_of), default=-1
            )

        done: dict[int, StagePayload] = dict(served)
        executions: list[StageExecution] = []
        slot_in_wave: dict[int, int] = {}
        for sid, payload in sorted(served.items()):
            stage = plan.stages[sid]
            if PERF.enabled:
                PERF.inc("presto.stage_artifact_hits")
                PERF.inc("presto.artifact_rows_copied", payload.num_rows())
            executions.append(
                StageExecution(sid, stage.op, -1, -1, True, payload.num_rows())
            )
            self._record_span(query_id, stage, served=True, rows=payload.num_rows())
        for sid in sorted(needed):
            stage = plan.stages[sid]
            wave = wave_of[sid]
            slot_in_wave[wave] = slot_in_wave.get(wave, 0) + 1
            worker = self._worker_for(stage)
            input_stages = [plan.stages[i] for i in stage.inputs]
            payloads = [done[i] for i in stage.inputs]
            payload = self._execute(stage, input_stages, payloads)
            done[sid] = payload
            if PERF.enabled:
                PERF.inc("presto.stage_executions")
            executions.append(
                StageExecution(sid, stage.op, wave, worker, False, payload.num_rows())
            )
            self._record_span(
                query_id, stage, served=False, rows=payload.num_rows(),
                wave=wave, worker=worker,
            )
            store = self._store_for(stage)
            if store is not None:
                sig = signature(stage)
                if sig is not None:
                    store.put(stage.key, sig, payload)
        executions.sort(key=lambda e: e.sid)
        return done[plan.root], executions

    def _record_span(self, query_id: str, stage: Stage, served: bool, **attrs):
        if self.tracer is None or self.clock is None:
            return
        now = self.clock.now()
        self.tracer.record_span(
            trace_id=query_id,
            name=f"stage.{stage.op}",
            layer="presto",
            start=now,
            end=now,
            sid=stage.sid,
            key=stage.key,
            served_from_artifact=served,
            **attrs,
        )

    # -- stage execution ------------------------------------------------------

    def _execute(
        self, stage: Stage, input_stages: list[Stage], payloads: list[StagePayload]
    ) -> StagePayload:
        if stage.op == "scan":
            return self._execute_scan(stage)
        evidence = Evidence()
        for in_stage, payload in zip(input_stages, payloads):
            evidence.absorb_input(payload.evidence, boundary=in_stage.block_boundary)
        if stage.op == "join":
            return self._execute_join(stage, payloads, evidence)
        node = stage.node
        single = payloads[0]
        if stage.op in ("filter", "having"):
            if single.pages is not None:
                pages = self._filter_pages(single.pages, node)
                if pages is not None:
                    return StagePayload(
                        [], single.aggregated, evidence, pages=pages
                    )
            rows_in = single.as_rows()
            if PERF.enabled:
                PERF.inc("presto.filter_rows", len(rows_in))
            rows = [
                r
                for r in rows_in
                if eval_condition(node.condition, r, node.qualified)
            ]
            return StagePayload(rows, single.aggregated, evidence)
        if stage.op == "aggregate":
            if single.aggregated:
                # The connector already produced final groups (in canonical
                # group order — the broker default); pass through.
                return StagePayload(single.rows, True, evidence)
            if single.pages is not None:
                rows = self._aggregate_pages(single.pages, node)
                if rows is not None:
                    return StagePayload(rows, True, evidence)
            rows_in = single.as_rows()
            if PERF.enabled:
                PERF.inc("presto.agg_rows", len(rows_in))
            rows = aggregate_rows(
                list(node.group_cols), list(node.aggs), rows_in, node.qualified
            )
            return StagePayload(rows, True, evidence)
        if stage.op == "project":
            rows_in = single.as_rows()
            if PERF.enabled:
                PERF.inc("presto.project_rows", len(rows_in))
            rows = [
                project_row(list(node.items), row, node.qualified)
                for row in rows_in
            ]
            return StagePayload(rows, False, evidence)
        if stage.op == "sort":
            rows_in = single.as_rows()
            if PERF.enabled:
                PERF.inc("presto.sort_rows", len(rows_in))
            rows = order_rows(list(node.keys), list(rows_in))
            return StagePayload(rows, single.aggregated, evidence)
        if stage.op == "limit":
            if single.pages is not None and node.n:
                pages = self._limit_pages(single.pages, node.n)
                return StagePayload([], single.aggregated, evidence, pages=pages)
            rows = single.as_rows()
            rows = rows[: node.n] if node.n else rows
            return StagePayload(rows, single.aggregated, evidence)
        raise SqlPlanError(f"unknown stage op {stage.op!r}")

    # -- vectorized operator bodies -------------------------------------------
    # Kernel symbols are imported inside the methods: repro.columnar exports
    # them lazily to break the repro.sql <-> repro.columnar.kernels cycle.

    def _filter_pages(self, pages: list, node) -> list | None:
        """Filter pages in code space; None means the condition is outside
        the kernel's reach and the caller must take the row path."""
        from repro.columnar import KernelUnsupported, filter_batch

        out = []
        try:
            for page in pages:
                filtered = filter_batch(page, node.condition, node.qualified)
                if len(filtered):
                    out.append(filtered)
        except KernelUnsupported:
            return None
        return out

    def _aggregate_pages(self, pages: list, node) -> list | None:
        """Vectorized grouped aggregation; None on kernel fallback."""
        from repro.columnar import KernelUnsupported, aggregate_pages

        try:
            return aggregate_pages(
                list(node.group_cols), list(node.aggs), pages, node.qualified
            )
        except KernelUnsupported:
            return None

    @staticmethod
    def _limit_pages(pages: list, n: int) -> list:
        out, remaining = [], n
        for page in pages:
            if remaining <= 0:
                break
            if len(page) <= remaining:
                out.append(page)
                remaining -= len(page)
            else:
                out.append(page.slice(0, remaining))
                remaining = 0
        return out

    def _execute_scan(self, stage: Stage) -> StagePayload:
        from repro.sql.presto.connector import ScanRequest

        node = stage.node
        connector = self.catalog[node.table]
        capabilities = connector.capabilities()
        request = ScanRequest(
            table=node.table,
            filters=[to_pushed(c) for c in node.filters],
            columns=list(node.columns) if node.columns is not None else None,
            aggregations=(
                [to_pushed_agg(f, a) for f, a in node.aggregations]
                if node.aggregations is not None
                else None
            ),
            group_by=list(node.group_by) if node.group_by is not None else None,
            limit=node.limit,
            columnar=getattr(capabilities, "columnar", False),
        )
        evidence = Evidence()
        result = connector.scan(request)
        evidence.absorb_scan(result)
        # Runtime guard: the planner pushed work the connector declined
        # (capability drift).  Source-side truncation is then unsound — the
        # limit assumed filtered/aggregated rows — so re-scan untruncated
        # and finish the declined work engine-side.
        declined = (node.filters and not result.filters_applied) or (
            node.aggregations is not None and not result.aggregated
        )
        if declined and request.limit:
            request.limit = None
            result = connector.scan(request)
            evidence.absorb_scan(result)
        pages = result.pages or None
        rows = result.rows
        if node.filters and not result.filters_applied:
            if pages is not None:
                rows = pages_to_rows(pages)
                pages = None
            condition = conjoin(list(node.filters), None)
            rows = [r for r in rows if eval_condition(condition, r, False)]
        if node.filters and result.filters_applied:
            evidence.pushed_filters = len(node.filters)
        evidence.pushed_aggregation = result.aggregated
        if pages is not None:
            return StagePayload([], result.aggregated, evidence, pages=pages)
        return StagePayload(rows, result.aggregated, evidence)

    def _execute_join(
        self, stage: Stage, payloads: list[StagePayload], evidence: Evidence
    ) -> StagePayload:
        """Hash joins in optimizer order, output restored to syntactic
        nested-loop order via per-row origin tags."""
        node = stage.node
        base_rows = payloads[0].as_rows()
        right_rows = [payload.as_rows() for payload in payloads[1:]]
        slots = len(node.steps)
        joined: list[tuple[dict, tuple]] = [
            (
                {f"{node.base_alias}.{k}": v for k, v in row.items()},
                (idx,) + (None,) * slots,
            )
            for idx, row in enumerate(base_rows)
        ]
        exec_order = node.exec_order or tuple(range(slots))
        for step_idx in exec_order:
            step = node.steps[step_idx]
            rows = right_rows[step_idx]
            if PERF.enabled:
                PERF.inc("presto.join_build_rows", len(rows))
                PERF.inc("presto.join_probe_rows", len(joined))
            build: dict[Any, list[tuple[dict, int]]] = {}
            for ridx, row in enumerate(rows):
                build.setdefault(row.get(step.build_key.name), []).append((row, ridx))
            probe_field = f"{step.probe_key.table}.{step.probe_key.name}"
            out: list[tuple[dict, tuple]] = []
            for row, tag in joined:
                for match, ridx in build.get(row.get(probe_field), []):
                    merged = dict(row)
                    merged.update({f"{step.alias}.{k}": v for k, v in match.items()})
                    new_tag = list(tag)
                    new_tag[1 + step_idx] = ridx
                    out.append((merged, tuple(new_tag)))
            joined = out
        if tuple(exec_order) != tuple(range(slots)):
            # Restore the row order syntactic nested-loop execution yields:
            # lexicographic by (base row, step-0 match, step-1 match, ...).
            joined.sort(key=lambda pair: pair[1])
        rows = [row for row, __ in joined]
        if PERF.enabled:
            PERF.inc("presto.join_rows_out", len(rows))
        evidence.joined_rows = len(rows)
        return StagePayload(rows, False, evidence)
