"""Cost-based federated query planner (Section 4.5).

Pipeline: ``repro.sql.parser`` AST -> :mod:`logical` IR ->
:mod:`rules` optimizer (pushdown + join reordering against the typed
connector contract) -> :mod:`physical` stage DAG -> :mod:`scheduler`
(multi-worker execution with content-hashed, epoch-keyed stage
artifacts).  :mod:`reference` is the deliberately naive oracle the
property suite checks the whole pipeline against.

Import note: ``repro.sql.presto`` imports this package's modules at
import time, so planner modules never import ``repro.sql.presto`` at
module level — connector types are imported lazily inside functions.
This ``__init__`` stays empty of re-exports for the same reason; import
the submodules directly.
"""
