"""FlinkSQL: compile SQL into Flink jobs (Section 4.2.1, AthenaX).

"The SQL processor compiles the queries to reliable, efficient,
distributed Flink applications ... users of all technical levels can run
their streaming processing applications in production in a span of mere
hours."

Two compilation targets, which is also the paper's backfill story
(Section 7, "SQL based"): the *same* query text compiles to

* a **streaming job** reading a Kafka-backed stream table
  (``compile_streaming``), and
* a **batch job** reading a bounded dataset such as a Hive slice
  (``compile_batch``) — the DataSet-API path,

so the user never maintains two implementations of the logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import SqlPlanError
from repro.flink.graph import JobGraph, StreamEnvironment
from repro.flink.operators import BoundedListSource
from repro.flink.windows import SlidingWindows, TumblingWindows, WindowResult
from repro.kafka.cluster import KafkaCluster
from repro.sql.parser import (
    Column,
    FuncCall,
    HopSpec,
    Select,
    SelectItem,
    Star,
    TableRef,
    TumbleSpec,
    parse,
)
from repro.sql.presto.engine import (
    _agg_alias,
    _agg_final,
    _agg_init,
    _agg_update,
    _eval_condition,
)


@dataclass
class StreamTableDef:
    """Catalog entry mapping a SQL table name to a Kafka topic."""

    cluster: KafkaCluster
    topic: str
    timestamp_column: str | None = None  # None -> Kafka record event time
    max_out_of_orderness: float = 0.0


class SqlWindowAggregate:
    """Multi-aggregation AggregateFunction compiled from the SELECT list."""

    def __init__(self, aggs: list[tuple[FuncCall, str | None]]) -> None:
        self.aggs = aggs

    def create_accumulator(self) -> list[Any]:
        return [_agg_init(func) for func, __ in self.aggs]

    def add(self, value: dict[str, Any], accumulator: list[Any]) -> list[Any]:
        return [
            _agg_update(func, state, value, False)
            for (func, __), state in zip(self.aggs, accumulator)
        ]

    def get_result(self, accumulator: list[Any]) -> dict[str, Any]:
        return {
            _agg_alias(func, alias): _agg_final(func, state)
            for (func, alias), state in zip(self.aggs, accumulator)
        }

    def merge(self, a: list[Any], b: list[Any]) -> list[Any]:
        merged = []
        for (func, __), sa, sb in zip(self.aggs, a, b):
            if func.distinct:
                merged.append(sa | sb)
            elif func.name in ("COUNT", "SUM"):
                merged.append(sa + sb)
            elif func.name == "AVG":
                merged.append([sa[0] + sb[0], sa[1] + sb[1]])
            elif func.name == "MIN":
                merged.append(min(sa, sb))
            elif func.name == "MAX":
                merged.append(max(sa, sb))
            else:
                raise SqlPlanError(f"cannot merge aggregate {func.name!r}")
        return merged


class FlinkSqlCompiler:
    """Compiles the SQL dialect into Flink job graphs."""

    def __init__(self, catalog: dict[str, StreamTableDef] | None = None) -> None:
        self.catalog = catalog or {}

    def register_stream_table(self, name: str, definition: StreamTableDef) -> None:
        self.catalog[name] = definition

    # -- streaming target -------------------------------------------------------

    def compile_streaming(
        self,
        sql: str,
        sink_collector: list | None = None,
        sink_kafka: tuple[KafkaCluster, str] | None = None,
        group: str = "flinksql",
        job_name: str | None = None,
        allowed_lateness: float = 0.0,
        parallelism: int = 1,
        sink_transactional: bool = False,
    ) -> JobGraph:
        select = parse(sql)
        source_name = self._source_table(select)
        if source_name not in self.catalog:
            raise SqlPlanError(f"stream table {source_name!r} is not registered")
        definition = self.catalog[source_name]
        env = StreamEnvironment()
        stream = env.from_kafka(
            definition.cluster,
            definition.topic,
            group=group,
            max_out_of_orderness=definition.max_out_of_orderness,
            timestamp_fn=(
                (lambda row, c=definition.timestamp_column: row[c])
                if definition.timestamp_column is not None
                else None
            ),
        )
        stream = self._attach_pipeline(
            select, stream, allowed_lateness, parallelism
        )
        self._attach_sink(
            stream, sink_collector, sink_kafka, transactional=sink_transactional
        )
        return env.build(job_name or f"flinksql-{source_name}")

    # -- batch target (the DataSet path of Section 7) ------------------------------

    def compile_batch(
        self,
        sql: str,
        rows: list[dict[str, Any]],
        sink_collector: list,
        timestamp_column: str | None = None,
        job_name: str | None = None,
    ) -> JobGraph:
        """Compile the same SQL over a bounded dataset (e.g. a Hive scan)."""
        select = parse(sql)
        window = select.window()
        ts_col = timestamp_column or (window.time_column if window else None)
        if ts_col is None:
            raise SqlPlanError(
                "batch compilation needs a timestamp column (explicit or "
                "from the window spec)"
            )
        elements = [(row, float(row[ts_col])) for row in rows]
        env = StreamEnvironment()
        stream = env.add_source(
            BoundedListSource(elements), name="bounded-source"
        )
        stream = self._attach_pipeline(select, stream, 0.0, 1)
        stream.sink_to_list(sink_collector)
        name = job_name or f"flinksql-batch-{self._source_table(select)}"
        return env.build(name)

    # -- shared pipeline construction -------------------------------------------

    def _source_table(self, select: Select) -> str:
        if select.joins:
            raise SqlPlanError("FlinkSQL compilation supports a single stream")
        if not isinstance(select.source, TableRef):
            raise SqlPlanError("FlinkSQL requires a named stream table in FROM")
        return select.source.name

    def _attach_pipeline(
        self,
        select: Select,
        stream,
        allowed_lateness: float,
        parallelism: int,
    ):
        condition = select.where
        if condition is not None:
            stream = stream.filter(
                lambda row, c=condition: _eval_condition(c, row)
            )
        window = select.window()
        aggs = select.aggregations()
        group_cols = [c.name for c in select.group_columns()]
        if window is None:
            if aggs:
                raise SqlPlanError(
                    "continuous (un-windowed) aggregation is not supported; "
                    "add TUMBLE(...) or HOP(...) to the GROUP BY"
                )
            items = select.items
            return stream.map(lambda row, i=items: _project(i, row))
        if not aggs:
            raise SqlPlanError("windowed query needs aggregate functions")
        if isinstance(window, TumbleSpec):
            assigner = TumblingWindows(window.size)
        elif isinstance(window, HopSpec):
            assigner = SlidingWindows(window.size, window.slide)
        else:  # pragma: no cover - parser only produces the two
            raise SqlPlanError(f"unknown window spec {window!r}")
        key_fn = (lambda row, g=tuple(group_cols): tuple(row[c] for c in g))
        aggregator = SqlWindowAggregate(aggs)
        windowed = (
            stream.key_by(key_fn)
            .window(assigner)
            .allow_lateness(allowed_lateness)
            .aggregate(aggregator, parallelism=parallelism)
        )
        return windowed.map(
            lambda result, g=tuple(group_cols): _flatten_window_result(result, g)
        )

    @staticmethod
    def _attach_sink(
        stream, sink_collector, sink_kafka, transactional: bool = False
    ) -> None:
        if sink_collector is None and sink_kafka is None:
            raise SqlPlanError("a sink (collector or Kafka topic) is required")
        if sink_collector is not None:
            stream.sink_to_list(sink_collector, transactional=transactional)
        if sink_kafka is not None:
            cluster, topic = sink_kafka
            stream.sink_to_kafka(
                cluster,
                topic,
                key_fn=lambda row: row.get("__key__"),
                transactional=transactional,
            )


def _project(items: list[SelectItem], row: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for item in items:
        if isinstance(item.expr, Star):
            out.update(row)
        elif isinstance(item.expr, Column):
            out[item.alias or item.expr.name] = row.get(item.expr.name)
        else:
            raise SqlPlanError(f"unsupported projection {item.expr!r}")
    return out


def _flatten_window_result(
    result: WindowResult, group_cols: tuple[str, ...]
) -> dict[str, Any]:
    """WindowResult -> flat row: group columns, window bounds, aggregates."""
    row: dict[str, Any] = {}
    key = result.key if isinstance(result.key, tuple) else (result.key,)
    for name, value in zip(group_cols, key):
        row[name] = value
    row["window_start"] = result.window.start
    row["window_end"] = result.window.end
    row.update(result.value)
    return row
