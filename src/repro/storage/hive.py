"""Hive-style table catalog over the blob store (Sections 4.4, 4.5, 7).

A Hive table is a set of partitions; each partition is a list of columnar
files in the blob store.  This is the "source of truth for all analytical
data": the Presto Hive connector scans it, and the Kappa+ backfill reads
bounded slices of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.common.errors import StorageError, TableNotFoundError
from repro.metadata.schema import Schema
from repro.storage.blobstore import BlobStore
from repro.storage.columnar import ColumnarFile, ColumnStats


@dataclass
class HivePartition:
    """One partition (e.g. one day) of a Hive table."""

    table: str
    key: str  # e.g. "2020-10-05"
    file_keys: list[str] = field(default_factory=list)
    row_count: int = 0


class HiveTable:
    """Partitioned columnar table backed by a :class:`BlobStore`."""

    def __init__(self, name: str, schema: Schema, store: BlobStore) -> None:
        self.name = name
        self.schema = schema
        self._store = store
        self._partitions: dict[str, HivePartition] = {}
        self._file_counter = 0
        # Data version: bumped on every append.  The Presto planner keys
        # stage artifacts on it (the Hive analogue of Pinot's TableEpoch).
        self.version = 0

    def add_rows(self, partition_key: str, rows: Iterable[dict[str, Any]]) -> str:
        """Append rows into a partition as a new columnar file.

        Returns the blob key of the created file.
        """
        rows = list(rows)
        if not rows:
            raise StorageError("refusing to write an empty file")
        for row in rows:
            self.schema.validate(row)
        column_names = self.schema.field_names()
        cfile = ColumnarFile.from_rows(rows, column_names)
        blob_key = f"hive/{self.name}/{partition_key}/part-{self._file_counter:05d}.col"
        self._file_counter += 1
        self._store.put(blob_key, cfile.to_bytes())
        part = self._partitions.setdefault(
            partition_key, HivePartition(self.name, partition_key)
        )
        part.file_keys.append(blob_key)
        part.row_count += len(rows)
        self.version += 1
        return blob_key

    def partitions(self) -> list[str]:
        return sorted(self._partitions)

    def partition(self, key: str) -> HivePartition:
        if key not in self._partitions:
            raise StorageError(f"table {self.name!r} has no partition {key!r}")
        return self._partitions[key]

    def scan(
        self,
        partition_keys: list[str] | None = None,
        columns: list[str] | None = None,
        predicate=None,
    ) -> Iterator[dict[str, Any]]:
        """Stream rows, optionally restricted to partitions and columns.

        ``predicate`` is an optional callable row -> bool applied after
        projection is widened to include every schema column (Hive cannot
        push complex predicates into the files; file-level stats pruning is
        done by :meth:`scan_with_pruning`).
        """
        keys = partition_keys if partition_keys is not None else self.partitions()
        for pkey in keys:
            part = self.partition(pkey)
            for file_key in part.file_keys:
                cfile = ColumnarFile.from_bytes(self._store.get(file_key))
                for row in cfile.rows():
                    if predicate is not None and not predicate(row):
                        continue
                    if columns is not None:
                        yield {c: row.get(c) for c in columns}
                    else:
                        yield row

    def scan_with_pruning(
        self,
        column: str,
        op: str,
        literal: Any,
        columns: list[str] | None = None,
    ) -> tuple[list[dict[str, Any]], int, int]:
        """Scan applying ``column <op> literal`` using file stats to skip
        files.  Returns (rows, files_scanned, files_pruned)."""
        scanned = pruned = 0
        out: list[dict[str, Any]] = []
        for pkey in self.partitions():
            for file_key in self.partition(pkey).file_keys:
                cfile = ColumnarFile.from_bytes(self._store.get(file_key))
                stats: ColumnStats | None = cfile.stats.get(column)
                if stats is not None and not stats.might_contain(op, literal):
                    pruned += 1
                    continue
                scanned += 1
                for row in cfile.rows():
                    if _evaluate(row.get(column), op, literal):
                        if columns is not None:
                            out.append({c: row.get(c) for c in columns})
                        else:
                            out.append(row)
        return out, scanned, pruned

    def row_count(self) -> int:
        return sum(p.row_count for p in self._partitions.values())

    def total_bytes(self) -> int:
        return sum(
            self._store.stat(fk).size
            for p in self._partitions.values()
            for fk in p.file_keys
        )


def _evaluate(value: Any, op: str, literal: Any) -> bool:
    if value is None:
        return False
    try:
        if op == "=":
            return value == literal
        if op == "!=":
            return value != literal
        if op == ">":
            return value > literal
        if op == ">=":
            return value >= literal
        if op == "<":
            return value < literal
        if op == "<=":
            return value <= literal
    except TypeError:
        return False
    raise StorageError(f"unsupported operator {op!r}")


class HiveMetastore:
    """Catalog of Hive tables."""

    def __init__(self, store: BlobStore) -> None:
        self._store = store
        self._tables: dict[str, HiveTable] = {}

    def create_table(self, name: str, schema: Schema) -> HiveTable:
        if name in self._tables:
            raise StorageError(f"Hive table {name!r} already exists")
        table = HiveTable(name, schema, self._store)
        self._tables[name] = table
        return table

    def table(self, name: str) -> HiveTable:
        if name not in self._tables:
            raise TableNotFoundError(f"Hive table {name!r} does not exist")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> list[str]:
        return sorted(self._tables)
