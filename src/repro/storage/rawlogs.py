"""Raw-log landing and compaction (Section 4.4).

"Most of this data comes from Kafka which is in Avro format and is
persisted in HDFS as raw logs.  These logs are then merged into the long
term Parquet data format using a compaction process."

:class:`RawLogArchiver` batches records into append-order raw log files;
:func:`compact_to_hive` merges the raw logs of a time range into columnar
Hive partitions.  The Hive output is what backfill (Section 7) reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.common import serde
from repro.common.errors import StorageError
from repro.common.records import Record
from repro.storage.blobstore import BlobStore
from repro.storage.hive import HiveTable


@dataclass(frozen=True, slots=True)
class RawLogFile:
    key: str
    record_count: int
    min_event_time: float
    max_event_time: float


class RawLogArchiver:
    """Archives streams of records as raw log files in the blob store."""

    def __init__(
        self,
        store: BlobStore,
        topic: str,
        batch_size: int = 1000,
    ) -> None:
        if batch_size < 1:
            raise StorageError(f"batch_size must be >= 1, got {batch_size}")
        self._store = store
        self.topic = topic
        self.batch_size = batch_size
        self._buffer: list[Record] = []
        self._files: list[RawLogFile] = []
        self._file_counter = 0

    def append(self, record: Record) -> None:
        self._buffer.append(record)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def extend(self, records: Iterable[Record]) -> None:
        for record in records:
            self.append(record)

    def flush(self) -> RawLogFile | None:
        if not self._buffer:
            return None
        payload = [
            {
                "key": r.key,
                "value": r.value,
                "event_time": r.event_time,
                "headers": dict(r.headers),
            }
            for r in self._buffer
        ]
        key = f"rawlogs/{self.topic}/file-{self._file_counter:06d}.avro"
        self._file_counter += 1
        self._store.put(key, serde.encode(payload))
        log_file = RawLogFile(
            key=key,
            record_count=len(self._buffer),
            min_event_time=min(r.event_time for r in self._buffer),
            max_event_time=max(r.event_time for r in self._buffer),
        )
        self._files.append(log_file)
        self._buffer = []
        return log_file

    def files(self) -> list[RawLogFile]:
        return list(self._files)

    def read_file(self, key: str) -> list[Record]:
        payload = serde.decode(self._store.get(key))
        return [
            Record(
                key=item["key"],
                value=item["value"],
                event_time=item["event_time"],
                headers=item["headers"],
            )
            for item in payload
        ]

    def read_range(self, start_time: float, end_time: float) -> list[Record]:
        """All archived records with event_time in [start, end)."""
        out: list[Record] = []
        for log_file in self._files:
            if log_file.max_event_time < start_time or log_file.min_event_time >= end_time:
                continue
            for record in self.read_file(log_file.key):
                if start_time <= record.event_time < end_time:
                    out.append(record)
        return out


def compact_to_hive(
    archiver: RawLogArchiver,
    table: HiveTable,
    partition_of,
    row_of=None,
) -> int:
    """Merge all raw log files into Hive partitions.

    ``partition_of(record) -> str`` chooses the partition key (usually a
    day string derived from event time).  ``row_of(record) -> dict``
    converts a record into a table row; by default the record value is the
    row.  Returns the number of rows written.
    """
    by_partition: dict[str, list[dict[str, Any]]] = {}
    for log_file in archiver.files():
        for record in archiver.read_file(log_file.key):
            row = row_of(record) if row_of is not None else dict(record.value)
            by_partition.setdefault(partition_of(record), []).append(row)
    written = 0
    for partition_key in sorted(by_partition):
        rows = by_partition[partition_key]
        table.add_rows(partition_key, rows)
        written += len(rows)
    return written
