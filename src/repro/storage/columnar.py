"""Parquet-like columnar file format with column statistics.

Section 4.4: raw Kafka logs are merged into "the long term Parquet data
format using a compaction process" and served by Hive/Presto/Spark.  The
format here stores each column contiguously, dictionary-encodes strings
and keeps min/max/null-count stats per column so the Hive connector can
prune files (predicate pushdown on storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.common import serde
from repro.common.errors import StorageError


@dataclass(frozen=True)
class ColumnStats:
    """Min/max/null statistics for one column of one file."""

    name: str
    min_value: Any
    max_value: Any
    null_count: int
    distinct_count: int

    def might_contain(self, op: str, literal: Any) -> bool:
        """Conservative pruning check: can any row in this column satisfy
        ``col <op> literal``?  Returns True when unsure."""
        if self.min_value is None or self.max_value is None:
            return op in ("IS NULL",) or self.null_count > 0
        try:
            if op == "=":
                return self.min_value <= literal <= self.max_value
            if op == ">":
                return self.max_value > literal
            if op == ">=":
                return self.max_value >= literal
            if op == "<":
                return self.min_value < literal
            if op == "<=":
                return self.min_value <= literal
        except TypeError:
            return True
        return True


class ColumnarFile:
    """An immutable columnar file: named columns of equal length."""

    def __init__(self, columns: dict[str, list[Any]]) -> None:
        if not columns:
            raise StorageError("columnar file needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise StorageError(f"column lengths differ: { {k: len(v) for k, v in columns.items()} }")
        self._columns = {name: list(values) for name, values in columns.items()}
        self.num_rows = lengths.pop()
        self.stats = {name: _compute_stats(name, values) for name, values in self._columns.items()}

    @classmethod
    def from_rows(cls, rows: Iterable[dict[str, Any]], column_names: list[str]) -> "ColumnarFile":
        columns: dict[str, list[Any]] = {name: [] for name in column_names}
        count = 0
        for row in rows:
            for name in column_names:
                columns[name].append(row.get(name))
            count += 1
        if count == 0:
            raise StorageError("cannot build a columnar file from zero rows")
        return cls(columns)

    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> list[Any]:
        if name not in self._columns:
            raise StorageError(f"no column {name!r} in file")
        return self._columns[name]

    def rows(self) -> Iterable[dict[str, Any]]:
        names = list(self._columns)
        for i in range(self.num_rows):
            yield {name: self._columns[name][i] for name in names}

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize with per-column dictionary encoding for strings."""
        payload: dict[str, Any] = {"n": self.num_rows, "cols": {}}
        for name, values in self._columns.items():
            if values and all(isinstance(v, str) or v is None for v in values):
                # Dictionary-encode: unique values + int codes.
                dictionary: list[str | None] = sorted(
                    {v for v in values if v is not None}
                )
                index = {v: i for i, v in enumerate(dictionary)}
                codes = [-1 if v is None else index[v] for v in values]
                payload["cols"][name] = {"enc": "dict", "dict": dictionary, "codes": codes}
            else:
                payload["cols"][name] = {"enc": "plain", "values": values}
        return serde.encode(payload)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarFile":
        payload = serde.decode(data)
        columns: dict[str, list[Any]] = {}
        for name, col in payload["cols"].items():
            if col["enc"] == "dict":
                dictionary = col["dict"]
                columns[name] = [
                    None if code == -1 else dictionary[code] for code in col["codes"]
                ]
            else:
                columns[name] = col["values"]
        return cls(columns)


def _compute_stats(name: str, values: list[Any]) -> ColumnStats:
    non_null = [v for v in values if v is not None]
    comparable: list[Any] = []
    for v in non_null:
        if isinstance(v, (int, float, str)) and not isinstance(v, bool):
            comparable.append(v)
    min_value = max_value = None
    if comparable:
        try:
            min_value = min(comparable)
            max_value = max(comparable)
        except TypeError:
            # Mixed types (e.g. str + int) — skip stats, stay conservative.
            min_value = max_value = None
    distinct = 0
    try:
        distinct = len(set(non_null))
    except TypeError:
        distinct = len(non_null)
    return ColumnStats(
        name=name,
        min_value=min_value,
        max_value=max_value,
        null_count=len(values) - len(non_null),
        distinct_count=distinct,
    )
