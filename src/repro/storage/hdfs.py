"""HDFS-flavoured distributed file system simulation (Section 4.4).

Models the parts of HDFS that matter to the paper's claims: a single
namenode holding the namespace, datanodes holding replicated blocks, and
the availability consequences — Section 10 notes the archival layer lacks a
high-availability SLA, which Flink checkpoints and Pinot peer-to-peer
segment recovery compensate for.

Files are write-once (like HDFS); appends create new blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import BlobNotFoundError, StorageError, StorageUnavailableError
from repro.common.metrics import MetricsRegistry

DEFAULT_BLOCK_SIZE = 128 * 1024  # scaled down from HDFS's 128 MB
DEFAULT_REPLICATION = 3


@dataclass
class _Block:
    block_id: int
    data: bytes
    replicas: set[str] = field(default_factory=set)  # datanode names


@dataclass
class _INode:
    path: str
    blocks: list[int] = field(default_factory=list)

    def size(self, blocks: dict[int, _Block]) -> int:
        return sum(len(blocks[b].data) for b in self.blocks)


class DataNode:
    """Holds block replicas; can be killed and restarted."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.alive = True
        self.block_ids: set[int] = set()

    def used_bytes(self, blocks: dict[int, _Block]) -> int:
        return sum(len(blocks[b].data) for b in self.block_ids if b in blocks)


class HdfsCluster:
    """Namenode + datanodes with block-level replication.

    Reads succeed while at least one replica of every block of the file is
    on a live datanode.  Writes fail unless ``replication`` live datanodes
    exist.  ``kill_datanode``/``restart_datanode`` inject failures;
    ``re_replicate`` models the background re-replication that restores the
    target replica count after failures.
    """

    def __init__(
        self,
        datanodes: int = 4,
        replication: int = DEFAULT_REPLICATION,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if replication < 1:
            raise StorageError(f"replication must be >= 1, got {replication}")
        if datanodes < replication:
            raise StorageError(
                f"need at least {replication} datanodes for replication factor "
                f"{replication}, got {datanodes}"
            )
        self.block_size = block_size
        self.replication = replication
        self._datanodes: dict[str, DataNode] = {
            f"dn{i}": DataNode(f"dn{i}") for i in range(datanodes)
        }
        self._namespace: dict[str, _INode] = {}
        self._blocks: dict[int, _Block] = {}
        self._next_block = 0
        self._namenode_up = True
        self._rr_cursor = 0
        self.metrics = MetricsRegistry("hdfs")

    # -- failure injection ---------------------------------------------------

    def set_namenode_up(self, up: bool) -> None:
        self._namenode_up = up

    def kill_datanode(self, name: str) -> None:
        self._datanode(name).alive = False

    def restart_datanode(self, name: str) -> None:
        self._datanode(name).alive = True

    def _datanode(self, name: str) -> DataNode:
        if name not in self._datanodes:
            raise StorageError(f"unknown datanode {name!r}")
        return self._datanodes[name]

    def _check_namenode(self) -> None:
        if not self._namenode_up:
            raise StorageUnavailableError("HDFS namenode is down")

    def _live_datanodes(self) -> list[DataNode]:
        return [dn for dn in self._datanodes.values() if dn.alive]

    # -- file API --------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Create a file (write-once semantics; overwrite is an error)."""
        self._check_namenode()
        if path in self._namespace:
            raise StorageError(f"path {path!r} already exists (HDFS is write-once)")
        live = self._live_datanodes()
        if len(live) < self.replication:
            raise StorageUnavailableError(
                f"only {len(live)} live datanodes; replication={self.replication}"
            )
        inode = _INode(path)
        for start in range(0, max(len(data), 1), self.block_size):
            chunk = data[start : start + self.block_size]
            block = _Block(self._next_block, chunk)
            self._next_block += 1
            # Round-robin placement across live datanodes.
            for k in range(self.replication):
                dn = live[(self._rr_cursor + k) % len(live)]
                block.replicas.add(dn.name)
                dn.block_ids.add(block.block_id)
            self._rr_cursor += 1
            self._blocks[block.block_id] = block
            inode.blocks.append(block.block_id)
        self._namespace[path] = inode
        self.metrics.counter("files_written").inc()
        self.metrics.counter("bytes_written").inc(len(data))

    def read_file(self, path: str) -> bytes:
        self._check_namenode()
        inode = self._namespace.get(path)
        if inode is None:
            raise BlobNotFoundError(f"HDFS: no file at {path!r}")
        parts = []
        for block_id in inode.blocks:
            block = self._blocks[block_id]
            if not any(self._datanodes[r].alive for r in block.replicas):
                raise StorageUnavailableError(
                    f"all replicas of block {block_id} of {path!r} are down"
                )
            parts.append(block.data)
        self.metrics.counter("files_read").inc()
        return b"".join(parts)

    def delete_file(self, path: str) -> None:
        self._check_namenode()
        inode = self._namespace.pop(path, None)
        if inode is None:
            raise BlobNotFoundError(f"HDFS: no file at {path!r}")
        for block_id in inode.blocks:
            block = self._blocks.pop(block_id)
            for replica in block.replicas:
                self._datanodes[replica].block_ids.discard(block_id)

    def exists(self, path: str) -> bool:
        self._check_namenode()
        return path in self._namespace

    def list_files(self, prefix: str = "") -> list[str]:
        self._check_namenode()
        return sorted(p for p in self._namespace if p.startswith(prefix))

    def file_size(self, path: str) -> int:
        self._check_namenode()
        inode = self._namespace.get(path)
        if inode is None:
            raise BlobNotFoundError(f"HDFS: no file at {path!r}")
        return inode.size(self._blocks)

    # -- maintenance --------------------------------------------------------

    def under_replicated_blocks(self) -> list[int]:
        """Blocks whose live replica count is below target."""
        out = []
        for block in self._blocks.values():
            live = sum(1 for r in block.replicas if self._datanodes[r].alive)
            if live < self.replication:
                out.append(block.block_id)
        return out

    def re_replicate(self) -> int:
        """Restore the replica count of under-replicated blocks.

        Returns the number of new replicas created.  Mirrors the namenode's
        background re-replication after datanode loss.
        """
        self._check_namenode()
        created = 0
        live = self._live_datanodes()
        for block in self._blocks.values():
            live_replicas = {r for r in block.replicas if self._datanodes[r].alive}
            needed = self.replication - len(live_replicas)
            if needed <= 0:
                continue
            candidates = [dn for dn in live if dn.name not in live_replicas]
            for dn in candidates[:needed]:
                block.replicas.add(dn.name)
                dn.block_ids.add(block.block_id)
                created += 1
            # Drop bookkeeping for dead replicas that were replaced.
            block.replicas = {r for r in block.replicas if self._datanodes[r].alive}
        return created

    def total_stored_bytes(self) -> int:
        """Raw bytes across all replicas (for cost accounting)."""
        return sum(
            len(block.data) * len(block.replicas) for block in self._blocks.values()
        )
