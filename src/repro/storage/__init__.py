"""Storage layer: blob store, HDFS simulation, columnar files, Hive."""

from repro.storage.blobstore import BlobStat, BlobStore
from repro.storage.columnar import ColumnarFile, ColumnStats
from repro.storage.hdfs import HdfsCluster
from repro.storage.hive import HiveMetastore, HiveTable
from repro.storage.rawlogs import RawLogArchiver, compact_to_hive

__all__ = [
    "BlobStat",
    "BlobStore",
    "ColumnarFile",
    "ColumnStats",
    "HdfsCluster",
    "HiveMetastore",
    "HiveTable",
    "RawLogArchiver",
    "compact_to_hive",
]
