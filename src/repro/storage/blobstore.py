"""Generic blob storage with read-after-write consistency (Section 3).

This is the "Storage" abstraction at the bottom of Figure 2: long-term
object storage optimized for a high write rate, used by Flink for
checkpoints and by Pinot for segment archival.  Availability failures can
be injected to reproduce the Section 4.3.4 experiments (segment-store
outage halting ingestion under the centralized design).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import Clock, SystemClock
from repro.common.errors import BlobNotFoundError, StorageUnavailableError
from repro.common.metrics import MetricsRegistry


@dataclass(frozen=True, slots=True)
class BlobStat:
    key: str
    size: int
    created_at: float


class BlobStore:
    """In-memory object store keyed by string paths.

    Guarantees read-after-write consistency: a successful ``put`` is
    immediately visible to ``get``.  A per-operation service latency can be
    charged to a simulated clock by callers; the store itself is
    instantaneous but records byte counters for cost accounting.
    """

    def __init__(self, name: str = "blobstore", clock: Clock | None = None) -> None:
        self.name = name
        self._clock = clock or SystemClock()
        self._objects: dict[str, bytes] = {}
        self._created: dict[str, float] = {}
        self._available = True
        self.metrics = MetricsRegistry(name)

    # -- failure injection -------------------------------------------------

    def set_available(self, available: bool) -> None:
        """Inject or clear a full-service outage."""
        self._available = available

    @property
    def available(self) -> bool:
        return self._available

    def _check_available(self, op: str) -> None:
        if not self._available:
            self.metrics.counter(f"{op}.unavailable").inc()
            raise StorageUnavailableError(f"{self.name} is unavailable")

    # -- object API ---------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self._check_available("put")
        if not isinstance(data, bytes):
            raise TypeError(f"blob data must be bytes, got {type(data).__name__}")
        self._objects[key] = data
        self._created[key] = self._clock.now()
        self.metrics.counter("put").inc()
        self.metrics.counter("bytes_written").inc(len(data))

    def get(self, key: str) -> bytes:
        self._check_available("get")
        try:
            data = self._objects[key]
        except KeyError:
            raise BlobNotFoundError(f"{self.name}: no object at {key!r}") from None
        self.metrics.counter("get").inc()
        self.metrics.counter("bytes_read").inc(len(data))
        return data

    def delete(self, key: str) -> None:
        self._check_available("delete")
        if key not in self._objects:
            raise BlobNotFoundError(f"{self.name}: no object at {key!r}")
        del self._objects[key]
        del self._created[key]
        self.metrics.counter("delete").inc()

    def exists(self, key: str) -> bool:
        self._check_available("head")
        return key in self._objects

    def stat(self, key: str) -> BlobStat:
        self._check_available("head")
        if key not in self._objects:
            raise BlobNotFoundError(f"{self.name}: no object at {key!r}")
        return BlobStat(key, len(self._objects[key]), self._created[key])

    def list(self, prefix: str = "") -> list[str]:
        self._check_available("list")
        return sorted(k for k in self._objects if k.startswith(prefix))

    def total_bytes(self, prefix: str = "") -> int:
        """Total stored bytes under a prefix (cost/chargeback accounting)."""
        return sum(
            len(data) for key, data in self._objects.items() if key.startswith(prefix)
        )

    def __len__(self) -> int:
        return len(self._objects)
