"""Component-usage tracing for the Table 1 reproduction.

Table 1 of the paper records which of the six logical layers (Figure 2)
each representative use case exercises.  Instead of hard-coding the
matrix, each use-case pipeline records the layers it actually wires, and
the T1 bench renders the table from those traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

LAYERS = ("API", "SQL", "OLAP", "Compute", "Stream", "Storage")


@dataclass
class ComponentTrace:
    """Layers touched by one use case, recorded as it is constructed."""

    use_case: str
    used: set[str] = field(default_factory=set)

    def use(self, layer: str) -> None:
        if layer not in LAYERS:
            raise ValueError(f"unknown layer {layer!r}; expected one of {LAYERS}")
        self.used.add(layer)

    def row(self) -> dict[str, str]:
        """Table 1 row: layer -> 'Y' or ''."""
        return {layer: ("Y" if layer in self.used else "") for layer in LAYERS}


def render_table(traces: list[ComponentTrace]) -> str:
    """Render the Table 1 matrix as aligned text."""
    header = ["Component"] + [t.use_case for t in traces]
    rows = []
    for layer in LAYERS:
        rows.append(
            [layer] + [("Y" if layer in t.used else "") for t in traces]
        )
    widths = [
        max(len(str(row[i])) for row in [header] + rows)
        for i in range(len(header))
    ]
    lines = []
    for row in [header] + rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
