"""UberEats ops automation (Section 5.4).

"The ops team was able to identify such metrics using Presto on top of
real-time data managed by Pinot and then inject such queries into the
automation framework.  This framework uses Pinot to aggregate needed
statistics for a given geographical location in the past few minutes and
then generates alerts and notifications to the couriers and restaurants."

The ad-hoc -> production path is the point: :meth:`explore` runs PrestoSQL
against Pinot; :meth:`productionize` turns the discovered insight into a
standing rule evaluated continuously against fresh data.  (Built during
Covid-19 to cap simultaneous couriers/customers per restaurant area.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flink.runtime import JobRuntime
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.metadata.schema import Field, FieldRole, FieldType, Schema
from repro.pinot.broker import PinotBroker
from repro.pinot.controller import PinotController
from repro.pinot.query import Aggregation, Filter, PinotQuery
from repro.pinot.segment import IndexConfig
from repro.pinot.table import TableConfig
from repro.sql.flinksql import FlinkSqlCompiler, StreamTableDef
from repro.sql.presto.connector import PinotConnector
from repro.sql.presto.engine import PrestoEngine
from repro.storage.blobstore import BlobStore
from repro.usecases.components import ComponentTrace

TELEMETRY_TOPIC = "courier-telemetry"
DENSITY_TOPIC = "courier-density"

DENSITY_SCHEMA = Schema(
    "courier_density",
    (
        Field("hex_id", FieldType.STRING),
        Field("window_start", FieldType.DOUBLE),
        Field("window_end", FieldType.DOUBLE, FieldRole.TIME),
        Field("pings", FieldType.LONG, FieldRole.METRIC),
        Field("couriers", FieldType.LONG, FieldRole.METRIC),
    ),
)

DENSITY_SQL = (
    "SELECT hex_id, COUNT(*) AS pings, COUNT(DISTINCT courier_id) AS couriers "
    f"FROM {TELEMETRY_TOPIC.replace('-', '_')} "
    "GROUP BY TUMBLE(event_time, 300), hex_id"
)


@dataclass(frozen=True)
class OpsRule:
    """A productionized insight: threshold over a geofence statistic."""

    name: str
    metric: str  # 'couriers' or 'pings'
    threshold: float
    window_lookback: float = 900.0
    notify: str = "couriers_and_restaurants"


@dataclass
class OpsAlert:
    rule: str
    hex_id: str
    value: float
    window_end: float
    notify: str


@dataclass
class EatsOpsAutomation:
    kafka: KafkaCluster
    controller: PinotController
    broker: PinotBroker
    presto: PrestoEngine
    density_runtime: JobRuntime
    trace: ComponentTrace
    rules: list[OpsRule] = field(default_factory=list)
    alerts: list[OpsAlert] = field(default_factory=list)

    @classmethod
    def deploy(
        cls, kafka: KafkaCluster, controller: PinotController
    ) -> "EatsOpsAutomation":
        trace = ComponentTrace("Eats Ops Automation")
        trace.use("Stream")
        for topic in (TELEMETRY_TOPIC, DENSITY_TOPIC):
            if not kafka.has_topic(topic):
                kafka.create_topic(topic, TopicConfig(partitions=4))
        compiler = FlinkSqlCompiler(
            {
                TELEMETRY_TOPIC.replace("-", "_"): StreamTableDef(
                    kafka, TELEMETRY_TOPIC, timestamp_column="event_time"
                )
            }
        )
        graph = compiler.compile_streaming(
            DENSITY_SQL,
            sink_kafka=(kafka, DENSITY_TOPIC),
            group="ops-density",
            job_name="ops-density",
        )
        trace.use("SQL")
        trace.use("Compute")
        # Note: no Storage use — this pipeline is stateless-reprocessable
        # and its Pinot table is short-retention, matching Table 1.
        runtime = JobRuntime(graph, blob_store=BlobStore())
        controller.create_realtime_table(
            TableConfig(
                "courier_density",
                DENSITY_SCHEMA,
                time_column="window_end",
                index_config=IndexConfig(
                    inverted=frozenset({"hex_id"}),
                    range_indexed=frozenset({"window_end"}),
                ),
                segment_rows_threshold=1000,
            ),
            kafka,
            DENSITY_TOPIC,
        )
        trace.use("OLAP")
        broker = PinotBroker(controller)
        presto = PrestoEngine({"courier_density": PinotConnector(broker)})
        return cls(kafka, controller, broker, presto, runtime, trace)

    def process(self, flink_rounds: int = 100, ingest_steps: int = 100) -> None:
        self.density_runtime.run_rounds(flink_rounds)
        state = self.controller.table("courier_density")
        for __ in range(ingest_steps):
            if state.ingestion.run_step() == 0:
                break
        self.controller.backup.run_step()

    # -- ad-hoc exploration (PrestoSQL over Pinot) ---------------------------

    def explore(self, sql: str):
        """The ops analyst's ad-hoc PrestoSQL query."""
        return self.presto.execute(sql)

    # -- productionization -----------------------------------------------------

    def productionize(self, rule: OpsRule) -> None:
        self.rules.append(rule)

    def evaluate_rules(self, now: float) -> list[OpsAlert]:
        """Run every rule against the last few minutes of data and emit
        courier/restaurant notifications for violations."""
        fired: list[OpsAlert] = []
        for rule in self.rules:
            result = self.broker.execute(
                PinotQuery(
                    table="courier_density",
                    aggregations=[Aggregation("MAX", rule.metric)],
                    filters=[
                        Filter(
                            "window_end",
                            "BETWEEN",
                            low=now - rule.window_lookback,
                            high=now,
                        )
                    ],
                    group_by=["hex_id"],
                    limit=10_000,
                )
            )
            alias = f"max({rule.metric})"
            for row in result.rows:
                value = row.get(alias)
                if value is not None and value > rule.threshold:
                    fired.append(
                        OpsAlert(rule.name, row["hex_id"], value, now, rule.notify)
                    )
        self.alerts.extend(fired)
        return fired
