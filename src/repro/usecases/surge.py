"""Surge pricing (Section 5.1, Figure 6).

"Essentially a streaming pipeline for computing the pricing multipliers
per hexagon-area geofence based on the trip data, rider and driver status
in a time window.  The surge pricing pipeline ingests streaming data from
Kafka, runs a complex machine-learning based algorithm in Flink, and
stores the result in a sink key-value store for quick result look up."

Design trade-offs reproduced:

* freshness over consistency — the Kafka topic is the lossy
  higher-throughput configuration (acks=1), and late events are dropped
  from their window rather than delaying results;
* programmatic API, no SQL/OLAP/Storage in the serving path (Table 1);
* active-active multi-region deployment with redundant computation and a
  primary-only update service (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.allactive.coordinator import AllActiveCoordinator, UpdateService
from repro.allactive.region import MultiRegionDeployment
from repro.allactive.replicated_db import ReplicatedKV
from repro.flink.graph import JobGraph, StreamEnvironment
from repro.flink.runtime import JobRuntime
from repro.flink.windows import TumblingWindows, WindowResult
from repro.kafka.cluster import KafkaCluster
from repro.usecases.components import ComponentTrace

MARKETPLACE_TOPIC = "marketplace-events"


class DemandSupplyAggregate:
    """Per-hex window accumulator over the mixed marketplace stream."""

    def create_accumulator(self) -> dict[str, Any]:
        return {"demand": 0, "available": [], "busy": []}

    def add(self, value: dict, accumulator: dict) -> dict:
        kind = value.get("kind")
        if kind == "trip_requested":
            accumulator["demand"] += 1
        elif kind == "driver_available":
            if value["driver_id"] not in accumulator["available"]:
                accumulator["available"].append(value["driver_id"])
        elif kind == "driver_busy":
            if value["driver_id"] not in accumulator["busy"]:
                accumulator["busy"].append(value["driver_id"])
        return accumulator

    def get_result(self, accumulator: dict) -> dict:
        available = set(accumulator["available"]) - set(accumulator["busy"])
        return {"demand": accumulator["demand"], "supply": len(available)}

    def merge(self, a: dict, b: dict) -> dict:
        return {
            "demand": a["demand"] + b["demand"],
            "available": a["available"] + b["available"],
            "busy": a["busy"] + b["busy"],
        }


def surge_multiplier(demand: int, supply: int) -> float:
    """The pricing model: a smooth, bounded function of the demand/supply
    ratio (stand-in for the paper's "complex machine-learning based
    algorithm"; the pipeline shape, not the model, is what matters)."""
    ratio = demand / (supply + 1.0)
    multiplier = 1.0 + max(0.0, (ratio - 0.8)) ** 0.75
    return round(min(multiplier, 5.0), 2)


@dataclass
class SurgeUpdate:
    hex_id: str
    window_start: float
    window_end: float
    demand: int
    supply: int
    multiplier: float


def _to_update(result: WindowResult) -> SurgeUpdate:
    return SurgeUpdate(
        hex_id=result.key,
        window_start=result.window.start,
        window_end=result.window.end,
        demand=result.value["demand"],
        supply=result.value["supply"],
        multiplier=surge_multiplier(result.value["demand"], result.value["supply"]),
    )


def build_surge_job(
    kafka: KafkaCluster,
    topic: str,
    group: str,
    sink_collector: list,
    window_seconds: float = 120.0,
    trace: ComponentTrace | None = None,
    job_name: str = "surge-pricing",
) -> JobGraph:
    """The surge Flink job: Kafka -> hex windows -> multiplier -> sink."""
    if trace is not None:
        trace.use("Stream")  # Kafka ingestion
        trace.use("Compute")  # Flink pipeline
        trace.use("API")  # programmatic DataStream API, not SQL
    env = StreamEnvironment()
    env.from_kafka(kafka, topic, group=group) \
        .key_by(lambda event: event["hex_id"]) \
        .window(TumblingWindows(window_seconds)) \
        .aggregate(DemandSupplyAggregate()) \
        .map(_to_update) \
        .sink_to_list(sink_collector)
    return env.build(job_name)


class ActiveActiveSurge:
    """Figure 6: redundant surge jobs per region, primary-only publishing.

    Each region runs the identical job over its own *aggregate* cluster.
    Because every aggregate cluster receives the same global message set
    (all-to-all uReplication), the per-region window states converge, and
    failover just moves the primary label.
    """

    def __init__(
        self,
        deployment: MultiRegionDeployment,
        window_seconds: float = 120.0,
        topic: str = MARKETPLACE_TOPIC,
    ) -> None:
        self.deployment = deployment
        self.topic = topic
        self.coordinator = AllActiveCoordinator(deployment)
        self.kv = ReplicatedKV(list(deployment.regions))
        self.update_services: dict[str, UpdateService] = {}
        self.runtimes: dict[str, JobRuntime] = {}
        self.results: dict[str, list] = {}
        self._published_until: dict[str, int] = {}
        for name, region in deployment.regions.items():
            service = UpdateService(name, self.coordinator, self.kv)
            self.update_services[name] = service
            collector: list = []
            self.results[name] = collector
            graph = build_surge_job(
                region.aggregate,
                topic,
                group=f"surge-{name}",
                sink_collector=collector,
                window_seconds=window_seconds,
                job_name=f"surge-{name}",
            )
            self.runtimes[name] = JobRuntime(graph)

    def step(self, rounds: int = 2) -> None:
        """One simulation round: replicate, compute in healthy regions,
        publish from the primary, replicate the KV."""
        self.deployment.replicate_step()
        for name, runtime in self.runtimes.items():
            if self.deployment.region(name).healthy:
                runtime.run_rounds(rounds)
        primary = self.coordinator.primary
        service = self.update_services[primary]
        collector = self.results[primary]
        position = self._published_until.get(primary, 0)
        for update in collector[position:]:
            service.publish(
                update.hex_id,
                {
                    "multiplier": update.multiplier,
                    "demand": update.demand,
                    "supply": update.supply,
                    "window_end": update.window_end,
                },
                update.window_end,
            )
        self._published_until[primary] = len(collector)
        self.kv.replicate()

    def lookup(self, region: str, hex_id: str) -> dict | None:
        """The fast path riders' price requests hit."""
        return self.kv.get(region, hex_id)

    def fail_region(self, name: str) -> str:
        """Disaster: region down; coordinator re-elects; returns the new
        primary."""
        self.deployment.fail_region(name)
        return self.coordinator.elect()
