"""The four representative use cases of Section 5, one per category."""

from repro.usecases.components import LAYERS, ComponentTrace, render_table
from repro.usecases.eats_ops import EatsOpsAutomation, OpsAlert, OpsRule
from repro.usecases.prediction import PredictionMonitoring
from repro.usecases.restaurant import RestaurantManager
from repro.usecases.surge import (
    ActiveActiveSurge,
    SurgeUpdate,
    build_surge_job,
    surge_multiplier,
)

__all__ = [
    "LAYERS",
    "ComponentTrace",
    "render_table",
    "EatsOpsAutomation",
    "OpsAlert",
    "OpsRule",
    "PredictionMonitoring",
    "RestaurantManager",
    "ActiveActiveSurge",
    "SurgeUpdate",
    "build_surge_job",
    "surge_multiplier",
]
