"""UberEats Restaurant Manager (Section 5.2).

"The restaurant manager demands fresher data and low query latency, but
does not require too much flexibility as the patterns of the generated
queries are fixed.  ...  we used Pinot with the efficient pre-aggregation
indices ... Also, we built preprocessors in Flink such as aggressive
filtering, partial aggregate and roll-ups."

Per Table 1 this use case touches SQL (the preprocessor is a FlinkSQL
query, not hand-written API code), OLAP, Compute, Stream and Storage —
but not the programmatic API.  The central trade-off — transformation-time
versus query-time processing — is exposed by building *both* tables
(raw and pre-aggregated) so the C11 bench can measure it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flink.runtime import JobRuntime
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.metadata.schema import Field, FieldRole, FieldType, Schema
from repro.pinot.broker import PinotBroker, QueryResult
from repro.pinot.controller import PinotController
from repro.pinot.query import Aggregation, Filter, PinotQuery
from repro.pinot.segment import IndexConfig
from repro.pinot.table import TableConfig
from repro.sql.flinksql import FlinkSqlCompiler, StreamTableDef
from repro.storage.blobstore import BlobStore
from repro.usecases.components import ComponentTrace

ORDERS_TOPIC = "eats-orders"
PREAGG_TOPIC = "eats-orders-preagg"

RAW_SCHEMA = Schema(
    "eats_orders",
    (
        Field("order_id", FieldType.STRING),
        Field("restaurant_id", FieldType.STRING),
        Field("eater_id", FieldType.STRING),
        Field("courier_id", FieldType.STRING),
        Field("item", FieldType.STRING),
        Field("hex_id", FieldType.STRING),
        Field("status", FieldType.STRING),
        Field("amount", FieldType.DOUBLE, FieldRole.METRIC),
        Field("event_time", FieldType.DOUBLE, FieldRole.TIME),
    ),
)

PREAGG_SCHEMA = Schema(
    "eats_orders_preagg",
    (
        Field("restaurant_id", FieldType.STRING),
        Field("item", FieldType.STRING),
        Field("window_start", FieldType.DOUBLE),
        Field("window_end", FieldType.DOUBLE, FieldRole.TIME),
        Field("orders", FieldType.LONG, FieldRole.METRIC),
        Field("sales", FieldType.DOUBLE, FieldRole.METRIC),
    ),
)

# The FlinkSQL preprocessor: aggressive filter (delivered orders only) +
# partial aggregation rolled up per restaurant/item/5-minute window.
PREPROCESSOR_SQL = (
    "SELECT restaurant_id, item, COUNT(*) AS orders, SUM(amount) AS sales "
    f"FROM {ORDERS_TOPIC.replace('-', '_')} "
    "WHERE status = 'delivered' "
    "GROUP BY TUMBLE(event_time, 300), restaurant_id, item"
)


@dataclass
class RestaurantManager:
    """The full dashboard stack: Kafka -> FlinkSQL preagg -> Pinot."""

    kafka: KafkaCluster
    controller: PinotController
    broker: PinotBroker
    preagg_runtime: JobRuntime
    trace: ComponentTrace

    @classmethod
    def deploy(
        cls,
        kafka: KafkaCluster,
        controller: PinotController,
        checkpoint_store: BlobStore | None = None,
    ) -> "RestaurantManager":
        trace = ComponentTrace("Restaurant Manager")
        trace.use("Stream")
        if not kafka.has_topic(ORDERS_TOPIC):
            kafka.create_topic(ORDERS_TOPIC, TopicConfig(partitions=4))
        if not kafka.has_topic(PREAGG_TOPIC):
            kafka.create_topic(PREAGG_TOPIC, TopicConfig(partitions=4))
        # FlinkSQL preprocessor (SQL + Compute layers).
        compiler = FlinkSqlCompiler(
            {
                ORDERS_TOPIC.replace("-", "_"): StreamTableDef(
                    kafka, ORDERS_TOPIC, timestamp_column="event_time"
                )
            }
        )
        graph = compiler.compile_streaming(
            PREPROCESSOR_SQL,
            sink_kafka=(kafka, PREAGG_TOPIC),
            group="restaurant-preagg",
            job_name="restaurant-preagg",
        )
        trace.use("SQL")
        trace.use("Compute")
        runtime = JobRuntime(graph, blob_store=checkpoint_store or BlobStore())
        trace.use("Storage")  # checkpoints + Pinot segment archival
        # Pinot tables (OLAP layer): raw with inverted indexes, pre-agg.
        controller.create_realtime_table(
            TableConfig(
                "eats_orders",
                RAW_SCHEMA,
                time_column="event_time",
                index_config=IndexConfig(
                    inverted=frozenset({"restaurant_id", "item", "status"}),
                    range_indexed=frozenset({"event_time"}),
                ),
                segment_rows_threshold=2000,
            ),
            kafka,
            ORDERS_TOPIC,
        )
        controller.create_realtime_table(
            TableConfig(
                "eats_orders_preagg",
                PREAGG_SCHEMA,
                time_column="window_end",
                index_config=IndexConfig(
                    inverted=frozenset({"restaurant_id", "item"}),
                    range_indexed=frozenset({"window_end"}),
                ),
                segment_rows_threshold=500,
            ),
            kafka,
            PREAGG_TOPIC,
        )
        trace.use("OLAP")
        broker = PinotBroker(controller)
        return cls(kafka, controller, broker, runtime, trace)

    def process(self, flink_rounds: int = 50, ingest_steps: int = 50) -> None:
        """Drive the preprocessor and both Pinot ingestion pipelines."""
        self.preagg_runtime.run_rounds(flink_rounds)
        for table in ("eats_orders", "eats_orders_preagg"):
            state = self.controller.table(table)
            for __ in range(ingest_steps):
                if state.ingestion.run_step() == 0:
                    break
            self.controller.backup.run_step()

    # -- the dashboard's fixed query patterns ----------------------------------

    def top_items(self, restaurant_id: str, limit: int = 5) -> QueryResult:
        """Popular menu items, served from the pre-aggregated table."""
        return self.broker.execute(
            PinotQuery(
                table="eats_orders_preagg",
                aggregations=[
                    Aggregation("SUM", "orders"),
                    Aggregation("SUM", "sales"),
                ],
                filters=[Filter("restaurant_id", "=", restaurant_id)],
                group_by=["item"],
                order_by=[("sum(orders)", True)],
                limit=limit,
            )
        )

    def sales_timeseries(self, restaurant_id: str, limit: int = 48) -> QueryResult:
        return self.broker.execute(
            PinotQuery(
                table="eats_orders_preagg",
                aggregations=[Aggregation("SUM", "sales")],
                filters=[Filter("restaurant_id", "=", restaurant_id)],
                group_by=["window_start"],
                order_by=[("window_start", False)],
                limit=limit,
            )
        )

    def service_quality(self, restaurant_id: str) -> dict[str, int]:
        """Cancellation analysis needs raw statuses -> raw table."""
        result = self.broker.execute(
            PinotQuery(
                table="eats_orders",
                aggregations=[Aggregation("COUNT")],
                filters=[Filter("restaurant_id", "=", restaurant_id)],
                group_by=["status"],
                limit=20,
            )
        )
        return {row["status"]: row["count(*)"] for row in result.rows}
