"""Feature platform: versioned feature writes with point-in-time reads.

Flink jobs write event-time-stamped feature values through a
:class:`FeatureSink`; online and offline consumers read them back with
``get_features(key, as_of)``, which never returns a value written for an
event time later than ``as_of``.  Consistency between the online store
and an offline recomputation is reconciled by lineage digest through the
:mod:`repro.audit` machinery.
"""

from repro.features.store import FeatureSink, FeatureStore, FeatureWrite

__all__ = ["FeatureSink", "FeatureStore", "FeatureWrite"]
