"""The feature store: versioned, event-time-stamped feature values.

The store is the serving surface between the streaming plane (Flink jobs
writing features as they process events) and the consumers of Section
5.3's prediction use case (models reading enrichment features online,
training pipelines reading them offline).  Two properties carry the
whole design:

* **Point-in-time correctness.**  Every write is stamped with the event
  time it describes; ``get_features(key, as_of)`` returns, per feature,
  the latest value whose ``event_time <= as_of`` — it can *never* read a
  value written for a later event time, no matter how far out of order
  the writes arrived.  This is the rule that keeps training data free of
  label leakage: a feature computed from the outcome can never be served
  "before" the outcome happened.
* **Idempotent versioned writes.**  Each applied write gets a
  monotonically increasing version.  A write identical in
  ``(key, feature, event_time, value)`` to one already stored is a
  duplicate delivery (an at-least-once sink replaying after a crash) and
  is absorbed without a new version, so crash-restore replays leave the
  store byte-identical.  Distinct values at the same event time are kept
  as separate versions and the latest version wins at read time.

Online/offline consistency is checked with the :mod:`repro.audit`
machinery: the store's write log scans as an auditor stage and is
reconciled — by lineage digest — against a ledger built from the
offline (batch-recomputed) feature set.  Both sides are canonically
sorted, so the comparison is independent of arrival order and any
missing/duplicated/divergent write surfaces in the report.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Iterator

from repro.audit.auditor import IntegrityAuditor
from repro.audit.lineage import lineage_digest
from repro.audit.report import IntegrityReport
from repro.common import serde
from repro.common.memory import deep_sizeof
from repro.common.perf import PERF

#: One logical feature write, as fed to the offline side of the
#: consistency check: (key, feature, value, event_time).
FeatureWrite = tuple[Any, str, Any, float]


def _write_payload(feature: str, value: Any, event_time: float) -> dict:
    """The canonical audited payload of one write (key travels separately)."""
    return {"feature": feature, "value": value, "event_time": event_time}


class FeatureStore:
    """Versioned event-time feature values with point-in-time reads."""

    def __init__(self, name: str = "features") -> None:
        self.name = name
        # canonical key bytes -> feature -> [(event_time, version, value)],
        # sorted by (event_time, version): out-of-order writes insert into
        # place, reads binary-search the event-time axis.
        self._tables: dict[bytes, dict[str, list[tuple[float, int, Any]]]] = {}
        self._display: dict[bytes, Any] = {}
        self._version = 0
        self.writes = 0
        self.duplicate_writes = 0
        self.reads = 0

    # -- writes --------------------------------------------------------------

    def write(self, key: Any, feature: str, value: Any, event_time: float) -> int:
        """Apply one write; returns its version (the existing version for
        an absorbed duplicate delivery)."""
        canonical = serde.encode_key(key)
        table = self._tables.setdefault(canonical, {})
        self._display.setdefault(canonical, key)
        versions = table.setdefault(feature, [])
        # Duplicate delivery: same (event_time, value) already stored.
        # Scan only the equal-event-time run (bounded by out-of-orderness
        # in practice, not by history length).
        hi = bisect_right(versions, event_time, key=lambda e: e[0])
        for i in range(hi - 1, -1, -1):
            stored_ts, stored_version, stored_value = versions[i]
            if stored_ts != event_time:
                break
            if stored_value == value:
                self.duplicate_writes += 1
                if PERF.enabled:
                    PERF.inc("features.duplicate_writes")
                return stored_version
        self._version += 1
        versions.insert(hi, (event_time, self._version, value))
        self.writes += 1
        if PERF.enabled:
            PERF.inc("features.writes")
        return self._version

    def write_row(self, key: Any, features: dict[str, Any], event_time: float) -> None:
        """Write every (feature, value) of a row at one event time."""
        for feature in sorted(features):
            self.write(key, feature, features[feature], event_time)

    # -- point-in-time reads -------------------------------------------------

    def get_features(
        self, key: Any, as_of: float, features: Iterable[str] | None = None
    ) -> dict[str, Any]:
        """Latest value per feature with ``event_time <= as_of``.

        Features with no version at or before ``as_of`` are omitted — a
        value written for a later event time is *never* returned, which
        is the point-in-time-read rule.
        """
        self.reads += 1
        if PERF.enabled:
            PERF.inc("features.reads")
        table = self._tables.get(serde.encode_key(key))
        if table is None:
            return {}
        names = sorted(table) if features is None else list(features)
        out: dict[str, Any] = {}
        for feature in names:
            versions = table.get(feature)
            if not versions:
                continue
            if PERF.enabled:
                PERF.inc("features.versions_probed", len(versions).bit_length())
            i = bisect_right(versions, as_of, key=lambda e: e[0])
            if i:
                out[feature] = versions[i - 1][2]
        return out

    def get_feature(
        self, key: Any, feature: str, as_of: float, default: Any = None
    ) -> Any:
        return self.get_features(key, as_of, (feature,)).get(feature, default)

    # -- introspection -------------------------------------------------------

    def key_count(self) -> int:
        return len(self._tables)

    def version_count(self) -> int:
        return sum(
            len(versions)
            for table in self._tables.values()
            for versions in table.values()
        )

    def size_bytes(self) -> int:
        return deep_sizeof(self._tables)

    # -- audit surface -------------------------------------------------------

    def write_scan(self) -> Iterator[tuple[Any, dict]]:
        """Every stored version as ``(key, payload)`` in canonical order.

        Canonical order — key bytes, then feature, then (event_time,
        digest) — makes the scan independent of arrival order, so the
        audit compares *content*, not scheduling.
        """
        for canonical in sorted(self._tables):
            key = self._display[canonical]
            table = self._tables[canonical]
            for feature in sorted(table):
                payloads = [
                    _write_payload(feature, value, event_time)
                    for event_time, __, value in table[feature]
                ]
                payloads.sort(key=lambda p: (p["event_time"], lineage_digest(p)))
                for payload in payloads:
                    yield key, payload

    def consistency_report(
        self, offline: Iterable[FeatureWrite], name: str | None = None
    ) -> IntegrityReport:
        """Reconcile the store against an offline recomputation.

        ``offline`` is the batch-side truth: every logical feature write
        recomputed from the raw events (order-free).  Both sides are
        canonically sorted and compared by lineage digest; the report is
        clean iff the online store holds exactly the offline set — no
        missing write, no duplicate version, no divergent value.
        """
        auditor = IntegrityAuditor(name or f"features:{self.name}")
        expected = [
            (serde.encode_key(key), key, _write_payload(feature, value, event_time))
            for key, feature, value, event_time in offline
        ]
        expected.sort(
            key=lambda e: (
                e[0],
                e[2]["feature"],
                e[2]["event_time"],
                lineage_digest(e[2]),
            )
        )
        for __, key, payload in expected:
            auditor.record_expected(key, payload)
        auditor.add_stage(f"store:{self.name}", self.write_scan)
        return auditor.reconcile()

    def read_digest(self, requests: Iterable[tuple[Any, float]]) -> str:
        """Deterministic digest of a batch of point-in-time reads — the
        feature-read half of the determinism gate."""
        results = [
            [serde.encode_key(key).hex(), as_of, self.get_features(key, as_of)]
            for key, as_of in requests
        ]
        return lineage_digest(results)


class FeatureSink:
    """Flink sink writing a stream's records into a :class:`FeatureStore`.

    ``key_fn`` maps a record value to the feature key; ``features_fn``
    maps it to the ``{feature: value}`` dict to write.  The write is
    stamped with the record's event timestamp, so out-of-order streams
    produce out-of-order (but point-in-time-readable) versions.  Writes
    are idempotent in the store, which is what makes an at-least-once
    replay after crash-restore invisible to readers.
    """

    def __init__(
        self,
        store: FeatureStore,
        key_fn: Callable[[Any], Any],
        features_fn: Callable[[Any], dict[str, Any]],
    ) -> None:
        self.store = store
        self.key_fn = key_fn
        self.features_fn = features_fn

    def write(self, record: Any) -> None:
        self.store.write_row(
            self.key_fn(record.value),
            self.features_fn(record.value),
            record.timestamp,
        )
