"""Multi-region strategy (Section 6): regions, all-active coordination,
active/passive offset sync, and the active-active serving store."""

from repro.allactive.coordinator import AllActiveCoordinator, UpdateService
from repro.allactive.offsetsync import (
    FailoverOutcome,
    OffsetSyncJob,
    evaluate_failover,
)
from repro.allactive.region import MultiRegionDeployment, Region
from repro.allactive.replicated_db import ReplicatedKV

__all__ = [
    "AllActiveCoordinator",
    "UpdateService",
    "FailoverOutcome",
    "OffsetSyncJob",
    "evaluate_failover",
    "MultiRegionDeployment",
    "Region",
    "ReplicatedKV",
]
