"""Active-active replicated key-value store (Section 6).

"The update service from the primary region stores the pricing result in
an active/active database for quick lookup."  Writes land in the local
region and replicate asynchronously; conflicts resolve last-writer-wins by
timestamp, which is the behaviour surge pricing wants (freshness over
consistency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import RegionError


@dataclass(frozen=True, slots=True)
class _Versioned:
    value: Any
    timestamp: float
    origin: str


class ReplicatedKV:
    """Multi-region KV with asynchronous LWW replication."""

    def __init__(self, region_names: list[str]) -> None:
        if not region_names:
            raise RegionError("need at least one region")
        self._stores: dict[str, dict[Any, _Versioned]] = {
            name: {} for name in region_names
        }
        self._pending: list[tuple[str, Any, _Versioned]] = []

    def put(self, region: str, key: Any, value: Any, timestamp: float) -> None:
        self._check_region(region)
        versioned = _Versioned(value, timestamp, region)
        self._apply(region, key, versioned)
        for other in self._stores:
            if other != region:
                self._pending.append((other, key, versioned))

    def _apply(self, region: str, key: Any, versioned: _Versioned) -> None:
        current = self._stores[region].get(key)
        # Last-writer-wins; origin name breaks timestamp ties determinately.
        if current is None or (versioned.timestamp, versioned.origin) >= (
            current.timestamp,
            current.origin,
        ):
            self._stores[region][key] = versioned

    def replicate(self) -> int:
        """Deliver all pending cross-region writes; returns count."""
        delivered = len(self._pending)
        pending, self._pending = self._pending, []
        for region, key, versioned in pending:
            self._apply(region, key, versioned)
        return delivered

    def get(self, region: str, key: Any, default: Any = None) -> Any:
        self._check_region(region)
        versioned = self._stores[region].get(key)
        return versioned.value if versioned is not None else default

    def get_with_timestamp(self, region: str, key: Any):
        self._check_region(region)
        versioned = self._stores[region].get(key)
        if versioned is None:
            return None
        return versioned.value, versioned.timestamp

    def keys(self, region: str) -> list[Any]:
        self._check_region(region)
        return sorted(self._stores[region], key=str)

    def divergent_keys(self) -> list[Any]:
        """Keys whose replicas currently disagree (pre-replication lag)."""
        all_keys = {k for store in self._stores.values() for k in store}
        out = []
        for key in all_keys:
            values = set()
            for store in self._stores.values():
                entry = store.get(key)
                values.add(None if entry is None else repr(entry.value))
            if len(values) > 1:
                out.append(key)
        return out

    def _check_region(self, region: str) -> None:
        if region not in self._stores:
            raise RegionError(f"unknown region {region!r}")
