"""Regions and the multi-region Kafka topology (Section 6).

"All the trip events are sent over to the Kafka regional cluster and then
aggregated into the aggregate clusters for the global view."

A :class:`Region` owns a regional cluster (local produce) and an aggregate
cluster (global view).  :class:`MultiRegionDeployment` wires uReplicators
from every region's regional cluster into every region's aggregate
cluster, so each aggregate cluster independently converges to the same
global message set — the property that lets redundant per-region Flink
jobs compute convergent state (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Clock, SimulatedClock
from repro.common.errors import RegionError
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.kafka.consumer import GroupCoordinator
from repro.kafka.producer import Producer
from repro.kafka.ureplicator import OffsetMappingStore, UReplicator


@dataclass
class Region:
    name: str
    regional: KafkaCluster
    aggregate: KafkaCluster
    healthy: bool = True
    coordinators: dict[str, GroupCoordinator] = field(default_factory=dict)

    def aggregate_coordinator(self) -> GroupCoordinator:
        if "aggregate" not in self.coordinators:
            self.coordinators["aggregate"] = GroupCoordinator(self.aggregate)
        return self.coordinators["aggregate"]


class MultiRegionDeployment:
    """N regions with all-to-all regional -> aggregate replication."""

    def __init__(
        self,
        region_names: list[str],
        clock: Clock | None = None,
        brokers_per_cluster: int = 3,
    ) -> None:
        if len(region_names) < 2:
            raise RegionError("a multi-region deployment needs >= 2 regions")
        self.clock = clock or SimulatedClock()
        self.regions: dict[str, Region] = {}
        for name in region_names:
            self.regions[name] = Region(
                name=name,
                regional=KafkaCluster(
                    f"{name}-regional", brokers_per_cluster, clock=self.clock
                ),
                aggregate=KafkaCluster(
                    f"{name}-aggregate", brokers_per_cluster, clock=self.clock
                ),
            )
        self.offset_store = OffsetMappingStore()
        self._replicators: list[UReplicator] = []
        self._producers: dict[tuple[str, str], Producer] = {}
        self.topics: list[str] = []

    def region(self, name: str) -> Region:
        if name not in self.regions:
            raise RegionError(f"unknown region {name!r}")
        return self.regions[name]

    def healthy_regions(self) -> list[Region]:
        return [r for r in self.regions.values() if r.healthy]

    def create_topic(self, topic: str, config: TopicConfig | None = None) -> None:
        """Create the topic on every regional and aggregate cluster and
        wire all-to-all replication."""
        config = config or TopicConfig()
        self.topics.append(topic)
        for region in self.regions.values():
            region.regional.create_topic(topic, config)
            region.aggregate.create_topic(topic, config)
        for src in self.regions.values():
            for dst in self.regions.values():
                self._replicators.append(
                    UReplicator(
                        src.regional,
                        dst.aggregate,
                        topic,
                        num_workers=2,
                        checkpoint_store=self.offset_store,
                        checkpoint_interval=50,
                    )
                )

    def producer(self, region_name: str, service: str) -> Producer:
        key = (region_name, service)
        if key not in self._producers:
            self._producers[key] = Producer(
                self.region(region_name).regional,
                service_name=service,
                clock=self.clock,
            )
        return self._producers[key]

    def replicate_step(self) -> int:
        """One round of cross-cluster replication everywhere."""
        copied = 0
        for replicator in self._replicators:
            if not self.regions_for(replicator).healthy:
                continue
            copied += replicator.run_step()
        return copied

    def regions_for(self, replicator: UReplicator) -> Region:
        """The source region of a replicator (skipped while unhealthy)."""
        for region in self.regions.values():
            if replicator.source is region.regional:
                return region
        raise RegionError("replicator source is not a known region")

    def replicate_until_converged(self, max_steps: int = 1000) -> int:
        total = 0
        for __ in range(max_steps):
            copied = self.replicate_step()
            total += copied
            if copied == 0:
                return total
        raise RegionError(f"replication did not converge in {max_steps} steps")

    def replicators_between(
        self, src_region: str, dst_region: str, topic: str
    ) -> list[UReplicator]:
        src = self.region(src_region).regional
        dst = self.region(dst_region).aggregate
        return [
            r
            for r in self._replicators
            if r.source is src and r.destination is dst and r.topic == topic
        ]

    def fail_region(self, name: str) -> None:
        self.region(name).healthy = False

    def recover_region(self, name: str) -> None:
        self.region(name).healthy = True
