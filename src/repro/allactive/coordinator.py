"""The all-active coordinating service (Section 6, Figure 6).

"Each region has an instance of 'update service' and one of them is
labelled as primary by an all-active coordinating service.  ...  When
disaster strikes the primary region, the active-active service assigns
another region to be the primary."

The coordinator elects a primary among healthy regions; update services
gate their writes on holding the primary label, so exactly one region's
(redundantly computed) results reach the serving store.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import NoHealthyRegionError
from repro.allactive.region import MultiRegionDeployment


class AllActiveCoordinator:
    def __init__(self, deployment: MultiRegionDeployment) -> None:
        self.deployment = deployment
        self._primary: str | None = None
        self.failovers = 0
        self._listeners: list[Callable[[str], None]] = []
        self.elect()

    @property
    def primary(self) -> str:
        if self._primary is None:
            raise NoHealthyRegionError("no primary region elected")
        return self._primary

    def is_primary(self, region_name: str) -> bool:
        return self._primary == region_name

    def on_failover(self, listener: Callable[[str], None]) -> None:
        """Register a callback invoked with the new primary's name."""
        self._listeners.append(listener)

    def elect(self) -> str:
        """(Re)elect: keep the current primary if healthy, else the first
        healthy region in name order."""
        current = self._primary
        if current is not None and self.deployment.region(current).healthy:
            return current
        healthy = sorted(r.name for r in self.deployment.healthy_regions())
        if not healthy:
            raise NoHealthyRegionError("every region is unhealthy")
        self._primary = healthy[0]
        if current is not None:
            self.failovers += 1
            for listener in self._listeners:
                listener(self._primary)
        return self._primary

    def fail_region(self, name: str) -> str:
        """Mark a region down; returns the (possibly new) primary."""
        self.deployment.fail_region(name)
        return self.elect()

    def recover_region(self, name: str) -> None:
        self.deployment.recover_region(name)


class UpdateService:
    """Per-region writer that only publishes while its region is primary
    (the 'update service' boxes of Figure 6)."""

    def __init__(
        self,
        region_name: str,
        coordinator: AllActiveCoordinator,
        sink,  # ReplicatedKV
    ) -> None:
        self.region_name = region_name
        self.coordinator = coordinator
        self.sink = sink
        self.published = 0
        self.suppressed = 0

    def publish(self, key, value, timestamp: float) -> bool:
        """Write to the serving store iff this region is primary."""
        if not self.coordinator.is_primary(self.region_name):
            self.suppressed += 1
            return False
        self.sink.put(self.region_name, key, value, timestamp)
        self.published += 1
        return True
