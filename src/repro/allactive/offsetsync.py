"""Active/passive consumption with cross-region offset sync (Section 6,
Figure 7).

"When uReplicator replicates messages from source cluster to the
destination cluster, it periodically checkpoints the offset mapping from
source to destination in an active-active database.  Meanwhile, an offset
sync job periodically synchronizes the offsets between the two regions for
the active-passive consumers.  So when an active/passive consumer fails
over from one region to another, the consumer can take the latest
synchronized offset and resume the consumption."

The alternative strategies the paper rules out are implemented too, for
the F7 bench: resuming from the *high watermark* skips everything produced
since the failure (data loss), and from the *low watermark* replays the
whole retained log (a huge backlog).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import RegionError
from repro.kafka.cluster import KafkaCluster
from repro.kafka.consumer import GroupCoordinator
from repro.kafka.ureplicator import OffsetMappingStore


class OffsetSyncJob:
    """Periodically translates one group's committed offsets from the
    active region's cluster to the passive region's, via the uReplicator
    mapping checkpoints."""

    def __init__(
        self,
        store: OffsetMappingStore,
        route: str,  # e.g. "regionA-aggregate->regionB-aggregate"
        source: KafkaCluster,
        source_coordinator: GroupCoordinator,
        destination_coordinator: GroupCoordinator,
        group: str,
        topic: str,
    ) -> None:
        self.store = store
        self.route = route
        self.source = source
        self.source_coordinator = source_coordinator
        self.destination_coordinator = destination_coordinator
        self.group = group
        self.topic = topic
        self.syncs = 0

    def sync_once(self) -> dict[int, int]:
        """Translate and commit; returns partition -> synced dest offset."""
        synced: dict[int, int] = {}
        for partition in range(self.source.partition_count(self.topic)):
            committed = self.source_coordinator.committed(
                self.group, self.topic, partition
            )
            if committed is None:
                continue
            translated = self.store.translate(
                self.route, self.topic, partition, committed
            )
            if translated is None:
                continue
            self.destination_coordinator.commit(
                self.group, self.topic, partition, translated
            )
            synced[partition] = translated
        self.syncs += 1
        return synced


@dataclass
class FailoverOutcome:
    """What a consumer experiences after failing over under one strategy."""

    strategy: str  # 'synced' | 'latest' | 'earliest'
    resume_offsets: dict[int, int]
    lost_messages: int  # messages skipped, never processed
    redelivered_messages: int  # messages processed twice


def evaluate_failover(
    strategy: str,
    destination: KafkaCluster,
    destination_coordinator: GroupCoordinator,
    group: str,
    topic: str,
    processed_through: dict[int, int],
) -> FailoverOutcome:
    """Compute loss/redelivery for a failover resume strategy.

    ``processed_through`` is, per destination partition, the destination
    offset equivalent of everything the consumer had actually processed in
    the failed region (ground truth known to the experiment, not to the
    consumer).
    """
    if strategy not in ("synced", "latest", "earliest"):
        raise RegionError(f"unknown failover strategy {strategy!r}")
    resume: dict[int, int] = {}
    lost = 0
    redelivered = 0
    for partition in range(destination.partition_count(topic)):
        truth = processed_through.get(partition, 0)
        if strategy == "latest":
            offset = destination.end_offset(topic, partition)
        elif strategy == "earliest":
            offset = destination.start_offset(topic, partition)
        else:
            committed = destination_coordinator.committed(group, topic, partition)
            offset = (
                committed
                if committed is not None
                else destination.start_offset(topic, partition)
            )
        resume[partition] = offset
        if offset > truth:
            lost += offset - truth
        else:
            redelivered += truth - offset
    return FailoverOutcome(strategy, resume, lost, redelivered)
