"""The deterministic chaos harness (ties the whole paper together).

Production confidence at Uber comes from surviving failures, not from the
happy path: broker loss with leader re-election (Section 4.1), Flink
crash-restore from the last snapshot with Kafka offset rewind (Section
4.2), Pinot server death with peer-to-peer segment recovery (Section
4.3.4), segment-store outages, and full region failover under the
all-active coordinator (Section 6).  :class:`ChaosHarness` scripts those
faults against a :class:`~repro.platform.Platform` on its simulated
clock::

    p = Platform(seed=7).with_kafka().with_pinot()...
    chaos = (
        p.chaos()
        .kill_broker(at=10.0, broker_id=0)
        .restart_broker(at=25.0, broker_id=0)
        .crash_flink_job(at=40.0)
    )
    chaos.expect_no_acked_loss("orders", acked)
    chaos.run(until=120.0)
    report = chaos.report()
    assert report.ok, report.render()

Faults are scheduled as clock timers, so they also fire *inside* retry
backoffs (a produce retrying under a
:class:`~repro.common.retry.RetryPolicy` genuinely observes the broker
coming back mid-policy).  Every fault lands in the fault timeline, and —
when tracing is on — as a ``layer="chaos"`` span on a seed-derived trace
id, so ``Platform.dashboard()`` shows injected faults next to the
latencies they caused.  Same seed, same schedule ⇒ byte-identical
timeline and :class:`~repro.chaos.report.RecoveryReport`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.chaos import faults
from repro.chaos.faults import FaultEvent
from repro.chaos.report import InvariantResult, RecoveryReport
from repro.common.errors import (
    BrokerUnavailableError,
    ChaosError,
    OffsetOutOfRangeError,
)
from repro.common.rng import seeded_rng

#: Invariant checks return (passed, detail) or a bare bool.
InvariantCheck = Callable[[], "tuple[bool, str] | bool"]


class ChaosHarness:
    """Seeded fault scheduler + recovery verifier over one Platform."""

    def __init__(self, platform: Any, seed: int | None = None) -> None:
        self.platform = platform
        self.clock = platform.clock
        self.seed = platform.seed if seed is None else seed
        self.rng = seeded_rng(self.seed, "chaos")
        self.trace_id = f"chaos-{self.seed}"
        self.events: list[FaultEvent] = []
        self._invariants: list[tuple[str, InvariantCheck]] = []
        # Auditors registered via expect_integrity, in order: the
        # determinism gate byte-diffs their full rendered reports.
        self.auditors: list[Any] = []

    # -- recording ----------------------------------------------------------

    def _record(self, kind: str, target: str, detail: str = "") -> FaultEvent:
        event = FaultEvent(self.clock.now(), kind, target, detail)
        self.events.append(event)
        tracer = self.platform.tracer
        if tracer is not None:
            # Instantaneous span: the fault is a point on the timeline the
            # dashboard can correlate with surrounding latency spans.
            tracer.record_span(
                self.trace_id,
                kind,
                "chaos",
                start=event.time,
                end=event.time,
                target=target,
                detail=detail,
            )
        return event

    def at(
        self,
        time: float,
        action: Callable[[], str | None],
        kind: str = faults.CUSTOM,
        target: str = "",
    ) -> "ChaosHarness":
        """Schedule an arbitrary fault/repair; ``action``'s return value
        (if any) becomes the recorded event's detail."""

        def fire() -> None:
            detail = action()
            self._record(kind, target, detail or "")

        self.clock.call_at(time, fire)
        return self

    # -- kafka faults -------------------------------------------------------

    def kill_broker(self, at: float, broker_id: int) -> "ChaosHarness":
        """Broker death: partitions it led re-elect a live leader;
        unreplicated acks=1 records on it are at risk."""

        def action() -> None:
            self.platform.kafka.kill_broker(broker_id)

        return self.at(at, action, faults.KAFKA_KILL_BROKER, f"broker-{broker_id}")

    def restart_broker(self, at: float, broker_id: int) -> "ChaosHarness":
        """Broker return: diverged log suffixes truncate to the common
        prefix with the current leader, then resync."""

        def action() -> None:
            self.platform.kafka.restart_broker(broker_id)

        return self.at(
            at, action, faults.KAFKA_RESTART_BROKER, f"broker-{broker_id}"
        )

    def pause_replication(self, at: float) -> "ChaosHarness":
        """Freeze follower catch-up, widening the acks=1 loss window."""

        def action() -> None:
            self.platform.kafka.pause_replication()

        return self.at(
            at, action, faults.KAFKA_PAUSE_REPLICATION, self.platform.kafka.name
        )

    def resume_replication(self, at: float) -> "ChaosHarness":
        def action() -> None:
            self.platform.kafka.resume_replication()

        return self.at(
            at, action, faults.KAFKA_RESUME_REPLICATION, self.platform.kafka.name
        )

    # -- flink faults -------------------------------------------------------

    def _runtime(self, job: int):
        runtimes = self.platform.runtimes
        if not 0 <= job < len(runtimes):
            raise ChaosError(
                f"no Flink job #{job}; platform has {len(runtimes)} runtime(s)"
            )
        return runtimes[job]

    def checkpoint_flink(self, at: float, job: int = 0) -> "ChaosHarness":
        """Take a barrier-aligned snapshot (the state a later crash
        restores)."""

        def action() -> str:
            checkpoint_id = self._runtime(job).trigger_checkpoint()
            return f"checkpoint {checkpoint_id}"

        return self.at(at, action, faults.FLINK_CHECKPOINT, f"job-{job}")

    def crash_flink_job(self, at: float, job: int = 0) -> "ChaosHarness":
        """Crash mid-window: discard in-flight state, restore operator
        state from the last completed snapshot and rewind the Kafka source
        offsets to it (exactly-once internal state; exactly-once into
        transactional sinks too — their uncommitted 2PC buffers are
        aborted and re-emitted by the rewound sources — while eager sinks
        see at-least-once replay)."""

        def action() -> str:
            runtime = self._runtime(job)
            completed = runtime.completed_checkpoints()
            if not completed:
                raise ChaosError(
                    f"Flink job #{job} crashed with no completed checkpoint "
                    "to restore from; schedule checkpoint_flink() earlier"
                )
            checkpoint_id = completed[-1]
            runtime.restore_from(checkpoint_id)
            return f"restored from checkpoint {checkpoint_id}"

        return self.at(at, action, faults.FLINK_CRASH, f"job-{job}")

    # -- pinot faults -------------------------------------------------------

    def kill_pinot_server(self, at: float, name: str) -> "ChaosHarness":
        def action() -> None:
            self.platform.pinot.kill_server(name)

        return self.at(at, action, faults.PINOT_KILL_SERVER, name)

    def recover_pinot_server(
        self, at: float, failed: str, replacement: str
    ) -> "ChaosHarness":
        """Peer-to-peer recovery: a replacement server re-hosts the dead
        server's sealed segments from live replica peers (store fallback),
        takes over its partitions and re-consumes in-flight rows."""
        from repro.pinot.server import PinotServer

        def action() -> str:
            recovered = self.platform.pinot.recover_server(
                failed, PinotServer(replacement)
            )
            return f"{recovered} segments -> {replacement}"

        return self.at(at, action, faults.PINOT_RECOVER_SERVER, failed)

    # -- storage faults -----------------------------------------------------

    def _store(self, store: Any):
        if isinstance(store, str):
            named = {
                "segments": self.platform.segment_store,
                "checkpoints": self.platform.checkpoint_store,
            }
            if store not in named:
                raise ChaosError(
                    f"unknown store {store!r}; use 'segments', 'checkpoints' "
                    "or pass a BlobStore"
                )
            return named[store]
        return store

    def blob_outage(
        self, at: float, until: float, store: Any = "segments"
    ) -> "ChaosHarness":
        """Blob store down between ``at`` and ``until``: puts/gets raise
        ``StorageUnavailableError``; backup queues hold, P2P ingestion
        continues, centralized ingestion blocks."""
        target = self._store(store)
        if until <= at:
            raise ChaosError(f"outage must end after it starts: {at} .. {until}")
        self.at(
            at,
            lambda: target.set_available(False),
            faults.STORAGE_OUTAGE,
            target.name,
        )
        return self.at(
            until,
            lambda: target.set_available(True),
            faults.STORAGE_RESTORE,
            target.name,
        )

    # -- multi-region faults ------------------------------------------------

    def fail_region(
        self, at: float, coordinator: Any, region: str
    ) -> "ChaosHarness":
        """Region disaster: the all-active coordinator re-elects a healthy
        primary and flips the update services (Section 6)."""

        def action() -> str:
            primary = coordinator.fail_region(region)
            return f"primary -> {primary}"

        return self.at(at, action, faults.REGION_FAIL, region)

    def recover_region(
        self, at: float, coordinator: Any, region: str
    ) -> "ChaosHarness":
        def action() -> None:
            coordinator.recover_region(region)

        return self.at(at, action, faults.REGION_RECOVER, region)

    # -- driving ------------------------------------------------------------

    def run(self, until: float, dt: float = 1.0) -> "ChaosHarness":
        """Drive the platform to simulated time ``until``, firing every
        scheduled fault on the way (they trigger inside ``clock.advance``,
        interleaved with replication, Flink rounds and Pinot ingestion)."""
        while self.clock.now() < until - 1e-9:
            self.platform.step(min(dt, until - self.clock.now()))
        return self

    # -- invariants ---------------------------------------------------------

    def add_invariant(self, name: str, check: InvariantCheck) -> "ChaosHarness":
        """Register a recovery invariant, evaluated (in order) by
        :meth:`report`; ``check`` returns (passed, detail) or a bool."""
        self._invariants.append((name, check))
        return self

    def expect_no_acked_loss(
        self,
        topic: str,
        acked: list,
        name: str = "no-acked-loss",
    ) -> "ChaosHarness":
        """Every acknowledged record must still be readable after recovery.

        ``acked`` holds ``(partition, offset)`` pairs — optionally
        ``(partition, offset, uid)`` to also catch an offset that survived
        but was silently *replaced* by a diverged entry.  This is the
        acks=all zero-loss guarantee (Section 9.2); under acks=1 use it
        with the predicted-surviving subset.
        """

        def check() -> tuple[bool, str]:
            kafka = self.platform.kafka
            lost = []
            for item in sorted(set(tuple(a) for a in acked)):
                partition, offset = item[0], item[1]
                uid = item[2] if len(item) > 2 else None
                try:
                    entries = kafka.fetch(topic, partition, offset, 1)
                except (BrokerUnavailableError, OffsetOutOfRangeError):
                    lost.append((partition, offset))
                    continue
                if not entries or entries[0].offset != offset:
                    lost.append((partition, offset))
                elif uid is not None and entries[0].record.headers.get("uid") != uid:
                    lost.append((partition, offset))
            if lost:
                detail = f"lost {len(lost)}/{len(acked)}: {lost[:5]}"
            else:
                detail = f"{len(acked)} acked records all present"
            return not lost, detail

        return self.add_invariant(name, check)

    def expect_equal(
        self, name: str, actual: Callable[[], Any], expected: Any
    ) -> "ChaosHarness":
        """Post-recovery state must equal the fault-free expectation — the
        exactly-once check: window sums after a crash-restore must match
        the sums computed directly from the input."""

        def check() -> tuple[bool, str]:
            value = actual()
            if value == expected:
                return True, f"matches expectation ({_brief(expected)})"
            return False, f"expected {_brief(expected)}, got {_brief(value)}"

        return self.add_invariant(name, check)

    def expect_integrity(
        self, auditor: Any, name: str | None = None
    ) -> "ChaosHarness":
        """After the fault timeline settles, the cross-layer integrity
        audit (Section 9.4) must come back clean: every expected record
        present exactly once, in per-key order, at every registered stage
        (Kafka topic logs, Pinot table scans).  The auditor's scans run
        lazily at :meth:`report` time, so register this before ``run()``.
        The full :class:`~repro.audit.report.IntegrityReport` stays on
        ``auditor.last_report`` for rendering/diffing."""

        def check() -> tuple[bool, str]:
            report = auditor.reconcile()
            return report.ok, report.summary()

        self.auditors.append(auditor)
        return self.add_invariant(name or f"integrity:{auditor.name}", check)

    def expect_freshness(
        self,
        table: str,
        target_seconds: float,
        sentinels: int = 3,
        timeout: float = 120.0,
        name: str | None = None,
    ) -> "ChaosHarness":
        """After the dust settles the freshness SLO must be re-attained:
        sentinel rows produced post-run must become queryable within
        ``target_seconds``.  Samples feed the platform's SLO monitor, so
        the dashboard shows the post-chaos freshness next to the fault
        spans."""

        def check() -> tuple[bool, str]:
            probe = self.platform.freshness_probe(table)
            try:
                report = probe.run(sentinels=sentinels, timeout=timeout)
            except TimeoutError as exc:
                return False, str(exc)
            for sample in report.samples:
                self.platform.slo_monitor.observe(table, "freshness", sample)
            return (
                report.max <= target_seconds,
                f"max freshness {report.max:.2f}s vs target {target_seconds:.2f}s",
            )

        return self.add_invariant(name or f"freshness-slo:{table}", check)

    # -- verdict ------------------------------------------------------------

    def report(self) -> RecoveryReport:
        """Evaluate every invariant (in registration order) and return the
        run's :class:`RecoveryReport`."""
        results = []
        for name, check in self._invariants:
            outcome = check()
            if isinstance(outcome, tuple):
                passed, detail = outcome
            else:
                passed, detail = bool(outcome), ""
            results.append(InvariantResult(name, passed, detail))
        return RecoveryReport(self.seed, tuple(self.events), tuple(results))


def _brief(value: Any, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
