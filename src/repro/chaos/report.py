"""Recovery verification: did the platform heal, and did it heal *right*?

A chaos run without assertions is a demo, not a test.  The
:class:`RecoveryReport` pairs the deterministic fault timeline with the
outcome of every registered invariant — no acked-record loss under
``acks=all``, exactly-once window sums after a crash-restore, freshness
SLO re-attained within budget — and renders both as one fixed-format text
block.  Two runs with the same seed produce byte-identical reports, so a
report diff IS a determinism regression test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.faults import FaultEvent


@dataclass(frozen=True, slots=True)
class InvariantResult:
    """Outcome of one recovery invariant, evaluated after the run."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


@dataclass(frozen=True)
class RecoveryReport:
    """The verdict of one chaos run: timeline + invariant outcomes."""

    seed: int
    events: tuple[FaultEvent, ...]
    invariants: tuple[InvariantResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.passed for result in self.invariants)

    @property
    def failures(self) -> tuple[InvariantResult, ...]:
        return tuple(r for r in self.invariants if not r.passed)

    def render(self) -> str:
        passed = sum(1 for r in self.invariants if r.passed)
        lines = [
            f"chaos seed {self.seed}: {len(self.events)} fault events, "
            f"{passed}/{len(self.invariants)} invariants passed",
            "timeline:",
        ]
        lines.extend(f"  {event.render()}" for event in self.events)
        lines.append("invariants:")
        lines.extend(f"  {result.render()}" for result in self.invariants)
        return "\n".join(lines)
