"""Deterministic chaos engineering for the simulated platform.

Scripted, seeded fault injection (broker death, replication stalls,
blob-store outages, Flink crash-restore, Pinot server loss, region
failover) with recovery verification — see :mod:`repro.chaos.harness`.
"""

from repro.chaos.faults import FaultEvent
from repro.chaos.harness import ChaosHarness
from repro.chaos.report import InvariantResult, RecoveryReport

__all__ = [
    "ChaosHarness",
    "FaultEvent",
    "InvariantResult",
    "RecoveryReport",
]
