"""Fault taxonomy for the chaos harness.

Every injected fault (and every repair) is recorded as a
:class:`FaultEvent` the moment it fires, giving each chaos run a flat,
append-only timeline.  Because the harness schedules faults on the shared
:class:`~repro.common.clock.SimulatedClock` and draws jitter from a seeded
RNG stream, the same seed replays the same timeline byte-for-byte — the
property the recovery invariants lean on.

Kind strings are namespaced ``layer.action`` so the timeline reads like a
cross-layer trace (``kafka.kill_broker``, ``pinot.kill_server``,
``flink.crash``, ``storage.outage``, ``region.fail`` ...).
"""

from __future__ import annotations

from dataclasses import dataclass

# Kafka faults (Section 4.1 primitives under failure)
KAFKA_KILL_BROKER = "kafka.kill_broker"
KAFKA_RESTART_BROKER = "kafka.restart_broker"
KAFKA_PAUSE_REPLICATION = "kafka.pause_replication"
KAFKA_RESUME_REPLICATION = "kafka.resume_replication"

# Flink faults (Section 4.2: checkpoint/restore)
FLINK_CHECKPOINT = "flink.checkpoint"
FLINK_CRASH = "flink.crash"

# Pinot faults (Section 4.3.4: peer-to-peer segment recovery)
PINOT_KILL_SERVER = "pinot.kill_server"
PINOT_RECOVER_SERVER = "pinot.recover_server"

# Blob-store faults (segment store / checkpoint store outages)
STORAGE_OUTAGE = "storage.outage"
STORAGE_RESTORE = "storage.restore"

# Multi-region faults (Section 6: all-active failover)
REGION_FAIL = "region.fail"
REGION_RECOVER = "region.recover"

CUSTOM = "custom"


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One fault or repair, recorded at the instant it fired."""

    time: float  # simulated clock at fire time
    kind: str  # one of the namespaced kinds above
    target: str  # broker id, server name, store name, region, ...
    detail: str = ""

    def render(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:10.2f}  {self.kind:<26} {self.target}{suffix}"
