"""repro: a laptop-scale reproduction of "Real-time Data Infrastructure at
Uber" (Fu & Soman, SIGMOD 2021).

The package mirrors the paper's Figure 2/Figure 3 architecture:

* ``repro.kafka``    — streaming storage (+ federation, DLQ, consumer
  proxy, uReplicator, Chaperone, self-serve admin)
* ``repro.flink``    — stream processing (+ job server, autoscaler,
  watchdog, Storm/Spark baselines)
* ``repro.pinot``    — realtime OLAP (+ upserts, star-tree, peer-to-peer
  segment recovery, ES/Druid baselines)
* ``repro.storage``  — blob store, HDFS simulation, columnar files, Hive
* ``repro.sql``      — the SQL dialect, FlinkSQL compiler, Presto engine
* ``repro.metadata`` — schema registry, catalog, lineage
* ``repro.allactive``— multi-region: all-active coordination, offset sync
* ``repro.backfill`` — Kappa+, Kafka replay, Lambda baseline
* ``repro.usecases`` — Section 5's four representative applications
* ``repro.workloads``— seeded synthetic workload generators
* ``repro.observability`` — cross-layer tracing, freshness probes, SLOs
* ``repro.chaos``    — deterministic fault injection + recovery verification
* ``repro.controlplane`` — SLO-tiered admission/shedding, cross-layer
  autoscaling, million-user surge workloads
* ``repro.platform`` — the ``Platform`` facade wiring all of the above

The names below are the blessed entry points; deeper imports remain
available for specialised use.
"""

from repro.chaos.harness import ChaosHarness
from repro.chaos.report import RecoveryReport
from repro.controlplane import AdmissionController, ControlPlane, SurgeWorkload
from repro.common.clock import SimulatedClock, SystemClock
from repro.common.metrics import MetricsRegistry
from repro.common.records import Record
from repro.common.retry import RetryPolicy
from repro.flink.graph import StreamEnvironment
from repro.flink.runtime import JobRuntime
from repro.kafka.cluster import KafkaCluster, TopicConfig
from repro.kafka.consumer import Consumer, GroupCoordinator
from repro.kafka.producer import Producer
from repro.metadata.schema import Field, FieldRole, FieldType, Schema
from repro.observability.freshness import (
    FreshnessProbe,
    FreshnessReport,
    PinotFreshnessProbe,
)
from repro.observability.slo import SloMonitor, SloTarget
from repro.observability.trace import Span, SpanCollector, TraceContext
from repro.pinot.broker import PinotBroker
from repro.pinot.controller import PinotController
from repro.pinot.recovery import CentralizedBackup, PeerToPeerBackup
from repro.pinot.segment import IndexConfig
from repro.pinot.server import PinotServer
from repro.pinot.table import TableConfig
from repro.platform import Platform
from repro.sql.flinksql import FlinkSqlCompiler, StreamTableDef
from repro.sql.presto.connector import HiveConnector, MemoryConnector, PinotConnector
from repro.sql.presto.engine import PrestoEngine
from repro.storage.blobstore import BlobStore

__version__ = "1.2.0"

__all__ = [
    # facade
    "Platform",
    # shared plumbing
    "SimulatedClock",
    "SystemClock",
    "MetricsRegistry",
    "Record",
    "BlobStore",
    # streaming storage
    "KafkaCluster",
    "TopicConfig",
    "Producer",
    "Consumer",
    "GroupCoordinator",
    # stream processing
    "StreamEnvironment",
    "JobRuntime",
    "FlinkSqlCompiler",
    "StreamTableDef",
    # OLAP
    "PinotController",
    "PinotBroker",
    "PinotServer",
    "TableConfig",
    "IndexConfig",
    "PeerToPeerBackup",
    "CentralizedBackup",
    # federated SQL
    "PrestoEngine",
    "PinotConnector",
    "HiveConnector",
    "MemoryConnector",
    # metadata
    "Schema",
    "Field",
    "FieldType",
    "FieldRole",
    # observability
    "SpanCollector",
    "TraceContext",
    "Span",
    "FreshnessProbe",
    "PinotFreshnessProbe",
    "FreshnessReport",
    "SloMonitor",
    "SloTarget",
    # chaos
    "ChaosHarness",
    "RecoveryReport",
    "RetryPolicy",
    # control plane
    "ControlPlane",
    "AdmissionController",
    "SurgeWorkload",
]
