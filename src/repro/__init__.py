"""repro: a laptop-scale reproduction of "Real-time Data Infrastructure at
Uber" (Fu & Soman, SIGMOD 2021).

The package mirrors the paper's Figure 2/Figure 3 architecture:

* ``repro.kafka``    — streaming storage (+ federation, DLQ, consumer
  proxy, uReplicator, Chaperone, self-serve admin)
* ``repro.flink``    — stream processing (+ job server, autoscaler,
  watchdog, Storm/Spark baselines)
* ``repro.pinot``    — realtime OLAP (+ upserts, star-tree, peer-to-peer
  segment recovery, ES/Druid baselines)
* ``repro.storage``  — blob store, HDFS simulation, columnar files, Hive
* ``repro.sql``      — the SQL dialect, FlinkSQL compiler, Presto engine
* ``repro.metadata`` — schema registry, catalog, lineage
* ``repro.allactive``— multi-region: all-active coordination, offset sync
* ``repro.backfill`` — Kappa+, Kafka replay, Lambda baseline
* ``repro.usecases`` — Section 5's four representative applications
* ``repro.workloads``— seeded synthetic workload generators
"""

__version__ = "1.0.0"
