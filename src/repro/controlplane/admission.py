"""SLO-tiered query admission control and load shedding (§3, §8, §9.3).

The paper's multi-tenancy story ranks use cases by business criticality:
surge pricing must never miss its window, dashboards should stay fresh,
ad-hoc exploration is best-effort.  When measured latency drifts toward
an SLO violation, the platform sheds the *lowest* tier first and gives
every tier a rate budget so no tenant can starve the others (§9.3's
chargeback becomes §3's cost control under pressure).

Mechanics, all deterministic on the simulated clock:

* **Tiers** come from the Table 1 use cases: :data:`TIER_ORDER` ranks
  them, tier 0 highest.  Unknown use cases land in the lowest tier.
* **Token buckets** cap each tier's admitted rate (burst + refill); a
  tier over budget is shed with reason ``rate-limit`` regardless of SLO
  headroom.
* **Reactive shedding** (slow loop): the controller watches the p99 of
  the *top* tier over a sliding window of completed queries.  When p99
  crosses ``guard_fraction`` of the tier's target the shed level rises
  (one more tier from the bottom is rejected); when it falls below
  ``release_fraction`` and stays there, the level steps back down.
  Level changes are rate-limited by ``hold_s`` (hysteresis), so an
  oscillating p99 cannot flap the gate.
* **Pressure shedding** (fast loop): completed-query p99 is a trailing
  signal — under a step surge the queue jams seconds before the first
  slow completion reports back.  An optional ``pressure`` probe (queued
  seconds per worker, from :class:`~repro.controlplane.queueing.
  QueryQueue`) is read at every admission; crossing
  ``pressure_levels[i]`` forces the effective shed level to at least
  ``i + 1`` *immediately*, bounding how much queue wait the protected
  tier can ever sit behind.

Every shed and every level change lands in the shared
:class:`DecisionLog`; admission decisions only delay or reject work —
the admitted-query results are byte-identical to an unthrottled run
(property-tested in ``tests/property/test_admission_equivalence.py``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.common.metrics import MetricsRegistry
from repro.common.perf import PERF
from repro.controlplane.workload import QueryRequest
from repro.observability.slo import TABLE1_SLOS, SloTarget

#: Use cases ranked by shedding priority: index 0 is protected longest,
#: the last entry is shed first.  The order follows the paper's §5
#: criticality narrative (pricing > operational dashboards > attribution
#: > ad-hoc analytics).
TIER_ORDER: tuple[str, ...] = (
    "surge_pricing",
    "eats_dashboard",
    "ads_attribution",
    "exploration",
)


def tier_of(use_case: str) -> int:
    """Tier index of a use case; unknown use cases are lowest tier."""
    try:
        return TIER_ORDER.index(use_case)
    except ValueError:
        return len(TIER_ORDER) - 1


def _table1_target(use_case: str) -> SloTarget | None:
    for target in TABLE1_SLOS:
        if target.use_case == use_case:
            return target
    return None


def _query_latency_target(use_case: str, seconds: float, pct: float) -> SloTarget:
    base = _table1_target(use_case)
    description = base.description if base is not None else ""
    return SloTarget(use_case, "query_latency", pct, seconds, description)


#: Per-tier interactive query-latency targets.  ``exploration`` carries
#: its Table 1 number verbatim (p95 query_latency <= 5s); the other use
#: cases only have freshness/e2e targets in Table 1, so their serving
#: latency gets a concrete stand-in scaled to its band: the tighter the
#: freshness budget, the tighter the query target.
TIER_QUERY_SLOS: tuple[SloTarget, ...] = (
    _query_latency_target("surge_pricing", 1.5, 99),
    _query_latency_target("eats_dashboard", 2.5, 99),
    _query_latency_target("ads_attribution", 4.0, 99),
    next(t for t in TABLE1_SLOS if t.use_case == "exploration"),
)


class DecisionLog:
    """Append-only, byte-stable record of shed and scale decisions.

    Shared by the admission controller and the cross-layer scaler so one
    rendering shows the whole control plane's behaviour in order.  Same
    seed => byte-identical ``render()`` output is a CI gate.
    """

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._seq = 0

    def record(
        self, t: float, source: str, subject: str, action: str, detail: str
    ) -> None:
        self._seq += 1
        self._lines.append(
            f"{self._seq:06d} t={t:012.3f} {source:<9} {action:<12} "
            f"{subject} :: {detail}"
        )

    def __len__(self) -> int:
        return len(self._lines)

    def render(self) -> str:
        header = f"decision log ({len(self._lines)} entries)"
        return "\n".join([header] + self._lines)


@dataclass
class TokenBucket:
    """Deterministic token bucket on externally supplied timestamps."""

    rate: float  # tokens per second
    burst: float
    level: float = field(init=False)
    _last: float = field(init=False, default=0.0)
    _primed: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self.level = self.burst

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        if self._primed:
            self.level = min(self.burst, self.level + (now - self._last) * self.rate)
        self._last = now
        self._primed = True
        if self.level >= amount:
            self.level -= amount
            return True
        return False


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    tier: int
    use_case: str
    reason: str


class AdmissionController:
    """Tiered token-bucket admission with p99-reactive load shedding."""

    def __init__(
        self,
        targets: tuple[SloTarget, ...] = TIER_QUERY_SLOS,
        tier_rates: dict[str, float] | None = None,
        tier_burst: float = 40.0,
        window: int = 128,
        min_samples: int = 24,
        guard_fraction: float = 0.75,
        release_fraction: float = 0.4,
        hold_s: float = 8.0,
        pressure: "Callable[[], float] | None" = None,
        pressure_levels: tuple[float, ...] = (),
        log: DecisionLog | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.targets = {t.use_case: t for t in targets}
        self.log = log if log is not None else DecisionLog()
        self.metrics = metrics or MetricsRegistry("controlplane")
        self.guard_fraction = guard_fraction
        self.release_fraction = release_fraction
        self.hold_s = hold_s
        self.min_samples = min_samples
        self.pressure = pressure
        self.pressure_levels = tuple(pressure_levels)
        self._buckets = {
            use_case: TokenBucket(rate=rate, burst=tier_burst)
            for use_case, rate in (tier_rates or {}).items()
        }
        self._latency_window: deque[float] = deque(maxlen=window)
        self.shed_level = 0
        self._last_level_change = -math.inf
        self.admitted = 0
        self.shed = 0

    # -- feedback ------------------------------------------------------------

    @property
    def guarded_use_case(self) -> str:
        """The top-tier use case whose p99 drives reactive shedding."""
        return min(self.targets, key=tier_of)

    def observe_latency(self, use_case: str, latency: float, now: float) -> None:
        """Feed one completed query's end-to-end latency."""
        if PERF.enabled:
            PERF.inc("controlplane.latency_observations")
        if use_case != self.guarded_use_case:
            return
        self._latency_window.append(latency)
        self._reevaluate(now)

    def _window_p99(self) -> float | None:
        if len(self._latency_window) < self.min_samples:
            return None
        ordered = sorted(self._latency_window)
        rank = max(1, math.ceil(0.99 * len(ordered)))
        return ordered[rank - 1]

    def _reevaluate(self, now: float) -> None:
        if now - self._last_level_change < self.hold_s:
            return
        p99 = self._window_p99()
        if p99 is None:
            return
        target = self.targets[self.guarded_use_case].target_seconds
        max_level = len(TIER_ORDER) - 1  # never shed the top tier
        if p99 > self.guard_fraction * target and self.shed_level < max_level:
            self.shed_level += 1
            self._last_level_change = now
            self.metrics.counter("controlplane.shed_level_raises").inc()
            self.log.record(
                now,
                "admission",
                self.guarded_use_case,
                "shed_raise",
                f"p99 {p99:.3f}s > {self.guard_fraction:.2f}x target "
                f"{target:.3f}s; shed_level -> {self.shed_level}",
            )
        elif p99 < self.release_fraction * target and self.shed_level > 0:
            self.shed_level -= 1
            self._last_level_change = now
            self.metrics.counter("controlplane.shed_level_drops").inc()
            self.log.record(
                now,
                "admission",
                self.guarded_use_case,
                "shed_release",
                f"p99 {p99:.3f}s < {self.release_fraction:.2f}x target "
                f"{target:.3f}s; shed_level -> {self.shed_level}",
            )

    # -- admission -----------------------------------------------------------

    def pressure_level(self) -> int:
        """Instantaneous shed level demanded by the queue-pressure probe."""
        if self.pressure is None or not self.pressure_levels:
            return 0
        value = self.pressure()
        level = 0
        for i, threshold in enumerate(self.pressure_levels):
            if value > threshold:
                level = i + 1
        return min(level, len(TIER_ORDER) - 1)

    def admit(self, request: QueryRequest) -> AdmissionDecision:
        """Decide one request at its arrival time."""
        if PERF.enabled:
            PERF.inc("controlplane.admission_checks")
        tier = tier_of(request.use_case)
        now = request.arrival_time
        level = max(self.shed_level, self.pressure_level())
        shed_floor = len(TIER_ORDER) - level
        if tier >= shed_floor:
            return self._shed(
                request,
                tier,
                f"slo-shed level={level} "
                f"(tier {tier} >= floor {shed_floor})",
                now,
            )
        bucket = self._buckets.get(request.use_case)
        if bucket is not None and not bucket.try_take(now):
            return self._shed(request, tier, "rate-limit", now)
        self.admitted += 1
        self.metrics.counter("controlplane.admitted").inc()
        return AdmissionDecision(True, tier, request.use_case, "admitted")

    def _shed(
        self, request: QueryRequest, tier: int, reason: str, now: float
    ) -> AdmissionDecision:
        self.shed += 1
        if PERF.enabled:
            PERF.inc("controlplane.shed_decisions")
        self.metrics.counter("controlplane.shed").inc()
        self.metrics.counter(f"controlplane.shed.tier{tier}").inc()
        self.log.record(
            now, "admission", request.request_id,
            "shed", f"{request.use_case} tier={tier} {reason}",
        )
        return AdmissionDecision(False, tier, request.use_case, reason)
