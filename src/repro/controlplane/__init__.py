"""Million-user control plane: workloads, admission, cross-layer scaling.

The paper's Section 3 requirements — multi-tenant SLO tiers, elastic
scaling, load shedding under surge — concentrated in one package:

* :mod:`~repro.controlplane.workload` — skewed/bursty/diurnal arrival
  streams over millions of distinct users, seeded and deterministic;
* :mod:`~repro.controlplane.admission` — SLO-tiered token-bucket
  admission with p99-reactive and queue-pressure load shedding;
* :mod:`~repro.controlplane.scaler` — one reactive controller scaling
  Kafka partitions, Pinot servers/ingest, Presto workers and Flink jobs
  with per-resource hysteresis;
* :mod:`~repro.controlplane.queueing` — the deterministic queue model
  turning query cost into latency under load;
* :mod:`~repro.controlplane.plane` — the Platform-facing facade;
* :mod:`~repro.controlplane.surge` — the end-to-end surge experiment
  (benched as ``controlplane_surge`` and property-tested for
  admission equivalence).
"""

from repro.controlplane.admission import (
    TIER_ORDER,
    TIER_QUERY_SLOS,
    AdmissionController,
    AdmissionDecision,
    DecisionLog,
    TokenBucket,
    tier_of,
)
from repro.controlplane.plane import ControlPlane
from repro.controlplane.queueing import QueryQueue
from repro.controlplane.scaler import CrossLayerController, ResourcePolicy
from repro.controlplane.surge import SurgeReport, run_surge
from repro.controlplane.workload import (
    DEFAULT_MIX,
    QueryRequest,
    SurgeSpike,
    SurgeWorkload,
    UserPopulation,
)

__all__ = [
    "TIER_ORDER",
    "TIER_QUERY_SLOS",
    "AdmissionController",
    "AdmissionDecision",
    "ControlPlane",
    "CrossLayerController",
    "DEFAULT_MIX",
    "DecisionLog",
    "QueryQueue",
    "QueryRequest",
    "ResourcePolicy",
    "SurgeReport",
    "SurgeSpike",
    "SurgeWorkload",
    "TokenBucket",
    "UserPopulation",
    "run_surge",
    "tier_of",
]
