"""Cross-layer reactive autoscaling (§3 scalability, §4.2.1 generalized).

``repro.flink.autoscaler.AutoScaler`` sizes one layer: Flink jobs.  The
paper's cost story needs the *whole* Figure 3 path to track load — Kafka
partitions expand under write pressure, Pinot ingestion capacity follows
consumer lag, Presto workers follow query queue depth — each with its own
hysteresis so the layers do not resonate.

:class:`CrossLayerController` generalizes the pattern: any resource is a
:class:`ResourcePolicy` — a signal callable, thresholds, a unit range and
an actuator — evaluated on a shared cadence.  Flink jobs plug in through
the existing :class:`AutoScaler` (now keyed per job), so the Flink-
specific heuristics (lag trend, memory pressure, utilization bands) stay
in one place while this controller owns cadence, hysteresis and the
decision log.

Hysteresis per resource:

* a **cooldown** after any action (no follow-up action until
  ``cooldown_s`` sim-seconds have passed — scaling must see its own
  effect before acting again);
* scale-down additionally requires ``stable_evals`` *consecutive*
  below-threshold observations, so one quiet tick never halves capacity.

Every applied action is recorded in the shared
:class:`~repro.controlplane.admission.DecisionLog` — same seed, byte-
identical log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.common.metrics import MetricsRegistry
from repro.common.perf import PERF
from repro.controlplane.admission import DecisionLog
from repro.flink.autoscaler import AutoScaler


@dataclass
class ResourcePolicy:
    """One scalable resource: signal in, unit count out.

    ``signal``   — current load measure (backlog, lag, queued seconds).
    ``current``  — current capacity units (partitions, servers, workers).
    ``apply``    — actuator setting the new unit count.
    Scale-up multiplies units by ``factor`` (ceil) when ``signal >
    scale_up_threshold``; scale-down halves them when ``signal <
    scale_down_threshold`` for ``stable_evals`` consecutive evaluations.
    ``scale_down_threshold=None`` disables scale-down (Kafka partitions
    cannot shrink).
    """

    name: str
    signal: Callable[[], float]
    current: Callable[[], int]
    apply: Callable[[int], None]
    scale_up_threshold: float
    scale_down_threshold: float | None = None
    factor: float = 2.0
    min_units: int = 1
    max_units: int = 64
    cooldown_s: float = 20.0
    stable_evals: int = 3


@dataclass
class _PolicyState:
    last_action_t: float = -math.inf
    below_count: int = 0


@dataclass
class _FlinkJob:
    job_id: str
    lag: Callable[[], float]
    state_bytes: Callable[[], float]
    current: Callable[[], int]
    apply: Callable[[int], None]
    input_rate: Callable[[], float] | None = None
    capacity_per_subtask: float = 5000.0
    # Interval-join buffered state vs its spill budget (>= 1.0 means the
    # join would spill); see JobRuntime.join_spill_pressure.
    spill_pressure: Callable[[], float] | None = None


class CrossLayerController:
    """Evaluates every registered resource policy on one cadence."""

    def __init__(
        self,
        log: DecisionLog | None = None,
        metrics: MetricsRegistry | None = None,
        autoscaler: AutoScaler | None = None,
        flink_cooldown_s: float = 20.0,
    ) -> None:
        self.log = log if log is not None else DecisionLog()
        self.metrics = metrics or MetricsRegistry("controlplane")
        self.autoscaler = autoscaler or AutoScaler()
        self.flink_cooldown_s = flink_cooldown_s
        self._policies: list[ResourcePolicy] = []
        self._policy_state: dict[str, _PolicyState] = {}
        self._flink_jobs: list[_FlinkJob] = []
        self._flink_state: dict[str, _PolicyState] = {}

    # -- registration --------------------------------------------------------

    def add_policy(self, policy: ResourcePolicy) -> None:
        self._policies.append(policy)
        self._policy_state[policy.name] = _PolicyState()

    def add_flink_job(
        self,
        job_id: str,
        lag: Callable[[], float],
        state_bytes: Callable[[], float],
        current: Callable[[], int],
        apply: Callable[[int], None],
        input_rate: Callable[[], float] | None = None,
        capacity_per_subtask: float = 5000.0,
        spill_pressure: Callable[[], float] | None = None,
    ) -> None:
        """Scale a Flink job through the (per-job-keyed) AutoScaler."""
        self._flink_jobs.append(
            _FlinkJob(
                job_id, lag, state_bytes, current, apply,
                input_rate, capacity_per_subtask, spill_pressure,
            )
        )
        self._flink_state[job_id] = _PolicyState()

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now: float) -> int:
        """One control tick; returns the number of actions applied."""
        if PERF.enabled:
            PERF.inc("controlplane.scaler_evals")
        actions = 0
        for policy in self._policies:
            actions += self._evaluate_policy(policy, now)
        for job in self._flink_jobs:
            actions += self._evaluate_flink(job, now)
        return actions

    def _evaluate_policy(self, policy: ResourcePolicy, now: float) -> int:
        state = self._policy_state[policy.name]
        value = policy.signal()
        units = policy.current()
        if now - state.last_action_t < policy.cooldown_s:
            return 0
        if value > policy.scale_up_threshold:
            state.below_count = 0
            new = min(policy.max_units, math.ceil(units * policy.factor))
            if new > units:
                self._apply(policy, state, now, units, new, "scale_up", value)
                return 1
            return 0
        if (
            policy.scale_down_threshold is not None
            and value < policy.scale_down_threshold
        ):
            state.below_count += 1
            if state.below_count >= policy.stable_evals:
                new = max(policy.min_units, units // 2)
                if new < units:
                    self._apply(
                        policy, state, now, units, new, "scale_down", value
                    )
                    return 1
            return 0
        state.below_count = 0
        return 0

    def _apply(
        self,
        policy: ResourcePolicy,
        state: _PolicyState,
        now: float,
        old: int,
        new: int,
        action: str,
        value: float,
    ) -> None:
        policy.apply(new)
        state.last_action_t = now
        state.below_count = 0
        if PERF.enabled:
            PERF.inc("controlplane.scale_actions")
        self.metrics.counter(f"controlplane.{action}").inc()
        self.log.record(
            now, "scaler", policy.name, action,
            f"signal {value:.3f} vs up>{policy.scale_up_threshold:g}"
            + (
                f"/down<{policy.scale_down_threshold:g}"
                if policy.scale_down_threshold is not None
                else ""
            )
            + f"; units {old} -> {new}",
        )

    def _evaluate_flink(self, job: _FlinkJob, now: float) -> int:
        state = self._flink_state[job.job_id]
        if now - state.last_action_t < self.flink_cooldown_s:
            # Still observe the lag so the trend stays per-job continuous.
            self.autoscaler.evaluate(
                parallelism=job.current(),
                source_lag=job.lag(),
                state_bytes=job.state_bytes(),
                input_rate=job.input_rate() if job.input_rate else 0.0,
                capacity_per_subtask=job.capacity_per_subtask,
                job_id=job.job_id,
                spill_pressure=(job.spill_pressure() if job.spill_pressure else 0.0),
            )
            return 0
        units = job.current()
        decision = self.autoscaler.evaluate(
            parallelism=units,
            source_lag=job.lag(),
            state_bytes=job.state_bytes(),
            input_rate=job.input_rate() if job.input_rate else 0.0,
            capacity_per_subtask=job.capacity_per_subtask,
            job_id=job.job_id,
            spill_pressure=job.spill_pressure() if job.spill_pressure else 0.0,
        )
        if decision.action == "hold" or decision.new_parallelism == units:
            return 0
        job.apply(decision.new_parallelism)
        state.last_action_t = now
        if PERF.enabled:
            PERF.inc("controlplane.scale_actions")
        self.metrics.counter(f"controlplane.{decision.action}").inc()
        self.log.record(
            now, "scaler", f"flink.{job.job_id}", decision.action,
            f"{decision.reason}; units {units} -> {decision.new_parallelism}",
        )
        return 1
