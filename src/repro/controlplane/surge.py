"""The million-user surge experiment: the control plane end to end.

One deterministic simulation exercises every control-plane mechanism at
once, against the ablation (``control=False``) that proves each is doing
work:

* a **stable serving table** (``rides``) is fully ingested and sealed
  before the first query, so the *results* of every admitted query are a
  pure function of the request — byte-identical between the controlled
  run and the unthrottled ablation (the admission-equivalence property);
* a **telemetry firehose** (its own topic + Pinot table + Flink
  windowing job) carries the surge's *write* load.  It is never queried
  by the digested workload, so the controller may expand its Kafka
  partitions, boost its ingest slots, add Pinot servers and boost the
  Flink job freely without perturbing query results;
* a :class:`~repro.controlplane.workload.SurgeWorkload` drives millions
  of distinct users through skewed/diurnal arrivals with a spike that
  pushes the serving layer far past capacity;
* admitted queries execute for real (broker scatter/gather or Presto
  over the connector) and flow through **two** queue models.  The
  *reference* queue prices every query by a routing-invariant planning
  estimate (:meth:`PinotBroker.estimate_rows` docs) and drives all
  decision-relevant state — admission pressure, the p99 guard, the
  worker scaler — so sticky routing and every cache are invisible in
  the decision log, byte for byte.  The *serving* queue prices by
  measured cost-model virtual time with sticky per-user worker subsets
  and feeds the per-tier SLO report: that is where locality and scan
  sharing actually show up as lower latency;
* mid-spike **chaos**: a Kafka broker dies (and later restarts) in both
  the controlled run and the ablation, so the controller must scale
  while the write path is degraded.

The returned :class:`SurgeReport` carries per-tier latency percentiles,
per-request result digests and the rendered decision log; the bench
scenario, the property tests and the determinism CI gate all consume it.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field

from repro.common import serde
from repro.common.clock import SimulatedClock
from repro.common.perf import PERF
from repro.common.rng import seeded_rng
from repro.controlplane.admission import (
    TIER_QUERY_SLOS,
    AdmissionController,
    DecisionLog,
)
from repro.controlplane.queueing import QueryQueue
from repro.controlplane.scaler import CrossLayerController, ResourcePolicy
from repro.controlplane.workload import SurgeSpike, SurgeWorkload, UserPopulation

#: Queue-pressure thresholds (queued seconds per worker) for the fast
#: shedding loop: crossing entry ``i`` forces shed level ``i + 1``.
PRESSURE_LEVELS = (0.25, 0.5, 1.0)

DEFAULT_PARAMS = {
    "control": True,
    # serving table
    "records": 6_000,
    "keys": 12,
    "segment_rows": 500,
    # population + arrivals
    "users": 2_000_000,
    "skew": 1.1,
    "base_rps": 10.0,
    "duration": 180.0,
    "spike_start": 60.0,
    "spike_end": 120.0,
    "spike_multiplier": 6.0,
    "param_space": 4096,
    # capacity model
    "workers": 4,
    "max_workers": 32,
    "service_floor_s": 0.02,
    "service_us_scale": 1.5e-4,  # sim seconds per virtual microsecond
    # reference-queue pricing: virtual microseconds per estimated doc
    # (routing- and cache-invariant, so decisions never see stickiness)
    "service_est_us_per_row": 0.55,
    # sticky locality (broker replica choice, stage pinning, queue subsets)
    "sticky": True,
    "queue_subset": 2,
    "queue_spill_s": 0.25,
    # background cadence
    "telemetry_rps_factor": 6.0,
    "eval_interval": 2.0,
    "broker_kill_at": 90.0,
    "broker_restart_at": 125.0,
}


class _NullProbe:
    class _Op:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    def op(self):
        return self._Op()


def _digest(value) -> int:
    """Deterministic checksum of a result structure (bench-compatible)."""
    return int.from_bytes(hashlib.sha256(serde.encode(value)).digest()[:6], "big")


def _rows_digest(rows: list[dict]) -> int:
    return _digest(sorted(tuple(sorted(row.items())) for row in rows))


@dataclass(frozen=True)
class SurgeReport:
    """Everything the bench, the property tests and CI assert on."""

    requests: int
    admitted: int
    shed: int
    scale_actions: int
    sim_s: float
    #: use_case -> {"p": percentile, "latency": observed, "target": s,
    #: "met": bool, "count": n}
    per_tier: dict
    #: request_id -> digest of the admitted query's (sorted) result rows
    query_digests: dict
    decision_log: str
    #: Cache-effectiveness observability (broker result cache per tier,
    #: scan-share, stage artifacts, sticky queue).  Diagnostic only —
    #: like ``per_tier`` it is deliberately outside ``check``, which
    #: covers exactly the state that must not depend on routing policy.
    cache_stats: dict = field(default_factory=dict)

    @property
    def check(self) -> int:
        return _digest(
            [
                self.admitted,
                self.shed,
                sorted(self.query_digests.items()),
                self.decision_log,
            ]
        )

    def tier_met(self, use_case: str) -> bool:
        entry = self.per_tier.get(use_case)
        return bool(entry and entry["count"] and entry["met"])


def _build_rides(params: dict, seed: int, clock, kafka, controller, probe):
    """Seed and fully ingest the stable serving table before the surge."""
    from repro.kafka.cluster import TopicConfig
    from repro.kafka.producer import Producer
    from repro.metadata.schema import Field, FieldRole, FieldType, Schema
    from repro.pinot.segment import IndexConfig
    from repro.pinot.table import TableConfig

    kafka.create_topic(
        "rides", TopicConfig(partitions=4, replication_factor=2)
    )
    producer = Producer(kafka, "rides-service", clock=clock)
    rng = seeded_rng(seed, "controlplane.surge.rides")
    cities = [f"city-{i}" for i in range(params["keys"])]
    schema = Schema(
        "rides",
        (
            Field("city", FieldType.STRING),
            Field("status", FieldType.STRING),
            Field("amount", FieldType.DOUBLE, FieldRole.METRIC),
            Field("ts", FieldType.DOUBLE, FieldRole.TIME),
        ),
    )
    for __ in range(params["records"]):
        clock.advance(0.001)
        row = {
            "city": cities[rng.randrange(len(cities))],
            "status": rng.choice(["ok", "late", "cancelled"]),
            "amount": float(rng.randrange(100)),
            "ts": clock.now(),
        }
        producer.send("rides", row, key=row["city"])
    producer.flush()
    state = controller.create_realtime_table(
        TableConfig(
            "rides",
            schema,
            time_column="ts",
            index_config=IndexConfig(inverted=frozenset({"city"})),
            segment_rows_threshold=params["segment_rows"],
            partition_column="city",
        ),
        kafka,
        "rides",
    )
    while True:
        with probe.op():
            state.ingestion.run_step()
        controller.backup.run_step()
        if state.ingestion.lag() == 0 and not any(
            p.blocked() for p in state.ingestion.partitions.values()
        ):
            break
    return state, cities


def _build_telemetry(params: dict, clock, kafka, controller):
    """The surge's write-side: topic, Pinot table, Flink windowing job."""
    from repro.flink.graph import StreamEnvironment
    from repro.flink.operators import KafkaSource
    from repro.flink.runtime import JobRuntime
    from repro.flink.windows import SumAggregate, TumblingWindows
    from repro.kafka.cluster import TopicConfig
    from repro.metadata.schema import Field, FieldRole, FieldType, Schema
    from repro.pinot.table import TableConfig

    kafka.create_topic(
        "telemetry", TopicConfig(partitions=2, replication_factor=2)
    )
    schema = Schema(
        "telemetry",
        (
            Field("city", FieldType.STRING),
            Field("driver", FieldType.STRING),
            Field("speed", FieldType.DOUBLE, FieldRole.METRIC),
            Field("ts", FieldType.DOUBLE, FieldRole.TIME),
        ),
    )
    state = controller.create_realtime_table(
        TableConfig(
            "telemetry",
            schema,
            time_column="ts",
            segment_rows_threshold=2_000,
        ),
        kafka,
        "telemetry",
    )
    env = StreamEnvironment()
    out: list = []
    env.add_source(
        KafkaSource(kafka, "telemetry", group="surge-cp"), name="telemetry-src"
    ) \
        .key_by(lambda v: v["city"]) \
        .window(TumblingWindows(5.0)) \
        .aggregate(SumAggregate(lambda v: v["speed"])) \
        .sink_to_list(out)
    runtime = JobRuntime(env.build("telemetry-agg"), clock=clock)
    return state, runtime


def _exploration_floor(param: int) -> float:
    """The exploration tier's amount floor for one request param (shared
    with the reference-queue estimate, which must price the same scan)."""
    return ((param >> 4) % 180) / 2.0


def _query_for(request, cities, span_end: float):
    """The deterministic per-tier query template for one request.

    Every template reads only the sealed ``rides`` table and avoids
    row-limit truncation, so the result is a pure function of
    ``(use_case, param)`` — the admission-equivalence invariant.
    """
    from repro.pinot.query import Aggregation, Filter, PinotQuery

    # Filter constants are drawn from *independent* bit slices of the
    # request param: the city from the low bits, the time window from a
    # 64-step grid on bits 5..10 (dashboards round their windows to
    # bucket boundaries).  Distinct users therefore still ask distinct
    # questions — the broker result cache sees a realistic Zipf-skewed
    # hit rate, not the whole surge — while the *predicates* repeat
    # across cities and users, which is precisely the sharing the
    # per-server scan-share cache monetizes under sticky routing.
    wslot = (request.param >> 5) % 64
    city = cities[request.param % len(cities)]
    if request.use_case == "surge_pricing":
        lo = span_end * (0.35 + 0.6 * wslot / 64)
        return PinotQuery(
            table="rides",
            aggregations=[Aggregation("COUNT"), Aggregation("SUM", "amount")],
            filters=[
                Filter("city", "=", city),
                Filter("ts", "BETWEEN", low=lo, high=span_end),
            ],
        )
    if request.use_case == "eats_dashboard":
        return PinotQuery(
            table="rides",
            aggregations=[Aggregation("SUM", "amount"), Aggregation("COUNT")],
            filters=[
                Filter("city", "=", city),
                Filter(
                    "ts", "BETWEEN", low=span_end * 0.7 * wslot / 64, high=span_end
                ),
            ],
            group_by=["status"],
            limit=100,
        )
    if request.use_case == "ads_attribution":
        lo = span_end * 0.85 * wslot / 64
        width = span_end * 0.15
        return PinotQuery(
            table="rides",
            aggregations=[Aggregation("COUNT"), Aggregation("AVG", "amount")],
            filters=[Filter("ts", "BETWEEN", low=lo, high=min(lo + width, span_end))],
        )
    # exploration: federated SQL through Presto (pushdown to the broker).
    floor = _exploration_floor(request.param)
    return (
        f"SELECT city, COUNT(*) AS n, SUM(amount) AS total FROM rides "
        f"WHERE amount >= {floor} GROUP BY city"
    )


def run_surge(params: dict, seed: int, probe=None) -> SurgeReport:
    """Run the surge simulation; see the module docstring."""
    from repro.kafka.cluster import KafkaCluster
    from repro.kafka.producer import Producer
    from repro.observability.slo import SloMonitor
    from repro.pinot.broker import PinotBroker
    from repro.pinot.controller import PinotController
    from repro.pinot.recovery import PeerToPeerBackup
    from repro.pinot.server import PinotServer
    from repro.pinot.query import Filter
    from repro.sql.presto.connector import PinotConnector
    from repro.sql.presto.engine import PrestoEngine
    from repro.storage.blobstore import BlobStore

    merged = dict(DEFAULT_PARAMS)
    merged.update(params)
    params = merged
    probe = probe or _NullProbe()
    control = bool(params["control"])

    clock = SimulatedClock()
    kafka = KafkaCluster("surge", 3, clock=clock)
    controller = PinotController(
        [PinotServer(f"s{i}") for i in range(3)], PeerToPeerBackup(BlobStore())
    )

    was_perf = PERF.enabled
    PERF.enabled = True  # virtual query cost drives the queue's service time
    try:
        rides, cities = _build_rides(params, seed, clock, kafka, controller, probe)
        telemetry, flink = _build_telemetry(params, clock, kafka, controller)
        span_end = clock.now()
        sticky = bool(params["sticky"])
        broker = PinotBroker(controller, clock=clock, sticky=sticky)
        engine = PrestoEngine(
            {"rides": PinotConnector(broker, pushdown="full")},
            clock=clock,
            workers=params["workers"],
            sticky=sticky,
        )
        # Reference queue: estimate-priced, decision-driving (pressure,
        # p99 feedback, worker scaling).  Serving queue: measured-cost,
        # sticky per-user subsets, SLO-report-driving.  See module doc.
        ref_queue = QueryQueue(workers=params["workers"])
        serving_queue = QueryQueue(
            workers=params["workers"],
            sticky=sticky,
            subset_size=params["queue_subset"],
            spill_threshold_s=params["queue_spill_s"],
        )
        log = DecisionLog()
        slo = SloMonitor(TIER_QUERY_SLOS)

        # -- the control plane (absent in the ablation) ---------------------
        now_cell = {"t": 0.0}
        flink_boost = {"units": 1}
        ingest_slots = {"units": 1}
        admission = None
        scaler = None
        if control:
            admission = AdmissionController(
                hold_s=params["eval_interval"],
                pressure=lambda: ref_queue.backlog_per_worker(now_cell["t"]),
                pressure_levels=PRESSURE_LEVELS,
                log=log,
            )
            scaler = CrossLayerController(log=log)
            scaler.add_policy(
                ResourcePolicy(
                    name="presto.workers",
                    signal=lambda: ref_queue.backlog_per_worker(now_cell["t"]),
                    current=lambda: ref_queue.workers,
                    apply=lambda n: (
                        ref_queue.set_workers(n),
                        serving_queue.set_workers(n),
                        setattr(engine.scheduler, "workers", n),
                    ),
                    scale_up_threshold=0.2,
                    scale_down_threshold=0.02,
                    min_units=params["workers"],
                    max_units=params["max_workers"],
                    cooldown_s=2 * params["eval_interval"],
                    stable_evals=4,
                )
            )
            produce_rate = {"last_total": 0.0, "last_t": 0.0}

            def telemetry_rate_per_partition() -> float:
                count = kafka.partition_count("telemetry")
                total = float(
                    sum(kafka.end_offset("telemetry", p) for p in range(count))
                )
                now = now_cell["t"]
                dt = now - produce_rate["last_t"]
                rate = (
                    (total - produce_rate["last_total"]) / dt if dt > 0 else 0.0
                )
                produce_rate["last_total"] = total
                produce_rate["last_t"] = now
                return rate / count

            scaler.add_policy(
                ResourcePolicy(
                    name="kafka.telemetry.partitions",
                    signal=telemetry_rate_per_partition,
                    current=lambda: kafka.partition_count("telemetry"),
                    apply=lambda n: kafka.expand_partitions(
                        "telemetry", n - kafka.partition_count("telemetry")
                    ),
                    scale_up_threshold=30.0,  # records/s per partition
                    scale_down_threshold=None,  # kafka cannot shrink
                    max_units=8,
                    cooldown_s=5 * params["eval_interval"],
                )
            )
            scaler.add_policy(
                ResourcePolicy(
                    name="pinot.telemetry.ingest_slots",
                    signal=lambda: float(telemetry.ingestion.lag()),
                    current=lambda: ingest_slots["units"],
                    apply=lambda n: ingest_slots.update(units=n),
                    scale_up_threshold=200.0,
                    scale_down_threshold=20.0,
                    max_units=8,
                    cooldown_s=2 * params["eval_interval"],
                    stable_evals=4,
                )
            )
            pinot_pool = {"target": len(controller.servers)}

            def grow_pinot_pool(n: int) -> None:
                while len(controller.servers) < n:
                    controller.add_server(
                        PinotServer(f"s-auto-{len(controller.servers)}")
                    )
                pinot_pool["target"] = n

            scaler.add_policy(
                ResourcePolicy(
                    name="pinot.servers",
                    signal=lambda: float(telemetry.ingestion.lag()),
                    current=lambda: pinot_pool["target"],
                    scale_up_threshold=800.0,
                    scale_down_threshold=None,  # joins are sticky here
                    apply=grow_pinot_pool,
                    max_units=6,
                    cooldown_s=5 * params["eval_interval"],
                )
            )
            scaler.add_flink_job(
                "telemetry-agg",
                lag=lambda: float(flink.total_source_lag()),
                state_bytes=lambda: float(flink.total_state_bytes()),
                current=lambda: flink_boost["units"],
                apply=lambda n: flink_boost.update(units=n),
            )
            scaler.autoscaler.scale_up_lag_threshold = 300
            scaler.flink_cooldown_s = 2 * params["eval_interval"]

        # -- the surge ------------------------------------------------------
        workload = SurgeWorkload(
            seed=seed,
            population=UserPopulation(params["users"], skew=params["skew"]),
            base_rps=params["base_rps"],
            duration=params["duration"],
            spike=SurgeSpike(
                params["spike_start"],
                params["spike_end"],
                params["spike_multiplier"],
            ),
            param_space=params["param_space"],
        )
        telemetry_producer = Producer(kafka, "telemetry-service", clock=clock)
        telemetry_rng = seeded_rng(seed, "controlplane.surge.telemetry")
        start = clock.now()
        next_bg = 0.0
        next_eval = params["eval_interval"]
        killed = restarted = False
        completions: list[tuple[float, int, str, float]] = []
        ref_completions: list[tuple[float, int, str, float]] = []
        digests: dict[str, int] = {}
        tier_cache: dict[str, list[int]] = {}  # tier -> [hits, lookups]
        requests = admitted = shed = 0
        seq = 0
        scale_actions = {"n": 0}

        def background_tick(t: float) -> None:
            nonlocal killed, restarted, next_eval
            # surge telemetry: the write load tracks the arrival intensity
            count = int(
                workload.rate(t) * params["telemetry_rps_factor"]
            )
            for __ in range(count):
                city = cities[telemetry_rng.randrange(len(cities))]
                telemetry_producer.send(
                    "telemetry",
                    {
                        "city": city,
                        "driver": f"d-{telemetry_rng.randrange(100_000):06d}",
                        "speed": float(telemetry_rng.randrange(140)),
                        "ts": clock.now(),
                    },
                    key=city,
                )
            telemetry_producer.flush()
            kafka.replicate()
            if not killed and t >= params["broker_kill_at"]:
                kafka.kill_broker(1)
                killed = True
            if killed and not restarted and t >= params["broker_restart_at"]:
                kafka.restart_broker(1)
                restarted = True
            telemetry.ingestion.run_step(
                max_records_per_partition=100 * ingest_slots["units"]
            )
            controller.backup.run_step()
            flink.run_rounds(flink_boost["units"], budget_per_task=200)
            if control and t >= next_eval:
                now_cell["t"] = t
                scale_actions["n"] += scaler.evaluate(t)
                next_eval += params["eval_interval"]

        def drain_completions(upto: float) -> None:
            # Serving completions (measured, sticky) -> the SLO report;
            # reference completions (estimated, routing-invariant) -> the
            # admission p99 guard, so shed decisions can't see routing.
            while completions and completions[0][0] <= upto:
                __, __, use_case, latency = heapq.heappop(completions)
                target = next(
                    s for s in TIER_QUERY_SLOS if s.use_case == use_case
                )
                slo.observe(use_case, target.metric, latency)
            while ref_completions and ref_completions[0][0] <= upto:
                done_t, __, use_case, latency = heapq.heappop(ref_completions)
                if admission is not None:
                    admission.observe_latency(use_case, latency, done_t)

        for request in workload.requests():
            t = request.arrival_time
            while next_bg <= t:
                clock.advance(start + next_bg - clock.now())
                background_tick(next_bg)
                next_bg += 1.0
            drain_completions(t)
            requests += 1
            now_cell["t"] = t
            if admission is not None and not admission.admit(request).admitted:
                shed += 1
                continue
            admitted += 1
            query = _query_for(request, cities, span_end)
            # Reference price: planning-time cardinality bound, identical
            # whatever the routing policy or cache state.  The exploration
            # SQL's only broker-visible predicate is its amount floor.
            if isinstance(query, str):
                est_filters = [
                    Filter("amount", ">=", _exploration_floor(request.param))
                ]
            else:
                est_filters = list(query.filters)
            with probe.op():
                est_docs, __ = broker.estimate_rows("rides", est_filters)
            est_service_s = (
                params["service_floor_s"]
                + est_docs
                * params["service_est_us_per_row"]
                * params["service_us_scale"]
            )
            hits0 = PERF.counts.get("pinot.cache_hits", 0)
            miss0 = PERF.counts.get("pinot.cache_misses", 0)
            before = _virtual_cost()
            with probe.op():
                if isinstance(query, str):
                    rows = engine.execute(query).rows
                else:
                    rows = broker.execute(query).rows
            cost_us = _virtual_cost() - before
            tier = tier_cache.setdefault(request.use_case, [0, 0])
            delta_hits = PERF.counts.get("pinot.cache_hits", 0) - hits0
            tier[0] += delta_hits
            tier[1] += delta_hits + (
                PERF.counts.get("pinot.cache_misses", 0) - miss0
            )
            service_s = (
                params["service_floor_s"]
                + cost_us * params["service_us_scale"]
            )
            seq += 1
            __, ref_completion = ref_queue.submit(t, est_service_s)
            heapq.heappush(
                ref_completions,
                (ref_completion, seq, request.use_case, ref_completion - t),
            )
            __, completion = serving_queue.submit(
                t, service_s, key=request.user_id, tier=request.use_case
            )
            heapq.heappush(
                completions, (completion, seq, request.use_case, completion - t)
            )
            digests[request.request_id] = _rows_digest(rows)
        while next_bg <= params["duration"]:
            clock.advance(start + next_bg - clock.now())
            background_tick(next_bg)
            next_bg += 1.0
        drain_completions(float("inf"))
    finally:
        PERF.enabled = was_perf

    per_tier = {}
    for ev in slo.evaluate():
        per_tier[ev.target.use_case] = {
            "p": ev.target.percentile,
            "latency": ev.observed,
            "target": ev.target.target_seconds,
            "met": bool(ev.met),
            "count": ev.sample_count,
        }

    def _rate(hits: int, lookups: int) -> float:
        return hits / lookups if lookups else 0.0

    broker_hits = sum(v[0] for v in tier_cache.values())
    broker_lookups = sum(v[1] for v in tier_cache.values())
    scan_hits = sum(s.scan_cache.hits for s in controller.servers)
    scan_misses = sum(s.scan_cache.misses for s in controller.servers)
    stage_stats = engine.scheduler.artifact_stats()
    cache_stats = {
        "broker": {
            "hits": broker_hits,
            "lookups": broker_lookups,
            "hit_rate": _rate(broker_hits, broker_lookups),
            "per_tier": {
                tier: {"hits": h, "lookups": n, "hit_rate": _rate(h, n)}
                for tier, (h, n) in sorted(tier_cache.items())
            },
        },
        "scan_share": {
            "hits": scan_hits,
            "misses": scan_misses,
            "hit_rate": _rate(scan_hits, scan_hits + scan_misses),
            "docs_served": sum(
                s.scan_cache.docs_served for s in controller.servers
            ),
            "entries": sum(
                s.scan_cache.entry_count() for s in controller.servers
            ),
        },
        "stage_artifacts": {
            **stage_stats,
            "hit_rate": _rate(
                stage_stats["hits"], stage_stats["hits"] + stage_stats["misses"]
            ),
        },
        "queue": {
            "sticky_submits": serving_queue.sticky_submits,
            "spills": serving_queue.spills,
        },
    }
    return SurgeReport(
        requests=requests,
        admitted=admitted,
        shed=shed,
        scale_actions=scale_actions["n"],
        sim_s=clock.now(),
        per_tier=per_tier,
        query_digests=digests,
        decision_log=log.render(),
        cache_stats=cache_stats,
    )


def _virtual_cost() -> float:
    from repro.bench.costmodel import virtual_us

    return virtual_us(PERF.counts)
