"""Million-user query workload generators (paper Section 3, Table 1).

The paper's scalability requirement is not "many records" but "many
*users*": the platform serves millions of riders, drivers, restaurant
operators and analysts whose demand is **skewed** (a small fraction of
users generates most traffic), **bursty** (a marketing push or a storm
multiplies load for minutes) and **diurnal** (traffic follows the day
cycle).  The generators here produce that shape deterministically from a
seed, so every control-plane experiment replays byte-identically.

:class:`UserPopulation` spans millions of *distinct* user ids without
holding per-user state: a Zipf distribution over a few thousand buckets
picks the activity band, then a uniform draw picks the user inside it.
The head buckets are narrow (heavy individual users) and the tail buckets
wide (the long tail of occasional users), preserving the head-heavy
traffic shape while memory stays O(buckets).

:class:`SurgeWorkload` turns the population into a timed arrival stream
of :class:`QueryRequest` objects: a Poisson process whose intensity is
the product of a diurnal carrier wave and a surge-spike multiplier, with
each request assigned a Table-1 use case from a weighted mix.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import seeded_rng

#: Default per-request use-case mix: most traffic is interactive
#: dashboards and ad-hoc exploration; the ops-critical tiers are smaller.
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("surge_pricing", 0.15),
    ("eats_dashboard", 0.30),
    ("ads_attribution", 0.15),
    ("exploration", 0.40),
)


@dataclass(frozen=True)
class QueryRequest:
    """One user's query arrival, before admission.

    ``param`` is the deterministic workload knob the query templates key
    off (which city, which time window, which predicate constant) — it is
    derived from the user id, so the same user always asks the same shape
    of question and two same-seed runs ask byte-identical queries.
    """

    request_id: str
    user_id: str
    use_case: str
    arrival_time: float
    param: int


class UserPopulation:
    """Zipf-skewed sampling over millions of distinct user ids.

    ``sample(rng)`` returns a user index in ``[0, users)``.  Skew is
    bucketed: bucket ``b`` (of ``buckets``) holds an equal *id range* but
    carries Zipf weight ``1/(b+1)**skew``, so low buckets (few, hot users
    per draw) dominate traffic while the id space still spans the whole
    population.
    """

    def __init__(
        self,
        users: int = 2_000_000,
        skew: float = 1.1,
        buckets: int = 2048,
    ) -> None:
        if users <= 0:
            raise ValueError(f"population must be positive, got {users}")
        self.users = users
        self.skew = skew
        self.buckets = min(buckets, users)
        weights = [1.0 / (b + 1) ** skew for b in range(self.buckets)]
        total = sum(weights)
        acc = 0.0
        self._cumulative: list[float] = []
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def sample(self, rng) -> int:
        """One user index drawn from the caller's RNG stream."""
        bucket = bisect_left(self._cumulative, rng.random())
        bucket = min(bucket, self.buckets - 1)
        width = self.users // self.buckets
        lo = bucket * width
        hi = self.users if bucket == self.buckets - 1 else lo + width
        return lo + rng.randrange(hi - lo)

    @staticmethod
    def user_id(index: int) -> str:
        return f"user-{index:09d}"


@dataclass(frozen=True)
class SurgeSpike:
    """A burst window multiplying the base arrival intensity."""

    start: float
    end: float
    multiplier: float = 5.0

    def factor(self, t: float) -> float:
        return self.multiplier if self.start <= t < self.end else 1.0


@dataclass
class SurgeWorkload:
    """Deterministic arrival stream: diurnal carrier + surge spike.

    ``rate(t) = base_rps * (1 + diurnal_amplitude * sin(2*pi*t/diurnal_period))
    * spike.factor(t)`` drives a Poisson process; each arrival draws a use
    case from ``mix`` and a user from ``population``.
    """

    seed: int = 42
    population: UserPopulation = field(default_factory=UserPopulation)
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX
    base_rps: float = 10.0
    duration: float = 180.0
    spike: SurgeSpike = field(default_factory=lambda: SurgeSpike(60.0, 120.0))
    diurnal_amplitude: float = 0.3
    diurnal_period: float = 360.0
    param_space: int = 4096

    def __post_init__(self) -> None:
        total = sum(w for __, w in self.mix)
        acc = 0.0
        self._mix_cumulative: list[tuple[float, str]] = []
        for use_case, weight in self.mix:
            acc += weight / total
            self._mix_cumulative.append((acc, use_case))

    def rate(self, t: float) -> float:
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / self.diurnal_period
        )
        return self.base_rps * diurnal * self.spike.factor(t)

    def _use_case(self, rng) -> str:
        x = rng.random()
        for threshold, use_case in self._mix_cumulative:
            if x <= threshold:
                return use_case
        return self._mix_cumulative[-1][1]

    def requests(self, start_time: float = 0.0) -> Iterator[QueryRequest]:
        """Yield requests ordered by arrival time, for ``duration`` sim
        seconds from ``start_time``."""
        rng = seeded_rng(self.seed, "controlplane.workload")
        now = start_time
        seq = 0
        end = start_time + self.duration
        while True:
            rate = self.rate(now - start_time)
            now += rng.expovariate(rate) if rate > 0 else 1.0
            if now >= end:
                return
            seq += 1
            user = self.population.sample(rng)
            yield QueryRequest(
                request_id=f"req-{self.seed}-{seq:07d}",
                user_id=UserPopulation.user_id(user),
                use_case=self._use_case(rng),
                arrival_time=now,
                param=user % self.param_space,
            )
