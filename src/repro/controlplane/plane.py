"""The :class:`ControlPlane` facade: admission + scaling on a Platform.

:func:`~repro.controlplane.surge.run_surge` wires the control loops by
hand for the benchmarked experiment; this facade offers the same loops
to anyone holding a :class:`~repro.platform.Platform`::

    p = Platform(seed=7).with_kafka().with_pinot().with_presto()
    cp = p.with_control_plane()          # returns the Platform (builder)
    cp = p.control_plane
    cp.watch_flink(runtime)              # scale scheduler rounds on lag
    cp.watch_pinot_table("city_stats")   # scale ingest slots on lag
    cp.watch_presto()                    # scale workers on admitted load
    decision, output = cp.sql("SELECT ...", use_case="exploration")

``Platform.step`` drives the loop: each tick applies the current Flink
round boosts and Pinot ingest-slot boosts, then evaluates the
cross-layer controller on its cadence.  Admission-guarded queries go
through :meth:`sql` / :meth:`pinot_query`, which return the
:class:`~repro.controlplane.admission.AdmissionDecision` alongside the
result (``None`` when shed) — callers feed completion latencies back via
:meth:`observe_latency` to close the loop.

Since the platform executes queries synchronously, the facade does not
queue them; the admission controller's *fast* pressure loop (see the
surge driver) is therefore only wired when a caller provides a pressure
probe explicitly.
"""

from __future__ import annotations

from typing import Callable

from repro.controlplane.admission import (
    TIER_QUERY_SLOS,
    AdmissionController,
    AdmissionDecision,
    DecisionLog,
)
from repro.controlplane.queueing import QueryQueue
from repro.controlplane.scaler import CrossLayerController, ResourcePolicy
from repro.controlplane.workload import QueryRequest


class ControlPlane:
    """Admission control + cross-layer scaling over one Platform."""

    def __init__(
        self,
        platform,
        targets=TIER_QUERY_SLOS,
        tier_rates: dict[str, float] | None = None,
        tier_burst: float = 40.0,
        eval_interval: float = 5.0,
        pressure: Callable[[], float] | None = None,
        pressure_levels: tuple[float, ...] = (),
        queue: QueryQueue | None = None,
    ) -> None:
        self.platform = platform
        self.log = DecisionLog()
        self.queue = queue
        if pressure is None and queue is not None:
            # A queue implies the fast pressure loop: admission tightens
            # off the queue's backlog-per-worker, no explicit probe needed.
            pressure = lambda: queue.backlog_per_worker(platform.clock.now())
        self.admission = AdmissionController(
            targets=targets,
            tier_rates=tier_rates,
            tier_burst=tier_burst,
            pressure=pressure,
            pressure_levels=pressure_levels,
            log=self.log,
            metrics=platform.metrics,
        )
        self.scaler = CrossLayerController(
            log=self.log, metrics=platform.metrics
        )
        self.eval_interval = eval_interval
        self._next_eval = 0.0
        self._flink_boost: dict[str, int] = {}
        self._ingest_slots: dict[str, int] = {}
        self._seq = 0

    # -- watchers (register resources with the scaler) -----------------------

    def watch_flink(
        self,
        runtime,
        lag_threshold: int = 1_000,
        max_boost: int = 8,
    ) -> None:
        """Scale a job's scheduler-round boost off its source lag.

        The runtime's graph keeps its parallelism; extra capacity arrives
        as additional ``run_rounds`` per :meth:`Platform.step` tick — the
        simulation's stand-in for adding task slots.
        """
        job_id = runtime.graph.name
        self._flink_boost[job_id] = 1
        self.scaler.autoscaler.scale_up_lag_threshold = lag_threshold
        self.scaler.add_flink_job(
            job_id,
            lag=lambda: float(runtime.total_source_lag()),
            state_bytes=lambda: float(runtime.total_state_bytes()),
            current=lambda: self._flink_boost[job_id],
            apply=lambda n: self._flink_boost.__setitem__(
                job_id, min(n, max_boost)
            ),
        )

    def watch_pinot_table(
        self,
        table: str,
        lag_threshold: float = 500.0,
        lag_low: float = 50.0,
        max_slots: int = 8,
    ) -> None:
        """Scale a realtime table's per-step ingest slots off consumer lag."""
        state = self.platform.pinot.table(table)
        self._ingest_slots[table] = 1
        self.scaler.add_policy(
            ResourcePolicy(
                name=f"pinot.{table}.ingest_slots",
                signal=lambda: float(state.ingestion.lag()),
                current=lambda: self._ingest_slots[table],
                apply=lambda n: self._ingest_slots.__setitem__(table, n),
                scale_up_threshold=lag_threshold,
                scale_down_threshold=lag_low,
                max_units=max_slots,
                cooldown_s=2 * self.eval_interval,
            )
        )

    def watch_topic(
        self,
        topic: str,
        max_rps_per_partition: float,
        max_partitions: int = 16,
    ) -> None:
        """Expand a topic's partitions when produce rate outgrows them."""
        kafka = self.platform.kafka
        window = {"last_total": 0.0, "last_t": self.platform.clock.now()}

        def rate_per_partition() -> float:
            count = kafka.partition_count(topic)
            total = float(
                sum(kafka.end_offset(topic, p) for p in range(count))
            )
            now = self.platform.clock.now()
            dt = now - window["last_t"]
            rate = (total - window["last_total"]) / dt if dt > 0 else 0.0
            window["last_total"] = total
            window["last_t"] = now
            return rate / count

        self.scaler.add_policy(
            ResourcePolicy(
                name=f"kafka.{topic}.partitions",
                signal=rate_per_partition,
                current=lambda: kafka.partition_count(topic),
                apply=lambda n: kafka.expand_partitions(
                    topic, n - kafka.partition_count(topic)
                ),
                scale_up_threshold=max_rps_per_partition,
                scale_down_threshold=None,  # kafka cannot shrink
                max_units=max_partitions,
                cooldown_s=4 * self.eval_interval,
            )
        )

    def watch_presto(
        self,
        signal: Callable[[], float] | None = None,
        scale_up_threshold: float = 0.5,
        scale_down_threshold: float = 0.05,
        max_workers: int = 16,
    ) -> None:
        """Scale the Presto stage scheduler's worker count.

        Default signal: admitted queries per eval interval per worker —
        a queue-depth probe can be passed in instead (the surge driver
        does).
        """
        engine = self.platform.presto
        window = {"last_admitted": 0}

        def admitted_per_worker() -> float:
            admitted = self.admission.admitted
            delta = admitted - window["last_admitted"]
            window["last_admitted"] = admitted
            return delta / max(1, engine.scheduler.workers)

        self.scaler.add_policy(
            ResourcePolicy(
                name="presto.workers",
                signal=signal or admitted_per_worker,
                current=lambda: engine.scheduler.workers,
                apply=lambda n: setattr(engine.scheduler, "workers", n),
                scale_up_threshold=scale_up_threshold,
                scale_down_threshold=scale_down_threshold,
                max_units=max_workers,
                cooldown_s=2 * self.eval_interval,
            )
        )

    # -- hooks Platform.step consults ----------------------------------------

    def flink_boost(self, job_id: str) -> int:
        return self._flink_boost.get(job_id, 1)

    def ingest_slots(self, table: str) -> int:
        return self._ingest_slots.get(table, 1)

    def tick(self, now: float) -> int:
        """Evaluate the scaler on its cadence; returns actions applied."""
        if now < self._next_eval:
            return 0
        self._next_eval = now + self.eval_interval
        actions = self.scaler.evaluate(now)
        tracer = self.platform.tracer
        if actions and tracer is not None:
            tracer.record_span(
                trace_id=f"controlplane-{now:.3f}",
                name="scale",
                layer="controlplane",
                start=now,
                end=now,
                actions=actions,
            )
        return actions

    # -- admission-guarded execution -----------------------------------------

    def _request(self, use_case: str, user_id: str, param: int) -> QueryRequest:
        self._seq += 1
        return QueryRequest(
            request_id=f"cp-{self._seq:07d}",
            user_id=user_id,
            use_case=use_case,
            arrival_time=self.platform.clock.now(),
            param=param,
        )

    def sql(
        self,
        query: str,
        use_case: str,
        user_id: str = "user-000000000",
        param: int = 0,
    ):
        """Admission-gated Presto query.

        Returns ``(decision, output)``; ``output`` is ``None`` when shed.
        """
        decision = self.admission.admit(self._request(use_case, user_id, param))
        if not decision.admitted:
            return decision, None
        return decision, self.platform.presto.execute(query)

    def pinot_query(
        self,
        query,
        use_case: str,
        user_id: str = "user-000000000",
        param: int = 0,
    ):
        """Admission-gated broker query; ``(decision, result | None)``."""
        decision = self.admission.admit(self._request(use_case, user_id, param))
        if not decision.admitted:
            return decision, None
        return decision, self.platform.broker.execute(query)

    def submit(
        self, request: QueryRequest, service_s: float
    ) -> tuple[float, float]:
        """Queue an admitted request's service time; ``(start, completion)``.

        Routes sticky by ``(use_case, user_id)`` when the plane's queue
        is sticky: one user's session stays on its worker subset, so
        worker-local state keeps paying off across that user's queries.
        """
        if self.queue is None:
            raise ValueError("control plane has no queue")
        return self.queue.submit(
            request.arrival_time,
            service_s,
            key=request.user_id,
            tier=request.use_case,
        )

    def observe_latency(self, use_case: str, latency: float) -> None:
        """Feed a completed query's latency back into the p99 guard."""
        self.admission.observe_latency(
            use_case, latency, self.platform.clock.now()
        )

    def admit(self, use_case: str, user_id: str = "user-000000000", param: int = 0) -> AdmissionDecision:
        """Bare admission check (callers running the query themselves)."""
        return self.admission.admit(self._request(use_case, user_id, param))
