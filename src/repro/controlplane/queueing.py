"""Deterministic multi-server query queue for capacity modelling.

The serving layers (Pinot broker, Presto scheduler) execute queries
in-process in this reproduction, so "queueing under overload" needs an
explicit model: a work-conserving pool of ``workers`` where each admitted
query occupies one worker for its (deterministic, cost-model-derived)
service time.  Latency is ``completion - arrival``: queue wait appears
exactly when arrivals outpace ``workers / service_time`` capacity, which
is what the surge bench and the admission controller's p99 feedback need.

Scaling is live: ``set_workers`` grows the pool (new workers are free
immediately) or shrinks it (busy workers finish their current query
first — we drop the *latest-free* slots).  All tie-breaks are by worker
index, so the whole simulation is byte-deterministic.

Sticky routing (``sticky=True`` plus a ``key`` on submit) assigns each
key a rendezvous-hashed worker *subset* — the locality unit a real tier
pins a user's session to, so per-worker state (plan caches, artifact
stores) keeps paying off.  A sticky subset under pressure (its earliest
free slot further than ``spill_threshold_s`` beyond the arrival) spills
that query to the global pool: affinity is a preference, not a
guarantee, exactly the bounded-load discipline of
:func:`repro.common.hashring.bounded_pick`.
"""

from __future__ import annotations

from repro.common import hashring
from repro.common.perf import PERF


class QueryQueue:
    """Earliest-free-worker assignment over a resizable pool."""

    def __init__(
        self,
        workers: int = 2,
        sticky: bool = False,
        subset_size: int = 2,
        spill_threshold_s: float = 0.25,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self._free: list[float] = [0.0] * workers
        self.sticky = sticky
        self.subset_size = max(1, subset_size)
        self.spill_threshold_s = spill_threshold_s
        self.sticky_submits = 0
        self.spills = 0

    @property
    def workers(self) -> int:
        return len(self._free)

    def submit(
        self,
        arrival: float,
        service_s: float,
        key=None,
        tier=None,
    ) -> tuple[float, float]:
        """Enqueue one query; returns ``(start, completion)`` times.

        With ``sticky`` enabled and a ``key`` given, the query prefers
        the key's rendezvous worker subset (scoped per ``tier`` so one
        tier's hot keys don't pin another tier's) and spills to the
        whole pool only when the subset is ``spill_threshold_s`` behind.
        """
        if PERF.enabled:
            PERF.inc("controlplane.queue_submits")
        best = self._earliest_free(range(len(self._free)))
        if self.sticky and key is not None and len(self._free) > 1:
            subset = hashring.pick_subset(
                (tier, key), range(len(self._free)), self.subset_size
            )
            sticky_best = self._earliest_free(subset)
            if self._free[sticky_best] - arrival <= self.spill_threshold_s:
                best = sticky_best
                self.sticky_submits += 1
            else:
                self.spills += 1
                if PERF.enabled:
                    PERF.inc("controlplane.queue_spills")
        start = max(arrival, self._free[best])
        completion = start + service_s
        self._free[best] = completion
        return start, completion

    def _earliest_free(self, indices) -> int:
        best = None
        for i in indices:
            if best is None or self._free[i] < self._free[best]:
                best = i
        return best

    def set_workers(self, workers: int) -> None:
        workers = max(1, workers)
        if workers > len(self._free):
            # New workers come up idle: free as of "now", which for the
            # deterministic model is "immediately available" (0.0 is safe —
            # submit() clamps start to the arrival time).
            self._free.extend([0.0] * (workers - len(self._free)))
        elif workers < len(self._free):
            # Drain the most-loaded slots: keep the earliest-free workers.
            self._free = sorted(self._free)[:workers]

    def queued_seconds(self, now: float) -> float:
        """Total not-yet-served work in the pool, in seconds beyond now."""
        return sum(max(0.0, t - now) for t in self._free)

    def backlog_per_worker(self, now: float) -> float:
        """Mean seconds of queued work per worker — the scaling signal."""
        return self.queued_seconds(now) / len(self._free)
