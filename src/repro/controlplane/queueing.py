"""Deterministic multi-server query queue for capacity modelling.

The serving layers (Pinot broker, Presto scheduler) execute queries
in-process in this reproduction, so "queueing under overload" needs an
explicit model: a work-conserving pool of ``workers`` where each admitted
query occupies one worker for its (deterministic, cost-model-derived)
service time.  Latency is ``completion - arrival``: queue wait appears
exactly when arrivals outpace ``workers / service_time`` capacity, which
is what the surge bench and the admission controller's p99 feedback need.

Scaling is live: ``set_workers`` grows the pool (new workers are free
immediately) or shrinks it (busy workers finish their current query
first — we drop the *latest-free* slots).  All tie-breaks are by worker
index, so the whole simulation is byte-deterministic.
"""

from __future__ import annotations

from repro.common.perf import PERF


class QueryQueue:
    """Earliest-free-worker assignment over a resizable pool."""

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self._free: list[float] = [0.0] * workers

    @property
    def workers(self) -> int:
        return len(self._free)

    def submit(self, arrival: float, service_s: float) -> tuple[float, float]:
        """Enqueue one query; returns ``(start, completion)`` times."""
        if PERF.enabled:
            PERF.inc("controlplane.queue_submits")
        best = 0
        for i in range(1, len(self._free)):
            if self._free[i] < self._free[best]:
                best = i
        start = max(arrival, self._free[best])
        completion = start + service_s
        self._free[best] = completion
        return start, completion

    def set_workers(self, workers: int) -> None:
        workers = max(1, workers)
        if workers > len(self._free):
            # New workers come up idle: free as of "now", which for the
            # deterministic model is "immediately available" (0.0 is safe —
            # submit() clamps start to the arrival time).
            self._free.extend([0.0] * (workers - len(self._free)))
        elif workers < len(self._free):
            # Drain the most-loaded slots: keep the earliest-free workers.
            self._free = sorted(self._free)[:workers]

    def queued_seconds(self, now: float) -> float:
        """Total not-yet-served work in the pool, in seconds beyond now."""
        return sum(max(0.0, t - now) for t in self._free)

    def backlog_per_worker(self, now: float) -> float:
        """Mean seconds of queued work per worker — the scaling signal."""
        return self.queued_seconds(now) / len(self._free)
