"""Weighted rendezvous hashing for sticky, locality-aware routing.

The serving layers want the same key to land on the same node every
time (so per-node caches pay), while membership changes move as few
keys as possible.  Rendezvous (highest-random-weight) hashing gives
both without a ring data structure: every (key, node) pair gets a
deterministic score and the key goes to the highest-scoring node.

* **Minimal disruption** — adding a node only claims the keys whose new
  top score belongs to it (~1/n of the keyspace); removing a node only
  moves that node's own keys.  No other assignment changes, because
  scores of surviving (key, node) pairs are untouched.
* **Weighted** — scores use the ``-w / ln(u)`` transform (u uniform in
  (0, 1) from the pair hash), so a node with twice the weight owns
  twice the keyspace in expectation, and weight changes disturb only
  the proportional slice.
* **Bounded load** — :func:`bounded_pick` walks the rendezvous order
  and takes the first node under a caller-supplied load bound, so an
  overloaded sticky choice spills to the *next deterministic* node
  instead of scattering randomly.

Scores hash with BLAKE2b over :func:`repro.common.serde.encode_key`
bytes, so they are stable across processes (no ``PYTHONHASHSEED``
dependence) and equality-canonical: keys that compare ``==`` (``5``,
``5.0``) route identically, the same contract the hash partitioner and
the segment bloom filters already rely on.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "node_score",
    "rank",
    "pick",
    "pick_subset",
    "bounded_pick",
    "HashRing",
]

_SEPARATOR = b"\x00hrw\x00"


def _key_bytes(value: Any) -> bytes:
    """Equality-canonical bytes for an arbitrary routing key."""
    from repro.common import serde

    try:
        return serde.encode_key(value)
    except Exception:
        # Unencodable keys still deserve a deterministic route: fall back
        # to the repr, which is stable for any one value within a run.
        return repr(value).encode("utf-8", "backslashreplace")


def node_score(key: Any, node: Any, weight: float = 1.0) -> float:
    """The rendezvous score of ``node`` for ``key`` (higher wins).

    Uses the weighted-HRW transform ``-weight / ln(u)`` where ``u`` is a
    uniform (0, 1) draw from the pair hash, so expected ownership is
    proportional to weight.
    """
    if weight <= 0.0:
        return float("-inf")
    digest = hashlib.blake2b(
        _key_bytes(node) + _SEPARATOR + _key_bytes(key), digest_size=8
    ).digest()
    # (0, 1) exclusive on both ends: +1 over 2^64 + 2 never hits 0 or 1.
    u = (int.from_bytes(digest, "big") + 1) / (2**64 + 2)
    return -weight / math.log(u)


def rank(
    key: Any,
    nodes: Sequence[Any],
    weight_of: Callable[[Any], float] | None = None,
) -> list[Any]:
    """All nodes ordered by descending rendezvous score for ``key``.

    The first element is the sticky choice; the rest form the
    deterministic spill-over order.  Ties (possible only for duplicate
    nodes) break by position, keeping the order total and reproducible.
    """
    scored = [
        (node_score(key, node, weight_of(node) if weight_of else 1.0), -i, node)
        for i, node in enumerate(nodes)
    ]
    scored.sort(reverse=True)
    return [node for __, __, node in scored]


def pick(
    key: Any,
    nodes: Sequence[Any],
    weight_of: Callable[[Any], float] | None = None,
) -> Any:
    """The sticky choice: the highest-scoring node for ``key``."""
    if not nodes:
        raise ValueError("cannot pick from an empty node set")
    best = None
    best_score = (float("-inf"), 1)
    for i, node in enumerate(nodes):
        score = (node_score(key, node, weight_of(node) if weight_of else 1.0), -i)
        if best is None or score > best_score:
            best, best_score = node, score
    return best


def pick_subset(
    key: Any,
    nodes: Sequence[Any],
    n: int,
    weight_of: Callable[[Any], float] | None = None,
) -> list[Any]:
    """The top-``n`` nodes for ``key`` in rendezvous order.

    Subsets are nested (the top-2 set contains the top-1 choice) and
    minimally disrupted by membership change, so a key's sticky worker
    subset survives pool scaling mostly intact.
    """
    if n <= 0:
        return []
    return rank(key, nodes, weight_of)[:n]


def bounded_pick(
    key: Any,
    nodes: Sequence[Any],
    load_of: Callable[[Any], float],
    bound: float,
    weight_of: Callable[[Any], float] | None = None,
) -> tuple[Any, bool]:
    """Sticky choice with bounded-load spill-over.

    Walks the rendezvous order and returns ``(node, spilled)``: the
    first node whose ``load_of`` is within ``bound``, with ``spilled``
    True whenever that is not the sticky (top-ranked) choice.  When
    every node is over the bound the sticky node is returned with
    ``spilled=True``: the caller learns the whole pool is saturated and
    can shed or queue globally.
    """
    order = rank(key, nodes, weight_of)
    if not order:
        raise ValueError("cannot pick from an empty node set")
    for i, node in enumerate(order):
        if load_of(node) <= bound:
            return node, i > 0
    return order[0], True


class HashRing:
    """A mutable weighted-rendezvous member set with stable routing.

    Thin stateful wrapper over the module functions for callers that
    route many keys against a slowly changing membership (the broker's
    replica sets, the scheduler's worker pool)::

        ring = HashRing({"s0": 1.0, "s1": 1.0, "s2": 2.0})
        ring.pick(("rides", "seg-3"))        # -> "s2" (twice the share)
        ring.add("s3"); ring.remove("s1")    # minimal key movement
    """

    def __init__(self, members: dict[Any, float] | Iterable[Any] = ()) -> None:
        if isinstance(members, dict):
            self._weights: dict[Any, float] = dict(members)
        else:
            self._weights = {m: 1.0 for m in members}

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, member: Any) -> bool:
        return member in self._weights

    @property
    def members(self) -> list[Any]:
        return list(self._weights)

    def add(self, member: Any, weight: float = 1.0) -> None:
        self._weights[member] = weight

    def remove(self, member: Any) -> None:
        self._weights.pop(member, None)

    def weight(self, member: Any) -> float:
        return self._weights.get(member, 0.0)

    def pick(self, key: Any) -> Any:
        return pick(key, list(self._weights), self._weights.__getitem__)

    def rank(self, key: Any) -> list[Any]:
        return rank(key, list(self._weights), self._weights.__getitem__)

    def pick_subset(self, key: Any, n: int) -> list[Any]:
        return pick_subset(key, list(self._weights), n, self._weights.__getitem__)

    def bounded_pick(
        self, key: Any, load_of: Callable[[Any], float], bound: float
    ) -> tuple[Any, bool]:
        return bounded_pick(
            key, list(self._weights), load_of, bound, self._weights.__getitem__
        )
