"""Clock abstractions.

Every component in the stack takes a :class:`Clock` instead of calling
``time.time`` directly.  Experiments that measure freshness, end-to-end
latency or recovery time run on a :class:`SimulatedClock`, which makes the
results deterministic and lets a "20 minute" recovery complete in
milliseconds of wall time.  Wall-clock microbenchmarks use
:class:`SystemClock`.

Simulated time is kept in float seconds since an arbitrary epoch.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Protocol

from repro.common.errors import ClockError


class Clock(Protocol):
    """Minimal clock interface shared by all components."""

    def now(self) -> float:
        """Return the current time in seconds."""
        ...


class SystemClock:
    """Clock backed by the operating system's monotonic clock."""

    def now(self) -> float:
        return time.monotonic()


class SimulatedClock:
    """Deterministic, manually advanced clock with a timer wheel.

    Components may schedule callbacks (``call_at`` / ``call_later``); the
    driver of a simulation advances time with :meth:`advance` or
    :meth:`run_until`, which fires due callbacks in timestamp order.
    Callbacks scheduled for the same instant fire in scheduling order.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._sequence = itertools.count()
        self._timers: list[tuple[float, int, Callable[[], None]]] = []

    def now(self) -> float:
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``when``."""
        if when < self._now:
            raise ClockError(
                f"cannot schedule at {when:.6f}; clock already at {self._now:.6f}"
            )
        heapq.heappush(self._timers, (when, next(self._sequence), callback))

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"negative delay: {delay}")
        self.call_at(self._now + delay, callback)

    def advance(self, delta: float) -> None:
        """Move time forward by ``delta`` seconds, firing due timers."""
        if delta < 0:
            raise ClockError(f"cannot move time backwards (delta={delta})")
        self.run_until(self._now + delta)

    def run_until(self, deadline: float) -> None:
        """Advance to ``deadline``, firing every timer due on the way.

        Timers may schedule further timers; those also fire if they fall
        before the deadline.
        """
        if deadline < self._now:
            raise ClockError(
                f"deadline {deadline:.6f} is before current time {self._now:.6f}"
            )
        while self._timers and self._timers[0][0] <= deadline:
            when, __, callback = heapq.heappop(self._timers)
            # Jump the clock to the timer's instant so the callback observes
            # the time it was scheduled for.
            self._now = when
            callback()
        self._now = deadline

    def pending_timers(self) -> int:
        """Number of timers not yet fired (for tests and diagnostics)."""
        return len(self._timers)
