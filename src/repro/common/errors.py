"""Exception hierarchy for the whole package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type at the boundary.  Subsystem errors mirror the error
surface of the systems they model (e.g. Kafka raises
``UnknownTopicError`` where the real client would raise
``UnknownTopicOrPartitionError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ClockError(ReproError):
    """Invalid use of a clock (scheduling in the past, negative delay)."""


class SerdeError(ReproError):
    """Value cannot be serialized or deserialized."""


class SchemaError(ReproError):
    """Schema is malformed, or data does not conform to a schema."""


class SchemaCompatibilityError(SchemaError):
    """A schema evolution would break backward compatibility."""


class RetryExhaustedError(ReproError):
    """A RetryPolicy ran out of attempts (or time budget); the cause of the
    final failure is chained as ``__cause__``."""


# --- storage -------------------------------------------------------------

class StorageError(ReproError):
    """Base class for blob-store / HDFS errors."""


class BlobNotFoundError(StorageError):
    """Requested object does not exist."""


class StorageUnavailableError(StorageError):
    """The storage service (or enough of its replicas) is down."""


# --- kafka ---------------------------------------------------------------

class KafkaError(ReproError):
    """Base class for streaming-storage errors."""


class UnknownTopicError(KafkaError):
    """Topic does not exist on this cluster."""


class TopicExistsError(KafkaError):
    """Topic already exists."""


class OffsetOutOfRangeError(KafkaError):
    """Requested offset is below the log start or above the end."""


class BrokerUnavailableError(KafkaError):
    """The broker that leads this partition is down."""


class NotEnoughReplicasError(KafkaError):
    """acks=all produce cannot be satisfied by the live replica set."""


class RebalanceInProgressError(KafkaError):
    """Consumer group operation attempted during a rebalance."""


class QuotaExceededError(KafkaError):
    """Producer exceeded its provisioned byte quota (self-serve limits)."""


class ProducerFencedError(KafkaError):
    """A newer producer instance with the same transactional id has
    initialized; this (zombie) instance must not write again."""


class OutOfOrderSequenceError(KafkaError):
    """Idempotent produce arrived with a sequence number that is neither
    the next expected one nor an exact retry of the last batch."""


# --- flink ---------------------------------------------------------------

class FlinkError(ReproError):
    """Base class for stream-processing errors."""


class JobValidationError(FlinkError):
    """Job graph failed validation (cycle, missing source/sink, ...)."""


class JobNotFoundError(FlinkError):
    """Job id is unknown to the job server."""


class CheckpointError(FlinkError):
    """Checkpoint could not be taken or restored."""


class OperatorError(FlinkError):
    """User function raised inside an operator."""


# --- pinot ---------------------------------------------------------------

class PinotError(ReproError):
    """Base class for OLAP-store errors."""


class TableNotFoundError(PinotError):
    """Query or ingestion referenced a missing table."""


class SegmentError(PinotError):
    """Segment is missing, sealed, or corrupt."""


class QueryError(PinotError):
    """Query is malformed or references unknown columns."""


# --- sql -----------------------------------------------------------------

class SqlError(ReproError):
    """Base class for SQL layer errors."""


class SqlParseError(SqlError):
    """Query text could not be parsed."""


class SqlPlanError(SqlError):
    """Query parsed but cannot be planned/compiled."""


# --- multi-region --------------------------------------------------------

class RegionError(ReproError):
    """Base class for multi-region coordination errors."""


class NoHealthyRegionError(RegionError):
    """Failover requested but no healthy region is available."""


# --- backfill ------------------------------------------------------------

class BackfillError(ReproError):
    """Backfill job misconfiguration or runtime failure."""


# --- platform facade -----------------------------------------------------

class PlatformError(ReproError):
    """Platform facade misused (component not configured yet)."""


# --- chaos ---------------------------------------------------------------

class ChaosError(ReproError):
    """Chaos harness misconfiguration (unknown fault kind, missing target,
    crash requested with no checkpoint to restore from, ...)."""
